//! Runtime-dispatched SIMD kernels for the hash hot path.
//!
//! The batched pipelines hash keys in *lane passes*: [`LANES`] keys enter a
//! kernel together and their `k` counter indices come out in seed-major
//! order (`out[i * LANES + lane]` is `h_i(key_lane)`), so one pass over the
//! seeds amortises the mixing arithmetic across a whole SIMD register. Three
//! implementations exist per kernel:
//!
//! * **scalar** — a plain loop over the exact per-key formulas of
//!   `family.rs`. This is the source of truth: the SIMD paths must be
//!   bit-identical to it, and `tests/batch_equivalence.rs` holds them to
//!   that.
//! * **SSE2** — the x86-64 baseline (every x86-64 CPU has it), two 64-bit
//!   lanes per `__m128i`, two passes per lane group.
//! * **AVX2** — four 64-bit lanes per `__m256i`, selected at runtime via
//!   `is_x86_feature_detected!`. AVX2 additionally provides the gathered
//!   min-of-k kernel ([`min_gather_lanes`]) the batched estimate uses.
//!
//! The active level is detected once and cached ([`simd_level`]); the
//! `SBF_SIMD` environment variable (`scalar`, `sse2`, `avx2`) caps it at
//! startup so the scalar fallback can be exercised on AVX2 machines (CI
//! runs the whole suite under `SBF_SIMD=scalar`), and [`set_simd_level`]
//! overrides it in-process for A/B benchmarks. Forcing a level *above* what
//! the CPU supports is impossible — both knobs clamp to the detected
//! maximum, so an invalid request degrades instead of faulting.
//!
//! # Why the kernels stay exact
//!
//! The families reduce a 64-bit hash onto `{0..m-1}` with the widening
//! multiply `(h · m) >> 64`. AVX2 has no 64×64→128 multiply, but for
//! `m < 2³²` (every realistic counter vector; the dispatcher checks and
//! falls back otherwise) the high word decomposes exactly:
//! with `h = h_hi·2³² + h_lo`, the high word equals
//! `(h_hi·m + ((h_lo·m) >> 32)) >> 32`,
//! with every intermediate product fitting 64 bits. Likewise the
//! full 64-bit products inside `fmix64` are assembled from 32×32→64
//! partial products. No rounding, no approximation — the lanes compute the
//! same integers the scalar code does.

// The crate is `deny(unsafe_code)`; like `prefetch.rs`, this module
// narrowly re-allows it for the intrinsic calls, each behind a runtime
// feature check and a documented safety argument.
#![allow(unsafe_code)]

use crate::mix::fmix64;
use crate::sync::atomic::{AtomicUsize, Ordering};

/// Keys per lane pass. Chosen to match the widest supported register
/// (AVX2: 4 × u64); narrower levels make several passes internally.
pub const LANES: usize = 4;

/// The SIMD capability the dispatched kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loops — the bit-identity oracle.
    Scalar = 0,
    /// 128-bit x86-64 baseline vectors.
    Sse2 = 1,
    /// 256-bit vectors plus gathered loads.
    Avx2 = 2,
}

impl SimdLevel {
    fn from_usize(v: usize) -> SimdLevel {
        match v {
            2 => SimdLevel::Avx2,
            1 => SimdLevel::Sse2,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Sentinel for "not yet detected".
const UNSET: usize = usize::MAX;

static LEVEL: AtomicUsize = AtomicUsize::new(UNSET);

/// What the hardware supports, independent of any override.
fn detect() -> SimdLevel {
    #[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is architecturally guaranteed on x86-64.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(all(target_arch = "x86_64", target_pointer_width = "64")))]
    SimdLevel::Scalar
}

/// The cap requested through the `SBF_SIMD` environment variable, if any.
fn env_cap() -> SimdLevel {
    match std::env::var("SBF_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" => SimdLevel::Scalar,
            "sse2" => SimdLevel::Sse2,
            // Unknown values (and "avx2") request the full detected level.
            _ => SimdLevel::Avx2,
        },
        Err(_) => SimdLevel::Avx2,
    }
}

/// The SIMD level the dispatched kernels currently run at.
///
/// Detected on first call (CPU features ∧ `SBF_SIMD` cap) and cached; see
/// [`set_simd_level`] for the in-process override.
#[inline]
pub fn simd_level() -> SimdLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return SimdLevel::from_usize(v);
    }
    let level = detect().min(env_cap());
    LEVEL.store(level as usize, Ordering::Relaxed);
    level
}

/// Overrides the dispatch level for this process, clamped to what the CPU
/// supports (so requesting AVX2 on a non-AVX2 machine yields the detected
/// baseline, never an illegal instruction). Returns the level actually
/// installed.
///
/// Intended for A/B benchmarks and the forced-scalar equivalence tests;
/// callers toggling this concurrently with hot-path traffic get whichever
/// level each operation happens to observe — every level computes identical
/// indices, so that is benign.
pub fn set_simd_level(level: SimdLevel) -> SimdLevel {
    let clamped = level.min(detect());
    LEVEL.store(clamped as usize, Ordering::Relaxed);
    clamped
}

/// Serialises tests that toggle the process-global dispatch level. Every
/// level computes bit-identical results, so concurrent toggling is benign
/// for *equivalence* assertions — but tests that assert on the level itself
/// must hold this.
#[cfg(test)]
pub(crate) fn test_level_lock() -> crate::sync::MutexGuard<'static, ()> {
    static LOCK: crate::sync::Mutex<()> = crate::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether `m` is small enough for the exact 32-bit decomposition of the
/// widening reduce (see the module docs). Counter vectors above 2³²
/// counters (32 GiB of u64s per filter) dispatch to scalar.
#[inline]
fn reducible(m: u64) -> bool {
    m <= u64::from(u32::MAX)
}

// ---------------------------------------------------------------------------
// Scalar oracles
// ---------------------------------------------------------------------------

/// Scalar reference for [`mix_indexes_lanes`]: the exact `MixFamily`
/// formula, `LANES` keys per seed, seed-major output.
pub fn mix_indexes_lanes_scalar(vs: [u64; LANES], seeds: &[u64], m: u64, out: &mut [usize]) {
    for (i, &s) in seeds.iter().enumerate() {
        for (lane, &v) in vs.iter().enumerate() {
            let h = fmix64(v ^ s);
            out[i * LANES + lane] = ((u128::from(h) * u128::from(m)) >> 64) as usize;
        }
    }
}

/// Scalar reference for [`multiply_indexes_lanes`]: the exact
/// `MultiplyFamily` fixed-point formula, seed-major output.
pub fn multiply_indexes_lanes_scalar(vs: [u64; LANES], alphas: &[u64], m: u64, out: &mut [usize]) {
    for (i, &a) in alphas.iter().enumerate() {
        for (lane, &v) in vs.iter().enumerate() {
            let frac = a.wrapping_mul(v);
            out[i * LANES + lane] = ((u128::from(frac) * u128::from(m)) >> 64) as usize;
        }
    }
}

/// Scalar reference for [`mix_reduce_lanes`]: one seeded `fmix64` +
/// widening reduce per lane (the blocked family's block pick).
pub fn mix_reduce_lanes_scalar(vs: [u64; LANES], seed: u64, range: u64) -> [usize; LANES] {
    let mut out = [0usize; LANES];
    for (lane, &v) in vs.iter().enumerate() {
        let h = fmix64(v ^ seed);
        out[lane] = ((u128::from(h) * u128::from(range)) >> 64) as usize;
    }
    out
}

/// Scalar reference for [`min_gather_lanes`]: per-lane min over the
/// seed-major index block.
pub fn min_gather_lanes_scalar(counters: &[u64], idx: &[usize], k: usize) -> [u64; LANES] {
    let mut mins = [u64::MAX; LANES];
    for i in 0..k {
        for (lane, min) in mins.iter_mut().enumerate() {
            let v = counters[idx[i * LANES + lane]];
            if v < *min {
                *min = v;
            }
        }
    }
    mins
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// `MixFamily` lane kernel: `out[i * LANES + lane] =
/// ((fmix64(vs[lane] ^ seeds[i]) · m) >> 64)`.
///
/// `out` must hold at least `seeds.len() * LANES` slots. Bit-identical to
/// [`mix_indexes_lanes_scalar`] at every dispatch level.
#[inline]
pub fn mix_indexes_lanes(vs: [u64; LANES], seeds: &[u64], m: u64, out: &mut [usize]) {
    debug_assert!(out.len() >= seeds.len() * LANES);
    #[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
    if reducible(m) {
        match simd_level() {
            // SAFETY: `simd_level()` only reports Avx2 after
            // `is_x86_feature_detected!("avx2")` confirmed the CPU supports
            // it (and `set_simd_level` clamps to that detection).
            SimdLevel::Avx2 => return unsafe { x86::mix_indexes_lanes_avx2(vs, seeds, m, out) },
            // SAFETY: SSE2 is part of the x86-64 baseline ISA.
            SimdLevel::Sse2 => return unsafe { x86::mix_indexes_lanes_sse2(vs, seeds, m, out) },
            SimdLevel::Scalar => {}
        }
    }
    mix_indexes_lanes_scalar(vs, seeds, m, out);
}

/// `MultiplyFamily` lane kernel: `out[i * LANES + lane] =
/// ((alphas[i]·vs[lane] mod 2⁶⁴) · m) >> 64`. Same contract as
/// [`mix_indexes_lanes`].
#[inline]
pub fn multiply_indexes_lanes(vs: [u64; LANES], alphas: &[u64], m: u64, out: &mut [usize]) {
    debug_assert!(out.len() >= alphas.len() * LANES);
    #[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
    if reducible(m) {
        match simd_level() {
            SimdLevel::Avx2 => {
                // SAFETY: Avx2 is only reported after runtime detection.
                return unsafe { x86::multiply_indexes_lanes_avx2(vs, alphas, m, out) };
            }
            SimdLevel::Sse2 => {
                // SAFETY: SSE2 is part of the x86-64 baseline ISA.
                return unsafe { x86::multiply_indexes_lanes_sse2(vs, alphas, m, out) };
            }
            SimdLevel::Scalar => {}
        }
    }
    multiply_indexes_lanes_scalar(vs, alphas, m, out);
}

/// Single-function lane kernel: `fmix64(vs[lane] ^ seed)` reduced onto
/// `{0..range-1}` — the blocked family's first-level block pick.
#[inline]
pub fn mix_reduce_lanes(vs: [u64; LANES], seed: u64, range: u64) -> [usize; LANES] {
    #[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
    if reducible(range) {
        match simd_level() {
            // SAFETY: Avx2 is only reported after runtime detection.
            SimdLevel::Avx2 => return unsafe { x86::mix_reduce_lanes_avx2(vs, seed, range) },
            // SAFETY: SSE2 is part of the x86-64 baseline ISA.
            SimdLevel::Sse2 => return unsafe { x86::mix_reduce_lanes_sse2(vs, seed, range) },
            SimdLevel::Scalar => {}
        }
    }
    mix_reduce_lanes_scalar(vs, seed, range)
}

/// Whether [`min_gather_lanes`] has a vector implementation at the current
/// level (AVX2's gathered loads). Callers may use this to decide whether a
/// lane-blocked estimate layout is worth staging.
#[inline]
pub fn gather_available() -> bool {
    cfg!(all(target_arch = "x86_64", target_pointer_width = "64"))
        && simd_level() == SimdLevel::Avx2
}

/// Per-lane min-of-k over a seed-major index block: `result[lane] =
/// min over i < k of counters[idx[i * LANES + lane]]`.
///
/// `idx` must hold at least `k * LANES` entries; `k` must be ≥ 1. Indices
/// are expected in `{0..counters.len()-1}` (the hash-family contract); the
/// vector path *verifies* that before gathering — an out-of-range index
/// (impossible for family-produced blocks, but this is a safe public API)
/// falls back to the scalar loop and its bounds-checked panic semantics.
#[inline]
pub fn min_gather_lanes(counters: &[u64], idx: &[usize], k: usize) -> [u64; LANES] {
    debug_assert!(k >= 1 && idx.len() >= k * LANES);
    #[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
    if simd_level() == SimdLevel::Avx2 {
        // Soundness gate for the unchecked gather: every index must be in
        // range. Family-produced indices always are, so this max-scan is a
        // predictable always-taken branch, not a per-element bounds check
        // in the gather loop itself.
        let max = idx[..k * LANES].iter().copied().max().unwrap_or(0);
        if max < counters.len() {
            // SAFETY: Avx2 was runtime-detected, and every index in
            // `idx[..k*LANES]` was just verified `< counters.len()`, which
            // is the gather kernel's documented precondition.
            return unsafe { x86::min_gather_lanes_avx2(counters, idx, k) };
        }
    }
    min_gather_lanes_scalar(counters, idx, k)
}

// ---------------------------------------------------------------------------
// x86-64 kernels
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_pointer_width = "64"))]
mod x86 {
    //! The intrinsic bodies. Every function is `unsafe fn` with the
    //! contract "the named target feature is available" (plus, for the
    //! gather, "all indices are in range"); the dispatchers in the parent
    //! module establish both.

    use super::LANES;
    use std::arch::x86_64::*;

    /// Exact low 64 bits of a 64×64 lane multiply, assembled from
    /// 32×32→64 partial products: `lo(a·b) = a_lo·b_lo +
    /// ((a_lo·b_hi + a_hi·b_lo) << 32)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_low64_avx2(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// The Murmur3 finalizer (`mix::fmix64`) over four lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fmix64_avx2(mut k: __m256i) -> __m256i {
        let c1 = _mm256_set1_epi64x(0xff51_afd7_ed55_8ccd_u64 as i64);
        let c2 = _mm256_set1_epi64x(0xc4ce_b9fe_1a85_ec53_u64 as i64);
        k = _mm256_xor_si256(k, _mm256_srli_epi64::<33>(k));
        k = mul_low64_avx2(k, c1);
        k = _mm256_xor_si256(k, _mm256_srli_epi64::<33>(k));
        k = mul_low64_avx2(k, c2);
        _mm256_xor_si256(k, _mm256_srli_epi64::<33>(k))
    }

    /// Exact `(h · m) >> 64` for `m < 2³²`: with `h = h_hi·2³² + h_lo`,
    /// the high word is `(h_hi·m + ((h_lo·m) >> 32)) >> 32`, every term
    /// fitting 64 bits (see the module docs for the carry argument).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_avx2(h: __m256i, m: __m256i) -> __m256i {
        let lo_m = _mm256_mul_epu32(h, m);
        let hi_m = _mm256_mul_epu32(_mm256_srli_epi64::<32>(h), m);
        let sum = _mm256_add_epi64(hi_m, _mm256_srli_epi64::<32>(lo_m));
        _mm256_srli_epi64::<32>(sum)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mix_indexes_lanes_avx2(
        vs: [u64; LANES],
        seeds: &[u64],
        m: u64,
        out: &mut [usize],
    ) {
        // SAFETY (loads/stores): `vs` is 4 u64s, matching __m256i width;
        // `out` holds ≥ seeds.len()*4 usize (= u64 on this target), and
        // loadu/storeu have no alignment requirement.
        let v = _mm256_loadu_si256(vs.as_ptr().cast());
        let mv = _mm256_set1_epi64x(m as i64);
        for (i, &s) in seeds.iter().enumerate() {
            let h = fmix64_avx2(_mm256_xor_si256(v, _mm256_set1_epi64x(s as i64)));
            let idx = reduce_avx2(h, mv);
            _mm256_storeu_si256(out.as_mut_ptr().add(i * LANES).cast(), idx);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn multiply_indexes_lanes_avx2(
        vs: [u64; LANES],
        alphas: &[u64],
        m: u64,
        out: &mut [usize],
    ) {
        // SAFETY: same load/store argument as `mix_indexes_lanes_avx2`.
        let v = _mm256_loadu_si256(vs.as_ptr().cast());
        let mv = _mm256_set1_epi64x(m as i64);
        for (i, &a) in alphas.iter().enumerate() {
            let frac = mul_low64_avx2(v, _mm256_set1_epi64x(a as i64));
            let idx = reduce_avx2(frac, mv);
            _mm256_storeu_si256(out.as_mut_ptr().add(i * LANES).cast(), idx);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mix_reduce_lanes_avx2(
        vs: [u64; LANES],
        seed: u64,
        range: u64,
    ) -> [usize; LANES] {
        // SAFETY: `vs`/`out` are 4 u64-sized lanes; unaligned ops.
        let v = _mm256_loadu_si256(vs.as_ptr().cast());
        let h = fmix64_avx2(_mm256_xor_si256(v, _mm256_set1_epi64x(seed as i64)));
        let idx = reduce_avx2(h, _mm256_set1_epi64x(range as i64));
        let mut out = [0usize; LANES];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), idx);
        out
    }

    /// Gathered per-lane min-of-k. Caller promises AVX2 and that every
    /// index in `idx[..k*LANES]` is `< counters.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn min_gather_lanes_avx2(
        counters: &[u64],
        idx: &[usize],
        k: usize,
    ) -> [u64; LANES] {
        // Unsigned 64-bit compares via sign-bias: x <u y ⇔ (x^MIN) <s (y^MIN).
        let bias = _mm256_set1_epi64x(i64::MIN);
        let mut min = _mm256_set1_epi64x(-1); // u64::MAX per lane
        let base = counters.as_ptr().cast::<i64>();
        for i in 0..k {
            // SAFETY: `idx` holds ≥ k*LANES usize (u64 here) — in-bounds
            // unaligned load; every gathered element address is
            // `base + idx[..] * 8` with idx < counters.len() (caller
            // contract), so the gather reads inside the slice.
            let vidx = _mm256_loadu_si256(idx.as_ptr().add(i * LANES).cast());
            let vals = _mm256_i64gather_epi64::<8>(base, vidx);
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(min, bias), _mm256_xor_si256(vals, bias));
            min = _mm256_blendv_epi8(min, vals, gt);
        }
        let mut out = [0u64; LANES];
        // SAFETY: `out` is 4 u64s — exactly one __m256i, unaligned store.
        _mm256_storeu_si256(out.as_mut_ptr().cast(), min);
        out
    }

    // -- SSE2: identical arithmetic on two lanes, two passes per group --

    /// Exact low 64 bits of a 64×64 lane multiply (two lanes).
    #[inline]
    unsafe fn mul_low64_sse2(a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE2 baseline intrinsics; register-only arithmetic.
        let lo = _mm_mul_epu32(a, b);
        let a_hi = _mm_srli_epi64::<32>(a);
        let b_hi = _mm_srli_epi64::<32>(b);
        let cross = _mm_add_epi64(_mm_mul_epu32(a_hi, b), _mm_mul_epu32(a, b_hi));
        _mm_add_epi64(lo, _mm_slli_epi64::<32>(cross))
    }

    /// `mix::fmix64` over two lanes.
    #[inline]
    unsafe fn fmix64_sse2(mut k: __m128i) -> __m128i {
        // SAFETY: SSE2 baseline intrinsics; register-only arithmetic.
        let c1 = _mm_set1_epi64x(0xff51_afd7_ed55_8ccd_u64 as i64);
        let c2 = _mm_set1_epi64x(0xc4ce_b9fe_1a85_ec53_u64 as i64);
        k = _mm_xor_si128(k, _mm_srli_epi64::<33>(k));
        k = mul_low64_sse2(k, c1);
        k = _mm_xor_si128(k, _mm_srli_epi64::<33>(k));
        k = mul_low64_sse2(k, c2);
        _mm_xor_si128(k, _mm_srli_epi64::<33>(k))
    }

    /// Exact `(h · m) >> 64` for `m < 2³²` (two lanes).
    #[inline]
    unsafe fn reduce_sse2(h: __m128i, m: __m128i) -> __m128i {
        // SAFETY: SSE2 baseline intrinsics; register-only arithmetic.
        let lo_m = _mm_mul_epu32(h, m);
        let hi_m = _mm_mul_epu32(_mm_srli_epi64::<32>(h), m);
        let sum = _mm_add_epi64(hi_m, _mm_srli_epi64::<32>(lo_m));
        _mm_srli_epi64::<32>(sum)
    }

    pub(super) unsafe fn mix_indexes_lanes_sse2(
        vs: [u64; LANES],
        seeds: &[u64],
        m: u64,
        out: &mut [usize],
    ) {
        // SAFETY: SSE2 is baseline; loads/stores cover vs[pair..pair+2]
        // (u64 pairs) and out slots `i*LANES + pair .. +2`, which the
        // caller sized (`out.len() ≥ seeds.len() * LANES`); unaligned ops.
        let mv = _mm_set1_epi64x(m as i64);
        for pair in [0usize, 2] {
            let v = _mm_loadu_si128(vs.as_ptr().add(pair).cast());
            for (i, &s) in seeds.iter().enumerate() {
                let h = fmix64_sse2(_mm_xor_si128(v, _mm_set1_epi64x(s as i64)));
                let idx = reduce_sse2(h, mv);
                _mm_storeu_si128(out.as_mut_ptr().add(i * LANES + pair).cast(), idx);
            }
        }
    }

    pub(super) unsafe fn multiply_indexes_lanes_sse2(
        vs: [u64; LANES],
        alphas: &[u64],
        m: u64,
        out: &mut [usize],
    ) {
        // SAFETY: same as `mix_indexes_lanes_sse2`.
        let mv = _mm_set1_epi64x(m as i64);
        for pair in [0usize, 2] {
            let v = _mm_loadu_si128(vs.as_ptr().add(pair).cast());
            for (i, &a) in alphas.iter().enumerate() {
                let frac = mul_low64_sse2(v, _mm_set1_epi64x(a as i64));
                let idx = reduce_sse2(frac, mv);
                _mm_storeu_si128(out.as_mut_ptr().add(i * LANES + pair).cast(), idx);
            }
        }
    }

    pub(super) unsafe fn mix_reduce_lanes_sse2(
        vs: [u64; LANES],
        seed: u64,
        range: u64,
    ) -> [usize; LANES] {
        // SAFETY: SSE2 baseline; loads/stores stay inside the 4-lane
        // arrays; unaligned ops.
        let sv = _mm_set1_epi64x(seed as i64);
        let rv = _mm_set1_epi64x(range as i64);
        let mut out = [0usize; LANES];
        for pair in [0usize, 2] {
            let v = _mm_loadu_si128(vs.as_ptr().add(pair).cast());
            let h = fmix64_sse2(_mm_xor_si128(v, sv));
            let idx = reduce_sse2(h, rv);
            _mm_storeu_si128(out.as_mut_ptr().add(pair).cast(), idx);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::SplitMix64;

    fn keysets() -> Vec<[u64; LANES]> {
        let mut rng = SplitMix64::new(0xd15b_a7c4);
        let mut sets = vec![
            [0, 1, 2, 3],
            [u64::MAX, 0, u64::MAX - 1, 1],
            [0xdead_beef, 0xdead_beef, 0xdead_beef, 0xdead_beef],
        ];
        for _ in 0..64 {
            sets.push([
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ]);
        }
        sets
    }

    #[test]
    fn detected_level_is_cached_and_clamped() {
        let _g = test_level_lock();
        let initial = simd_level();
        assert_eq!(simd_level(), initial, "level must be stable");
        // Force scalar, then restore: both must stick (clamped to CPU max).
        assert_eq!(set_simd_level(SimdLevel::Scalar), SimdLevel::Scalar);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        let restored = set_simd_level(SimdLevel::Avx2);
        assert!(restored <= SimdLevel::Avx2);
        assert_eq!(simd_level(), restored);
        set_simd_level(initial);
    }

    #[test]
    fn mix_lanes_match_scalar_at_every_level() {
        let seeds: Vec<u64> = {
            let mut rng = SplitMix64::new(7);
            (0..5).map(|_| rng.next_u64()).collect()
        };
        let initial = simd_level();
        for m in [1u64, 2, 3, 97, 4096, (1 << 32) - 1, 1 << 40] {
            for vs in keysets() {
                let mut want = [0usize; 5 * LANES];
                mix_indexes_lanes_scalar(vs, &seeds, m, &mut want);
                for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                    set_simd_level(level);
                    let mut got = [0usize; 5 * LANES];
                    mix_indexes_lanes(vs, &seeds, m, &mut got);
                    assert_eq!(got, want, "m={m} level={level:?}");
                }
            }
        }
        set_simd_level(initial);
    }

    #[test]
    fn multiply_lanes_match_scalar_at_every_level() {
        let alphas: Vec<u64> = {
            let mut rng = SplitMix64::new(11);
            (0..4).map(|_| rng.next_odd_u64()).collect()
        };
        let initial = simd_level();
        for m in [1u64, 1000, 1 << 20, (1 << 32) - 1] {
            for vs in keysets() {
                let mut want = [0usize; 4 * LANES];
                multiply_indexes_lanes_scalar(vs, &alphas, m, &mut want);
                for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                    set_simd_level(level);
                    let mut got = [0usize; 4 * LANES];
                    multiply_indexes_lanes(vs, &alphas, m, &mut got);
                    assert_eq!(got, want, "m={m} level={level:?}");
                }
            }
        }
        set_simd_level(initial);
    }

    #[test]
    fn block_reduce_matches_scalar_at_every_level() {
        let initial = simd_level();
        for range in [1u64, 2, 31, 1 << 16] {
            for vs in keysets() {
                let want = mix_reduce_lanes_scalar(vs, 99, range);
                for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                    set_simd_level(level);
                    assert_eq!(
                        mix_reduce_lanes(vs, 99, range),
                        want,
                        "range={range} level={level:?}"
                    );
                }
            }
        }
        set_simd_level(initial);
    }

    #[test]
    fn min_gather_matches_scalar_at_every_level() {
        let mut rng = SplitMix64::new(3);
        let counters: Vec<u64> = (0..1024).map(|_| rng.next_u64()).collect();
        let initial = simd_level();
        for k in 1..=8usize {
            let idx: Vec<usize> = (0..k * LANES)
                .map(|_| rng.next_below(1024) as usize)
                .collect();
            let want = min_gather_lanes_scalar(&counters, &idx, k);
            for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                set_simd_level(level);
                assert_eq!(min_gather_lanes(&counters, &idx, k), want, "k={k}");
            }
        }
        set_simd_level(initial);
    }

    #[test]
    fn min_gather_handles_extreme_counter_values() {
        // The unsigned-compare emulation must order values straddling the
        // sign bit correctly.
        let counters = vec![u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1, 0, 5];
        let idx: Vec<usize> = vec![0, 1, 2, 3, 2, 3, 4, 5];
        let want = min_gather_lanes_scalar(&counters, &idx, 2);
        assert_eq!(want, [1 << 63, (1 << 63) - 1, 0, 5]);
        let initial = simd_level();
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            set_simd_level(level);
            assert_eq!(min_gather_lanes(&counters, &idx, 2), want);
        }
        set_simd_level(initial);
    }

    #[test]
    fn env_cap_parses_known_levels() {
        // Pure parse test (the cached global is decided elsewhere).
        assert_eq!(SimdLevel::from_usize(0), SimdLevel::Scalar);
        assert_eq!(SimdLevel::from_usize(1), SimdLevel::Sse2);
        assert_eq!(SimdLevel::from_usize(2), SimdLevel::Avx2);
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
    }
}
