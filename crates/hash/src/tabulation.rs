//! Simple tabulation hashing — a 3-independent family with strong
//! concentration guarantees.
//!
//! The paper's analysis assumes uniformly random hash functions ("for
//! purpose of simplicity, we assume full randomness", §4.4). Simple
//! tabulation (Zobrist 1970; analyzed by Pătraşcu & Thorup 2012) is the
//! classic way to *approach* that assumption with provable properties:
//! split the key into `c` characters, look each up in an independent
//! random table, and XOR. It is only 3-independent, yet behaves like a
//! fully random function for Chernoff-style concentration — precisely what
//! the urn-model arguments behind the Bloom error formula need.
//!
//! This family is the "belt and braces" option: slower than
//! [`crate::MixFamily`] (eight table lookups per hash) but with published
//! guarantees instead of empirical diffusion.

use crate::family::HashFamily;
use crate::key::Key;
use crate::mix::SplitMix64;

const CHARS: usize = 8; // one table per byte of the canonical u64

/// A simple-tabulation family of `k` functions onto `{0..m-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationFamily {
    m: usize,
    /// `tables[f][c][b]` = random word for function `f`, character
    /// position `c`, byte value `b`.
    tables: Vec<Box<[[u64; 256]; CHARS]>>,
}

impl TabulationFamily {
    /// Creates `k` tabulation functions onto `{0..m-1}` seeded by `seed`.
    ///
    /// Each function owns `8 × 256` random words (16 KiB) — the price of
    /// the guarantees.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        assert!(m > 0, "hash family needs m > 0");
        assert!(k > 0, "hash family needs k > 0");
        assert!(k <= crate::MAX_K, "at most {} functions", crate::MAX_K);
        let mut rng = SplitMix64::new(seed ^ 0x7ab1_7ab1_7ab1_7ab1);
        let tables = (0..k)
            .map(|_| {
                let mut t = Box::new([[0u64; 256]; CHARS]);
                for row in t.iter_mut() {
                    for cell in row.iter_mut() {
                        *cell = rng.next_u64();
                    }
                }
                t
            })
            .collect();
        TabulationFamily { m, tables }
    }

    #[inline]
    fn hash_one(&self, f: usize, v: u64) -> u64 {
        let t = &self.tables[f];
        let mut h = 0u64;
        for (c, row) in t.iter().enumerate() {
            h ^= row[((v >> (8 * c)) & 0xFF) as usize];
        }
        h
    }
}

impl HashFamily for TabulationFamily {
    fn k(&self) -> usize {
        self.tables.len()
    }

    fn m(&self) -> usize {
        self.m
    }

    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let v = key.canonical();
        let m = self.m as u64;
        for (f, slot) in out.iter_mut().enumerate().take(self.k()) {
            let h = self.hash_one(f, v);
            *slot = ((u128::from(h) * u128::from(m)) >> 64) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = TabulationFamily::new(1000, 4, 7);
        let b = TabulationFamily::new(1000, 4, 7);
        for key in 0u64..200 {
            let ia = a.indexes(&key);
            assert_eq!(ia.as_slice(), b.indexes(&key).as_slice());
            assert!(ia.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn functions_are_independent_looking() {
        let f = TabulationFamily::new(1 << 20, 2, 9);
        let collisions = (0u64..2000)
            .filter(|key| {
                let idx = f.indexes(key);
                idx[0] == idx[1]
            })
            .count();
        assert!(
            collisions <= 2,
            "{collisions} same-index pairs in 2000 keys"
        );
    }

    #[test]
    fn uniform_on_sequential_keys() {
        let f = TabulationFamily::new(64, 1, 3);
        let mut counts = [0usize; 64];
        for key in 0u64..64_000 {
            counts[f.indexes(&key)[0]] += 1;
        }
        for &c in &counts {
            let ratio = c as f64 / 1000.0;
            assert!((0.8..1.2).contains(&ratio), "bucket skew {ratio}");
        }
    }

    #[test]
    fn single_byte_change_rehashes() {
        let f = TabulationFamily::new(1 << 16, 1, 5);
        let base = f.indexes(&0x11223344_55667788u64)[0];
        let mut moved = 0;
        for byte in 0..8 {
            let flipped = 0x11223344_55667788u64 ^ (0xFFu64 << (8 * byte));
            if f.indexes(&flipped)[0] != base {
                moved += 1;
            }
        }
        assert!(
            moved >= 7,
            "flipping any byte should move the hash: {moved}/8"
        );
    }
}
