//! Canonicalization of application keys to 64-bit values.

/// Types usable as SBF keys.
///
/// A key is reduced to a single `u64`; the hash families then derive the
/// `k` counter positions from that value. For integers the reduction is the
/// identity (so the paper's multiplicative family sees the raw value, as in
/// the original experiments over integer data); for byte strings it is an
/// FNV-1a fold, which is enough because the families re-mix the value.
pub trait Key {
    /// Canonical 64-bit representation of the key.
    fn canonical(&self) -> u64;
}

macro_rules! impl_key_for_int {
    ($($t:ty),*) => {
        $(impl Key for $t {
            #[inline]
            fn canonical(&self) -> u64 {
                *self as u64
            }
        })*
    };
}

impl_key_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Key for [u8] {
    #[inline]
    fn canonical(&self) -> u64 {
        fnv1a(self)
    }
}

impl Key for str {
    #[inline]
    fn canonical(&self) -> u64 {
        fnv1a(self.as_bytes())
    }
}

impl Key for String {
    #[inline]
    fn canonical(&self) -> u64 {
        fnv1a(self.as_bytes())
    }
}

impl Key for Vec<u8> {
    #[inline]
    fn canonical(&self) -> u64 {
        fnv1a(self)
    }
}

impl<T: Key + ?Sized> Key for &T {
    #[inline]
    fn canonical(&self) -> u64 {
        (**self).canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_are_identity() {
        assert_eq!(42u64.canonical(), 42);
        assert_eq!(42u32.canonical(), 42);
        assert_eq!(7i64.canonical(), 7);
    }

    #[test]
    fn negative_integers_wrap_consistently() {
        assert_eq!((-1i64).canonical(), u64::MAX);
        // The same logical value keyed twice must agree.
        assert_eq!((-5i32).canonical(), (-5i32).canonical());
    }

    #[test]
    fn string_keys_match_byte_keys() {
        assert_eq!("abc".canonical(), b"abc".as_slice().canonical());
        assert_eq!(String::from("abc").canonical(), "abc".canonical());
    }

    #[test]
    fn distinct_strings_hash_distinctly() {
        // FNV is not collision-free, but these short keys must differ.
        assert_ne!("a".canonical(), "b".canonical());
        assert_ne!("ab".canonical(), "ba".canonical());
        assert_ne!("".canonical(), "a".canonical());
    }

    #[test]
    fn reference_key_delegates() {
        let s = "hello";
        assert_eq!((&s).canonical(), s.canonical());
    }
}
