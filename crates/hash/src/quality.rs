//! Statistical quality diagnostics for hash families.
//!
//! §6.4 of the paper traces a performance anomaly to its hash functions
//! ("the hash functions are not perfectly random, and have some effect of
//! clustering"). These diagnostics make that observation measurable for
//! any [`HashFamily`]: a chi-square uniformity score over bucket
//! occupancy, a collision-rate probe, and a pairwise stride-correlation
//! probe. The tests pin the expected verdicts — the paper-faithful
//! multiplicative family keeps uniform marginals yet carries arithmetic
//! structure between related keys; the mixing and tabulation families
//! destroy both.

use crate::family::HashFamily;

/// Result of a uniformity probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityReport {
    /// Pearson chi-square statistic over the bucket occupancy.
    pub chi_square: f64,
    /// Degrees of freedom (`buckets − 1`).
    pub degrees: usize,
    /// `chi_square / degrees`; ≈ 1.0 for a uniform hash, ≫ 1 for
    /// clustering.
    pub ratio: f64,
}

/// Hashes `keys` through function 0 of `family` and scores the bucket
/// occupancy against the uniform expectation.
pub fn uniformity<F, I>(family: &F, keys: I) -> UniformityReport
where
    F: HashFamily,
    I: IntoIterator<Item = u64>,
{
    let m = family.m();
    assert!(m >= 2, "need at least two buckets");
    let mut counts = vec![0u64; m];
    let mut n = 0u64;
    for key in keys {
        counts[family.indexes(&key)[0]] += 1;
        n += 1;
    }
    let expect = n as f64 / m as f64;
    let chi: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect.max(f64::MIN_POSITIVE)
        })
        .sum();
    UniformityReport {
        chi_square: chi,
        degrees: m - 1,
        ratio: chi / (m - 1) as f64,
    }
}

/// Fraction of key pairs (within a sample) that collide on function 0 —
/// should be ≈ `pairs/m` for a uniform hash.
pub fn collision_rate<F: HashFamily>(family: &F, keys: &[u64]) -> f64 {
    if keys.len() < 2 {
        return 0.0;
    }
    let mut buckets = std::collections::HashMap::new();
    for &key in keys {
        *buckets.entry(family.indexes(&key)[0]).or_insert(0u64) += 1;
    }
    let colliding_pairs: u64 = buckets.values().map(|&c| c * (c - 1) / 2).sum();
    let total_pairs = keys.len() as u64 * (keys.len() as u64 - 1) / 2;
    colliding_pairs as f64 / total_pairs as f64
}

/// Pairwise-structure probe: the fraction of sampled keys `v` for which
/// `H(v + stride) − H(v) (mod m)` equals the most common such difference.
///
/// Purely multiplicative hashing maps arithmetic progressions to
/// arithmetic progressions — the difference concentrates on the two
/// integers bracketing `m·frac(α·stride)` (the floor splits it), so this
/// score approaches 1.0. A well-mixed family scores ≈ a few/m. This is the
/// precise sense in which the paper's §6.4 hashes "have some effect of
/// clustering" despite uniform marginals. The score sums the two most
/// common differences.
pub fn stride_correlation<F: HashFamily>(family: &F, stride: u64, samples: u64) -> f64 {
    assert!(samples > 0);
    let m = family.m() as i64;
    let mut diffs = std::collections::HashMap::new();
    for v in 0..samples {
        let a = family.indexes(&v)[0] as i64;
        let b = family.indexes(&(v + stride))[0] as i64;
        let d = (b - a).rem_euclid(m);
        *diffs.entry(d).or_insert(0u64) += 1;
    }
    let mut counts: Vec<u64> = diffs.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top2: u64 = counts.iter().take(2).sum();
    top2 as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{MixFamily, MultiplyFamily};
    use crate::tabulation::TabulationFamily;

    const BUCKETS: usize = 256;

    fn sequential() -> impl Iterator<Item = u64> {
        0u64..100_000
    }

    #[test]
    fn mixing_family_is_uniform() {
        let f = MixFamily::new(BUCKETS, 1, 5);
        assert!(uniformity(&f, sequential()).ratio < 1.6);
    }

    #[test]
    fn tabulation_family_is_uniform() {
        let f = TabulationFamily::new(BUCKETS, 1, 5);
        assert!(uniformity(&f, sequential()).ratio < 1.6);
    }

    #[test]
    fn multiplicative_family_is_marginally_uniform_too() {
        // Marginal occupancy is fine even for the paper-faithful family —
        // its weakness is *pairwise* structure, probed below.
        let f = MultiplyFamily::new(BUCKETS, 1, 5);
        assert!(uniformity(&f, sequential()).ratio < 1.6);
    }

    #[test]
    fn multiplicative_family_preserves_stride_structure() {
        // H(v+d) − H(v) is (nearly) constant for multiplicative hashing:
        // arithmetic progressions stay arithmetic — the §6.4 "clustering".
        let mult = MultiplyFamily::new(BUCKETS, 1, 5);
        let mix = MixFamily::new(BUCKETS, 1, 5);
        for stride in [1u64, 17, 4096] {
            let c_mult = stride_correlation(&mult, stride, 20_000);
            let c_mix = stride_correlation(&mix, stride, 20_000);
            assert!(
                c_mult > 0.9,
                "stride {stride}: multiplicative correlation {c_mult}"
            );
            assert!(c_mix < 0.1, "stride {stride}: mixing correlation {c_mix}");
        }
    }

    #[test]
    fn tabulation_breaks_stride_structure() {
        let f = TabulationFamily::new(BUCKETS, 1, 5);
        assert!(stride_correlation(&f, 4096, 20_000) < 0.1);
    }

    #[test]
    fn collision_rate_tracks_birthday_math() {
        let f = MixFamily::new(1 << 16, 1, 7);
        let keys: Vec<u64> = (0..2000).collect();
        let rate = collision_rate(&f, &keys);
        let expect = 1.0 / (1 << 16) as f64;
        assert!(rate < expect * 3.0, "rate {rate} vs expected {expect}");
    }

    #[test]
    fn empty_and_single_key_edge_cases() {
        let f = MixFamily::new(16, 1, 1);
        assert_eq!(collision_rate(&f, &[]), 0.0);
        assert_eq!(collision_rate(&f, &[42]), 0.0);
    }
}
