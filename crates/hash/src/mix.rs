//! Low-level 64-bit mixing primitives.
//!
//! These are the building blocks of the [`crate::MixFamily`] and of seed
//! derivation throughout the workspace. They are deliberately dependency-free
//! so that two sites that agree on a seed always agree on hash values — a
//! requirement for the distributed union/multiply operations of the paper.

/// The SplitMix64 output function (Steele, Lea & Flood 2014).
///
/// A bijection on `u64` with excellent avalanche properties; the standard
/// finalizer used to stretch one seed into a stream of independent-looking
/// values.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// MurmurHash3's 64-bit finalizer (`fmix64`).
///
/// A fast bijective mixer: flipping any input bit flips each output bit with
/// probability ≈ 1/2. Used to decorrelate per-function hashes.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// A tiny deterministic PRNG based on [`splitmix64`].
///
/// Used wherever the workspace needs reproducible parameter draws (e.g. the
/// random `α` multipliers of the paper's modulo/multiply family) without
/// pulling a full RNG dependency into hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Next odd 64-bit value (never zero), suitable as a multiplicative
    /// hashing constant.
    #[inline]
    pub fn next_odd_u64(&mut self) -> u64 {
        self.next_u64() | 1
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique (Lemire 2016); the modulo bias is
    /// at most `bound / 2^64`, negligible for every `bound` we use.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // A bijection cannot collide; sample a few thousand inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fmix64(i)));
        }
    }

    #[test]
    fn fmix64_avalanche() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let x = 0xdead_beef_cafe_f00du64;
        let base = fmix64(x);
        let mut total = 0u32;
        for bit in 0..64 {
            total += (base ^ fmix64(x ^ (1 << bit))).count_ones();
        }
        let avg = f64::from(total) / 64.0;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn next_odd_is_odd() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(rng.next_odd_u64() & 1, 1);
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues of a small bound should appear"
        );
    }
}
