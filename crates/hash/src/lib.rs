//! Hash-function families for Bloom filters and Spectral Bloom Filters.
//!
//! The SBF paper (Cohen & Matias, SIGMOD 2003) uses `k` hash functions
//! `h_1 .. h_k` mapping keys from a universe `U` into counter positions
//! `{0 .. m-1}`. This crate provides:
//!
//! * [`Key`] — a trait turning application keys (integers, strings, byte
//!   slices) into a canonical 64-bit value,
//! * [`HashFamily`] — the abstraction the filter crates program against,
//! * [`MultiplyFamily`] — the paper's "modulo/multiply" family
//!   `H(v) = ⌈m·(αv mod 1)⌉` realized in 64-bit fixed point,
//! * [`MixFamily`] — a SplitMix64-based family with much better diffusion
//!   (the recommended default),
//! * [`DoubleHashFamily`] — Kirsch–Mitzenmacher double hashing, deriving all
//!   `k` indices from two base hashes,
//! * [`TabulationFamily`] — simple tabulation (3-independent with
//!   Chernoff-grade concentration), the provable-guarantees option,
//! * [`BlockedFamily`] — the external-memory scheme of Manber & Wu
//!   (§2.2 "External memory SBF"): a first-level hash picks a block, the
//!   `k` functions hash within that block, confining each lookup to one
//!   block of storage.
//!
//! All families are deterministic given their seed, so filters built with
//! equal parameters can be united or multiplied counter-wise as the paper
//! requires for distributed processing.

// Library code must surface failures as `Result`/documented panics, never
// ad-hoc `unwrap`/`expect` (ISSUE 4 lint wall); tests keep idiomatic unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// `deny` rather than `forbid`: the `prefetch` and `dispatch` modules
// narrowly re-allow unsafe for the architecture intrinsics they wrap (a
// faultless cache hint; runtime-feature-gated SIMD kernels with documented
// safety arguments); everything else in the crate remains statically
// unsafe-free, and downstream crates (`spectral-bloom` among them) keep
// their own `#![forbid(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod blocked;
pub mod dispatch;
pub mod family;
pub mod key;
pub mod mix;
pub mod prefetch;
pub mod quality;
pub(crate) mod sync;
pub mod tabulation;

pub use blocked::BlockedFamily;
pub use dispatch::{set_simd_level, simd_level, SimdLevel, LANES};
pub use family::{DoubleHashFamily, HashFamily, MixFamily, MultiplyFamily};
pub use key::Key;
pub use mix::{fmix64, splitmix64, SplitMix64};
pub use prefetch::{prefetch_read, prefetch_slice, prefetch_slice_write, prefetch_write};
pub use quality::{collision_rate, stride_correlation, uniformity, UniformityReport};
pub use tabulation::TabulationFamily;

/// Maximum number of hash functions supported without heap allocation.
///
/// The paper's experiments use `k ≤ 10`; 16 leaves generous headroom while
/// letting callers keep index buffers on the stack.
pub const MAX_K: usize = 16;

/// A fixed-capacity buffer of counter indices produced by a [`HashFamily`].
///
/// Using a stack buffer keeps per-operation allocations at zero, which
/// matters because every insert/lookup of the SBF computes `k` indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexBuf {
    buf: [usize; MAX_K],
    len: usize,
}

impl IndexBuf {
    /// An empty buffer.
    #[inline]
    pub const fn new() -> Self {
        IndexBuf {
            buf: [0; MAX_K],
            len: 0,
        }
    }

    /// Pushes an index. Panics if the buffer is full (`k > MAX_K`).
    #[inline]
    pub fn push(&mut self, idx: usize) {
        assert!(self.len < MAX_K, "more than MAX_K hash functions requested");
        self.buf[self.len] = idx;
        self.len += 1;
    }

    /// Number of indices stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The indices as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len]
    }

    /// Overwrites the buffer in place: sets the length to `k` and hands
    /// the writer `f` the `k` slots to fill.
    ///
    /// This is the allocation- and copy-free way to refill a long-lived
    /// buffer (the batch pipelines keep a ring of these and refill one
    /// slot per item): building a fresh `IndexBuf` on the stack and
    /// assigning it would copy the full `MAX_K`-sized struct — two cache
    /// lines — per item, where this touches only the `k` slots actually
    /// used.
    #[inline]
    pub fn fill(&mut self, k: usize, f: impl FnOnce(&mut [usize])) {
        assert!(k <= MAX_K, "more than MAX_K hash functions requested");
        self.len = k;
        f(&mut self.buf[..k]);
    }

    /// Sorts the indices and removes duplicates in place.
    ///
    /// Two hash functions of a family can collide on the same counter
    /// (`h_i(x) = h_j(x)`, `i ≠ j`). The paper's §3.1 model increments each
    /// *distinct* counter of a key once per occurrence, so the filter cores
    /// canonicalise every per-key index set through this method before
    /// touching counters — otherwise a single insert would bump the shared
    /// counter twice and inflate `min`-based estimates. Insertion sort: `k`
    /// is at most [`MAX_K`], where it beats the general-purpose sorts.
    #[inline]
    pub fn sort_dedup(&mut self) {
        for i in 1..self.len {
            let v = self.buf[i];
            let mut j = i;
            while j > 0 && self.buf[j - 1] > v {
                self.buf[j] = self.buf[j - 1];
                j -= 1;
            }
            self.buf[j] = v;
        }
        let mut w = 0;
        for r in 0..self.len {
            if w == 0 || self.buf[r] != self.buf[w - 1] {
                self.buf[w] = self.buf[r];
                w += 1;
            }
        }
        self.len = w;
    }
}

impl Default for IndexBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for IndexBuf {
    type Target = [usize];

    #[inline]
    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a IndexBuf {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_buf_push_and_read() {
        let mut b = IndexBuf::new();
        assert!(b.is_empty());
        b.push(3);
        b.push(7);
        assert_eq!(b.len(), 2);
        assert_eq!(b.as_slice(), &[3, 7]);
        assert_eq!((&b).into_iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn sort_dedup_orders_and_uniquifies() {
        let mut b = IndexBuf::new();
        for i in [9usize, 3, 9, 1, 3, 7, 1] {
            b.push(i);
        }
        b.sort_dedup();
        assert_eq!(b.as_slice(), &[1, 3, 7, 9]);
        // Idempotent, and harmless on the boundary cases.
        b.sort_dedup();
        assert_eq!(b.as_slice(), &[1, 3, 7, 9]);
        let mut empty = IndexBuf::new();
        empty.sort_dedup();
        assert!(empty.is_empty());
        let mut one = IndexBuf::new();
        one.push(5);
        one.sort_dedup();
        assert_eq!(one.as_slice(), &[5]);
    }

    #[test]
    #[should_panic(expected = "MAX_K")]
    fn index_buf_overflow_panics() {
        let mut b = IndexBuf::new();
        for i in 0..=MAX_K {
            b.push(i);
        }
    }
}
