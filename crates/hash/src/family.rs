//! Hash-function families mapping keys to `k` counter positions.

use crate::dispatch::{self, LANES};
use crate::key::Key;
use crate::mix::{fmix64, SplitMix64};
use crate::{IndexBuf, MAX_K};

/// A family of `k` hash functions onto the range `{0 .. m-1}`.
///
/// This is the abstraction every filter in the workspace programs against.
/// Families are value types: two families constructed with equal parameters
/// (including the seed) produce identical indices, which is what makes the
/// paper's distributed union (`C = C_1 + C_2`) and multiply operations sound.
pub trait HashFamily: Clone {
    /// Number of hash functions `k`.
    fn k(&self) -> usize;

    /// Size of the index range `m`.
    fn m(&self) -> usize;

    /// Writes the `k` indices of `key` into `out[..k]`.
    ///
    /// `out` must have length at least `k`.
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]);

    /// Returns the `k` indices of `key` in a stack buffer.
    #[inline]
    fn indexes<K: Key + ?Sized>(&self, key: &K) -> IndexBuf {
        let mut buf = IndexBuf::new();
        let mut tmp = [0usize; MAX_K];
        let k = self.k();
        self.indexes_into(key, &mut tmp[..k]);
        for &i in &tmp[..k] {
            buf.push(i);
        }
        buf
    }

    /// Hashes [`LANES`] canonical key values in one pass, writing the
    /// indices seed-major: `out[i * LANES + lane]` receives `h_i` of lane
    /// `lane`. `out` must hold at least `k() * LANES` slots.
    ///
    /// The inputs are *canonical* values ([`Key::canonical`]), not keys —
    /// every family in this crate derives its indices solely from that
    /// 64-bit value, and `u64::canonical` is the identity, so
    /// `indexes_lanes([key.canonical(); ..])` agrees exactly with
    /// `indexes_into(&key, ..)` lane by lane. The default implementation is
    /// that scalar loop; [`MixFamily`], [`MultiplyFamily`] and
    /// `BlockedFamily` override it with runtime-dispatched SIMD kernels
    /// (`crate::dispatch`) that are bit-identical to the scalar path.
    #[inline]
    fn indexes_lanes(&self, vs: [u64; LANES], out: &mut [usize]) {
        let k = self.k();
        debug_assert!(out.len() >= k * LANES);
        let mut tmp = [0usize; MAX_K];
        for (lane, v) in vs.into_iter().enumerate() {
            self.indexes_into(&v, &mut tmp[..k]);
            for (i, &idx) in tmp[..k].iter().enumerate() {
                out[i * LANES + lane] = idx;
            }
        }
    }
}

fn validate_params(m: usize, k: usize) {
    assert!(m > 0, "hash family needs m > 0");
    assert!(k > 0, "hash family needs k > 0");
    assert!(
        k <= MAX_K,
        "hash family supports at most {MAX_K} functions, got {k}"
    );
}

/// The paper's "modulo/multiply" family: `H(v) = ⌊m · (α v mod 1)⌋`.
///
/// Section 6.1 of the paper: *"The SBF was implemented using hash functions
/// of modulo/multiply type: given a value v, its hash value H(v),
/// 0 ≤ H(v) < m is computed by H(v) = ⌈m(αv mod 1)⌉, where α is taken
/// uniformly at random from \[0,1\]."*
///
/// We realize `α ∈ [0,1)` as a random odd 64-bit integer `a` interpreted as
/// the fixed-point fraction `a / 2^64`; then `αv mod 1` is simply the
/// wrapping product `a·v` reinterpreted as a fraction, and scaling by `m`
/// is a widening multiply. This is exact fixed-point arithmetic, not a
/// floating-point approximation.
///
/// Faithful to the paper, this family applies no pre-mixing to the key, so
/// it inherits multiplicative hashing's weakness on structured integer keys
/// — the clustering the paper observes in its Figure 12 discussion. Prefer
/// [`MixFamily`] unless reproducing that behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplyFamily {
    m: usize,
    alphas: Vec<u64>,
}

impl MultiplyFamily {
    /// Creates `k` functions onto `{0..m-1}` with multipliers drawn from
    /// `seed`.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        validate_params(m, k);
        let mut rng = SplitMix64::new(seed ^ 0x6d75_6c74_6970_6c79); // "multiply"
        let alphas = (0..k).map(|_| rng.next_odd_u64()).collect();
        MultiplyFamily { m, alphas }
    }
}

impl HashFamily for MultiplyFamily {
    #[inline]
    fn k(&self) -> usize {
        self.alphas.len()
    }

    #[inline]
    fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let v = key.canonical();
        let m = self.m as u64;
        for (slot, &a) in out.iter_mut().zip(&self.alphas) {
            let frac = a.wrapping_mul(v); // (α·v) mod 1 in 64-bit fixed point
            *slot = ((u128::from(frac) * u128::from(m)) >> 64) as usize;
        }
    }

    #[inline]
    fn indexes_lanes(&self, vs: [u64; LANES], out: &mut [usize]) {
        dispatch::multiply_indexes_lanes(vs, &self.alphas, self.m as u64, out);
    }
}

/// A SplitMix64/Murmur-finalizer family with strong diffusion.
///
/// Each of the `k` functions owns an independent 64-bit seed; the index is
/// `fmix64(key ⊕ seed_i)` reduced to `{0..m-1}` by a widening multiply.
/// This behaves like `k` independent uniform functions on arbitrary key
/// distributions and is the recommended default family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixFamily {
    m: usize,
    seeds: Vec<u64>,
}

impl MixFamily {
    /// Creates `k` functions onto `{0..m-1}` seeded from `seed`.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        validate_params(m, k);
        let mut rng = SplitMix64::new(seed ^ 0x6d69_7866_616d_696c); // "mixfamil"
        let seeds = (0..k).map(|_| rng.next_u64()).collect();
        MixFamily { m, seeds }
    }
}

impl HashFamily for MixFamily {
    #[inline]
    fn k(&self) -> usize {
        self.seeds.len()
    }

    #[inline]
    fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let v = key.canonical();
        let m = self.m as u64;
        for (slot, &s) in out.iter_mut().zip(&self.seeds) {
            let h = fmix64(v ^ s);
            *slot = ((u128::from(h) * u128::from(m)) >> 64) as usize;
        }
    }

    #[inline]
    fn indexes_lanes(&self, vs: [u64; LANES], out: &mut [usize]) {
        dispatch::mix_indexes_lanes(vs, &self.seeds, self.m as u64, out);
    }
}

/// Kirsch–Mitzenmacher double hashing: `g_i(x) = h1(x) + i·h2(x) mod m`.
///
/// Computes only two full hashes per key and derives all `k` indices
/// arithmetically, preserving the Bloom-filter false-positive asymptotics.
/// This is the fastest family for large `k` and is used by the throughput
/// benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleHashFamily {
    m: usize,
    k: usize,
    seed1: u64,
    seed2: u64,
}

impl DoubleHashFamily {
    /// Creates a double-hashing family of `k` functions onto `{0..m-1}`.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        validate_params(m, k);
        let mut rng = SplitMix64::new(seed ^ 0x646f_7562_6c65_6873); // "doublehs"
        DoubleHashFamily {
            m,
            k,
            seed1: rng.next_u64(),
            seed2: rng.next_u64(),
        }
    }
}

impl HashFamily for DoubleHashFamily {
    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let v = key.canonical();
        let m = self.m as u64;
        let h1 = fmix64(v ^ self.seed1) % m;
        // Force h2 odd so that when m is a power of two the probe sequence
        // cycles through all of {0..m-1}; for general m it simply avoids the
        // degenerate h2 = 0 case together with the +1.
        let h2 = (fmix64(v ^ self.seed2) | 1) % m;
        let step = if h2 == 0 { 1 } else { h2 };
        let mut cur = h1;
        for slot in out.iter_mut().take(self.k) {
            *slot = cur as usize;
            cur += step;
            if cur >= m {
                cur -= m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn families(m: usize, k: usize) -> (MultiplyFamily, MixFamily, DoubleHashFamily) {
        (
            MultiplyFamily::new(m, k, 42),
            MixFamily::new(m, k, 42),
            DoubleHashFamily::new(m, k, 42),
        )
    }

    #[test]
    fn indices_are_in_range() {
        for m in [1usize, 2, 3, 17, 1000, 1 << 20] {
            let (f1, f2, f3) = families(m, 5);
            for key in 0u64..500 {
                for idx in f1
                    .indexes(&key)
                    .iter()
                    .chain(f2.indexes(&key).iter())
                    .chain(f3.indexes(&key).iter())
                {
                    assert!(*idx < m, "index {idx} out of range for m={m}");
                }
            }
        }
    }

    #[test]
    fn same_seed_same_indices() {
        let a = MixFamily::new(997, 5, 7);
        let b = MixFamily::new(997, 5, 7);
        for key in 0u64..100 {
            assert_eq!(a.indexes(&key).as_slice(), b.indexes(&key).as_slice());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MixFamily::new(1 << 16, 5, 1);
        let b = MixFamily::new(1 << 16, 5, 2);
        let diff = (0..100u64)
            .filter(|v| a.indexes(v).as_slice() != b.indexes(v).as_slice())
            .count();
        assert!(diff > 90);
    }

    #[test]
    fn k_and_m_are_reported() {
        let (f1, f2, f3) = families(1234, 7);
        for (k, m) in [(f1.k(), f1.m()), (f2.k(), f2.m()), (f3.k(), f3.m())] {
            assert_eq!(k, 7);
            assert_eq!(m, 1234);
        }
    }

    #[test]
    fn mix_family_is_roughly_uniform() {
        // Hash 100k sequential keys into 64 buckets with one function and
        // check occupancy is within ±20% of uniform — sequential integers
        // are the adversarial case for multiplicative families.
        let f = MixFamily::new(64, 1, 3);
        let mut counts = [0usize; 64];
        for key in 0u64..100_000 {
            counts[f.indexes(&key)[0]] += 1;
        }
        let expect = 100_000.0 / 64.0;
        for &c in &counts {
            let ratio = c as f64 / expect;
            assert!((0.8..1.2).contains(&ratio), "bucket skew {ratio}");
        }
    }

    #[test]
    fn multiply_family_matches_paper_formula() {
        // For a known α, H(v) must equal floor(m * frac(α·v / 2^64 scale)).
        let f = MultiplyFamily::new(1000, 1, 9);
        // Recompute from scratch: extract α via the generator the family used.
        let mut rng = SplitMix64::new(9 ^ 0x6d75_6c74_6970_6c79);
        let a = rng.next_odd_u64();
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            let frac = a.wrapping_mul(v);
            let want = ((u128::from(frac) * 1000u128) >> 64) as usize;
            assert_eq!(f.indexes(&v)[0], want);
        }
    }

    #[test]
    fn double_hash_first_index_matches_h1() {
        let f = DoubleHashFamily::new(101, 4, 5);
        for v in 0u64..50 {
            let idxs = f.indexes(&v);
            assert_eq!(idxs.len(), 4);
            // consecutive indices differ by a constant step mod m
            let d1 = (idxs[1] + 101 - idxs[0]) % 101;
            let d2 = (idxs[2] + 101 - idxs[1]) % 101;
            let d3 = (idxs[3] + 101 - idxs[2]) % 101;
            assert_eq!(d1, d2);
            assert_eq!(d2, d3);
        }
    }

    #[test]
    fn string_keys_work_through_families() {
        let f = MixFamily::new(512, 3, 11);
        let a = f.indexes(&"hello");
        let b = f.indexes(&String::from("hello"));
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(
            f.indexes(&"hello").as_slice(),
            f.indexes(&"world").as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "m > 0")]
    fn zero_m_rejected() {
        let _ = MixFamily::new(0, 3, 1);
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn zero_k_rejected() {
        let _ = MixFamily::new(10, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn huge_k_rejected() {
        let _ = MixFamily::new(10, MAX_K + 1, 1);
    }

    /// Lane kernels must agree with the per-key scalar path, family by
    /// family, at every dispatch level the machine supports.
    #[test]
    fn lanes_match_scalar_per_family() {
        use crate::dispatch::{set_simd_level, simd_level, SimdLevel};
        let initial = simd_level();
        for m in [1usize, 2, 97, 1 << 16, 1 << 20] {
            let k = 5;
            let mul = MultiplyFamily::new(m, k, 13);
            let mix = MixFamily::new(m, k, 13);
            let dh = DoubleHashFamily::new(m, k, 13);
            let mut rng = SplitMix64::new(0xfeed);
            for _ in 0..50 {
                let vs = [
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                ];
                for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                    set_simd_level(level);
                    check_lanes(&mul, vs);
                    check_lanes(&mix, vs);
                    // DoubleHashFamily has no vector override; the default
                    // lane method must still agree with the scalar path.
                    check_lanes(&dh, vs);
                }
            }
        }
        set_simd_level(initial);
    }

    fn check_lanes<F: HashFamily>(f: &F, vs: [u64; crate::LANES]) {
        let k = f.k();
        let mut lanes = [0usize; MAX_K * crate::LANES];
        f.indexes_lanes(vs, &mut lanes[..k * crate::LANES]);
        for (lane, &v) in vs.iter().enumerate() {
            let mut want = [0usize; MAX_K];
            f.indexes_into(&v, &mut want[..k]);
            for i in 0..k {
                assert_eq!(
                    lanes[i * crate::LANES + lane],
                    want[i],
                    "lane {lane} fn {i} diverged (m={}, k={k})",
                    f.m()
                );
            }
        }
    }
}
