//! Synchronization facade: the single point where this crate binds to
//! either `std::sync` or the in-workspace model checker.
//!
//! The only concurrent state in `sbf-hash` is the process-global SIMD
//! dispatch level ([`crate::dispatch`]) — a monotone configuration cache,
//! not a protocol — but it still imports its primitives from here, never
//! from `std::sync` directly (enforced by the repo's `static_guards`
//! test), so `RUSTFLAGS='--cfg sbf_modelcheck'` builds see the model
//! types like every other crate.

// The Mutex is used only by the test-level lock, so its re-export is
// test-gated to stay warning-free in library builds.
#[cfg(all(test, not(sbf_modelcheck)))]
pub use std::sync::{Mutex, MutexGuard};

/// Atomic integer types, mirroring `std::sync::atomic`.
#[cfg(not(sbf_modelcheck))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicUsize, Ordering};
}

#[cfg(all(test, sbf_modelcheck))]
pub use sbf_modelcheck::sync::{Mutex, MutexGuard};

/// Model atomic integer types (checker build).
#[cfg(sbf_modelcheck)]
pub mod atomic {
    pub use sbf_modelcheck::sync::atomic::{AtomicUsize, Ordering};
}
