//! Blocked (external-memory) hashing, after Manber & Wu.
//!
//! Section 2.2 of the paper ("External memory SBF") recalls the multi-level
//! scheme of \[MW94\]: a first-level hash assigns each key to a *block*, and
//! the `k` Bloom hash functions then hash only *within* that block. A lookup
//! therefore touches a single block — one page of external storage — instead
//! of up to `k` random pages. The paper notes that accuracy degrades only
//! negligibly for large enough blocks; the `blocked_vs_flat` ablation bench
//! measures exactly that.

use crate::dispatch::{self, LANES};
use crate::family::HashFamily;
use crate::key::Key;
use crate::mix::fmix64;

/// A two-level hash family: key → block, then `k` functions within the block.
///
/// Wraps an inner family that spans a single block of `block_size` counters;
/// the final index is `block_base + inner_index`. The total range is
/// `num_blocks · block_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedFamily<F: HashFamily> {
    inner: F,
    num_blocks: usize,
    block_seed: u64,
}

impl<F: HashFamily> BlockedFamily<F> {
    /// Creates a blocked family.
    ///
    /// `inner` must span exactly one block (`inner.m()` is the block size);
    /// the overall range becomes `num_blocks * inner.m()`.
    pub fn new(inner: F, num_blocks: usize, seed: u64) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        assert!(
            inner.m().checked_mul(num_blocks).is_some(),
            "num_blocks * block_size overflows usize"
        );
        BlockedFamily {
            inner,
            num_blocks,
            block_seed: seed ^ 0x626c_6f63_6b65_6421,
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Counters per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.inner.m()
    }

    /// The block a key falls into.
    #[inline]
    pub fn block_of<K: Key + ?Sized>(&self, key: &K) -> usize {
        let h = fmix64(key.canonical() ^ self.block_seed);
        ((u128::from(h) * self.num_blocks as u128) >> 64) as usize
    }
}

impl<F: HashFamily> HashFamily for BlockedFamily<F> {
    #[inline]
    fn k(&self) -> usize {
        self.inner.k()
    }

    #[inline]
    fn m(&self) -> usize {
        self.inner.m() * self.num_blocks
    }

    #[inline]
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let base = self.block_of(key) * self.inner.m();
        self.inner.indexes_into(key, out);
        for slot in out.iter_mut().take(self.inner.k()) {
            *slot += base;
        }
    }

    #[inline]
    fn indexes_lanes(&self, vs: [u64; LANES], out: &mut [usize]) {
        // First level: pick the four blocks in one lane pass (the same
        // seeded mix + widening reduce `block_of` computes per key).
        let blocks = dispatch::mix_reduce_lanes(vs, self.block_seed, self.num_blocks as u64);
        // Second level: the inner family's lane kernel within one block.
        self.inner.indexes_lanes(vs, out);
        let bs = self.inner.m();
        let k = self.inner.k();
        for i in 0..k {
            for (lane, &b) in blocks.iter().enumerate() {
                out[i * LANES + lane] += b * bs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MixFamily;

    fn blocked(block_size: usize, blocks: usize, k: usize) -> BlockedFamily<MixFamily> {
        BlockedFamily::new(MixFamily::new(block_size, k, 17), blocks, 17)
    }

    #[test]
    fn all_indices_land_in_one_block() {
        let f = blocked(128, 32, 5);
        for key in 0u64..1000 {
            let b = f.block_of(&key);
            for &idx in f.indexes(&key).iter() {
                assert_eq!(idx / 128, b, "index escaped its block");
            }
        }
    }

    #[test]
    fn total_range_is_blocks_times_block_size() {
        let f = blocked(128, 32, 5);
        assert_eq!(f.m(), 128 * 32);
        assert_eq!(f.k(), 5);
        for key in 0u64..1000 {
            for &idx in f.indexes(&key).iter() {
                assert!(idx < f.m());
            }
        }
    }

    #[test]
    fn keys_spread_over_blocks() {
        let f = blocked(64, 16, 3);
        let mut seen = [false; 16];
        for key in 0u64..500 {
            seen[f.block_of(&key)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "500 keys should touch all 16 blocks"
        );
    }

    #[test]
    fn deterministic() {
        let a = blocked(64, 8, 4);
        let b = blocked(64, 8, 4);
        for key in 0u64..100 {
            assert_eq!(a.indexes(&key).as_slice(), b.indexes(&key).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = blocked(64, 0, 4);
    }

    /// The two-level lane kernel (vector block pick + inner lane pass) must
    /// agree with the per-key scalar path at every dispatch level.
    #[test]
    fn lanes_match_scalar() {
        use crate::dispatch::{set_simd_level, simd_level, SimdLevel};
        use crate::mix::SplitMix64;
        use crate::{LANES, MAX_K};
        let initial = simd_level();
        let f = blocked(128, 32, 5);
        let mut rng = SplitMix64::new(0xb10c);
        for _ in 0..100 {
            let vs = [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ];
            for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                set_simd_level(level);
                let mut lanes = [0usize; MAX_K * LANES];
                f.indexes_lanes(vs, &mut lanes[..f.k() * LANES]);
                for (lane, &v) in vs.iter().enumerate() {
                    let mut want = [0usize; MAX_K];
                    f.indexes_into(&v, &mut want[..f.k()]);
                    for i in 0..f.k() {
                        assert_eq!(lanes[i * LANES + lane], want[i], "lane {lane} fn {i}");
                    }
                }
            }
        }
        set_simd_level(initial);
    }
}
