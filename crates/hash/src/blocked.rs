//! Blocked (external-memory) hashing, after Manber & Wu.
//!
//! Section 2.2 of the paper ("External memory SBF") recalls the multi-level
//! scheme of \[MW94\]: a first-level hash assigns each key to a *block*, and
//! the `k` Bloom hash functions then hash only *within* that block. A lookup
//! therefore touches a single block — one page of external storage — instead
//! of up to `k` random pages. The paper notes that accuracy degrades only
//! negligibly for large enough blocks; the `blocked_vs_flat` ablation bench
//! measures exactly that.

use crate::family::HashFamily;
use crate::key::Key;
use crate::mix::fmix64;

/// A two-level hash family: key → block, then `k` functions within the block.
///
/// Wraps an inner family that spans a single block of `block_size` counters;
/// the final index is `block_base + inner_index`. The total range is
/// `num_blocks · block_size`.
#[derive(Debug, Clone)]
pub struct BlockedFamily<F: HashFamily> {
    inner: F,
    num_blocks: usize,
    block_seed: u64,
}

impl<F: HashFamily> BlockedFamily<F> {
    /// Creates a blocked family.
    ///
    /// `inner` must span exactly one block (`inner.m()` is the block size);
    /// the overall range becomes `num_blocks * inner.m()`.
    pub fn new(inner: F, num_blocks: usize, seed: u64) -> Self {
        assert!(num_blocks > 0, "need at least one block");
        assert!(
            inner.m().checked_mul(num_blocks).is_some(),
            "num_blocks * block_size overflows usize"
        );
        BlockedFamily {
            inner,
            num_blocks,
            block_seed: seed ^ 0x626c_6f63_6b65_6421,
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Counters per block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.inner.m()
    }

    /// The block a key falls into.
    #[inline]
    pub fn block_of<K: Key + ?Sized>(&self, key: &K) -> usize {
        let h = fmix64(key.canonical() ^ self.block_seed);
        ((u128::from(h) * self.num_blocks as u128) >> 64) as usize
    }
}

impl<F: HashFamily> HashFamily for BlockedFamily<F> {
    #[inline]
    fn k(&self) -> usize {
        self.inner.k()
    }

    #[inline]
    fn m(&self) -> usize {
        self.inner.m() * self.num_blocks
    }

    #[inline]
    fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
        let base = self.block_of(key) * self.inner.m();
        self.inner.indexes_into(key, out);
        for slot in out.iter_mut().take(self.inner.k()) {
            *slot += base;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MixFamily;

    fn blocked(block_size: usize, blocks: usize, k: usize) -> BlockedFamily<MixFamily> {
        BlockedFamily::new(MixFamily::new(block_size, k, 17), blocks, 17)
    }

    #[test]
    fn all_indices_land_in_one_block() {
        let f = blocked(128, 32, 5);
        for key in 0u64..1000 {
            let b = f.block_of(&key);
            for &idx in f.indexes(&key).iter() {
                assert_eq!(idx / 128, b, "index escaped its block");
            }
        }
    }

    #[test]
    fn total_range_is_blocks_times_block_size() {
        let f = blocked(128, 32, 5);
        assert_eq!(f.m(), 128 * 32);
        assert_eq!(f.k(), 5);
        for key in 0u64..1000 {
            for &idx in f.indexes(&key).iter() {
                assert!(idx < f.m());
            }
        }
    }

    #[test]
    fn keys_spread_over_blocks() {
        let f = blocked(64, 16, 3);
        let mut seen = [false; 16];
        for key in 0u64..500 {
            seen[f.block_of(&key)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "500 keys should touch all 16 blocks"
        );
    }

    #[test]
    fn deterministic() {
        let a = blocked(64, 8, 4);
        let b = blocked(64, 8, 4);
        for key in 0u64..100 {
            assert_eq!(a.indexes(&key).as_slice(), b.indexes(&key).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = blocked(64, 0, 4);
    }
}
