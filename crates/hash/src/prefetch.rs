//! Software prefetch hints for the batched SBF hot path.
//!
//! At production filter sizes (`m` counters ≫ L2) every insert or estimate
//! is `k` scattered counter accesses, and the hot path is bound by cache
//! misses, not hashing. The batch engines in `spectral-bloom` hide that
//! latency by software pipelining: while item `i` is applied, item `i+D`'s
//! counter indices are hashed and their cache lines requested here, so the
//! lines are (usually) resident by the time the pipeline reaches them.
//!
//! This module is the single place in the workspace that touches an
//! architecture intrinsic. `_mm_prefetch` is a pure scheduling hint: it
//! cannot fault, cannot trap, and has no observable effect other than cache
//! state, for *any* pointer value — which is why the wrappers below are
//! sound to expose as safe functions. On architectures without a stable
//! prefetch intrinsic the functions compile to nothing and the pipeline
//! degrades gracefully to hash-ahead batching.

// The crate is `deny(unsafe_code)`; the intrinsic call is confined to this
// module so every other line of the hash crate stays statically
// unsafe-free.
#![allow(unsafe_code)]

/// Hints the CPU to pull the cache line containing `p` into all cache
/// levels with read intent.
///
/// A no-op on architectures without a stable prefetch intrinsic. Safe for
/// any pointer value, including dangling or unaligned ones: prefetch
/// instructions are architecturally defined not to fault.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint instruction; it performs no memory
    // access that can fault and has no architectural side effects beyond
    // cache state, regardless of the address (Intel SDM vol. 2B).
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Portable fallback: rely on the hardware prefetcher.
        let _ = p;
    }
}

/// Hints the CPU to pull the cache line containing `p` into cache in
/// **exclusive** state, anticipating a store.
///
/// A plain-read hint leaves the line shared, so a following store still
/// pays the read-for-ownership upgrade; `PREFETCHW`-class hints request
/// ownership up front, which is what the batched *insert* pipeline wants
/// (its accesses are counter increments, i.e. stores). Same soundness
/// argument as [`prefetch_read`]: a pure hint, valid for any address.
#[inline(always)]
pub fn prefetch_write<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHW/PREFETCHET0 is a hint instruction; it performs no
    // memory access that can fault and has no architectural side effects
    // beyond cache state, regardless of the address (Intel SDM vol. 2B).
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_ET0};
        _mm_prefetch::<_MM_HINT_ET0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Prefetches element `i` of `slice` (bounds-checked; out-of-range indices
/// are ignored, keeping the hint harmless on any input).
#[inline(always)]
pub fn prefetch_slice<T>(slice: &[T], i: usize) {
    if i < slice.len() {
        prefetch_read(slice.as_ptr().wrapping_add(i));
    }
}

/// Write-intent form of [`prefetch_slice`].
#[inline(always)]
pub fn prefetch_slice_write<T>(slice: &[T], i: usize) {
    if i < slice.len() {
        prefetch_write(slice.as_ptr().wrapping_add(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_everywhere() {
        // In-bounds, out-of-bounds, empty, and raw-pointer forms must all
        // be no-ops as far as program semantics go.
        let data = vec![1u64, 2, 3];
        prefetch_slice(&data, 0);
        prefetch_slice(&data, 2);
        prefetch_slice(&data, 999);
        prefetch_slice::<u64>(&[], 0);
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(data.as_ptr());
        assert_eq!(data, [1, 2, 3]);
    }
}
