//! Sequential bit writer and reader over a [`BitVec`].
//!
//! The prefix-free encodings of §4.5 (Elias γ/δ and the "steps" method) are
//! written and decoded sequentially; these cursors keep that code free of
//! index bookkeeping.

use crate::bits::BitVec;

/// Append-only bit writer producing a [`BitVec`].
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: BitVec,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        BitWriter {
            bits: BitVec::new(),
        }
    }

    /// Appends the low `width` bits of `value`, LSB first (`width ≤ 64`).
    pub fn write(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value wider than field"
        );
        let pos = self.bits.len();
        self.bits.resize(pos + width);
        self.bits.write_bits(pos, width, value);
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends `count` copies of `bit`.
    pub fn write_run(&mut self, bit: bool, count: usize) {
        for _ in 0..count {
            self.bits.push(bit);
        }
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Finishes and returns the bits.
    pub fn finish(self) -> BitVec {
        self.bits
    }
}

/// Sequential bit reader over a [`BitVec`] slice of the caller.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a BitVec,
    pos: usize,
    end: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bits`.
    pub fn new(bits: &'a BitVec) -> Self {
        BitReader {
            bits,
            pos: 0,
            end: bits.len(),
        }
    }

    /// Reads the sub-range `start .. end` of `bits`.
    pub fn with_range(bits: &'a BitVec, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= bits.len(),
            "reader range out of bounds"
        );
        BitReader {
            bits,
            pos: start,
            end,
        }
    }

    /// Current absolute bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Reads `width` bits (`width ≤ 64`), advancing the cursor.
    ///
    /// Returns `None` if fewer than `width` bits remain.
    pub fn read(&mut self, width: usize) -> Option<u64> {
        if width > self.remaining() {
            return None;
        }
        let v = self.bits.read_bits(self.pos, width);
        self.pos += width;
        Some(v)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.remaining() == 0 {
            return None;
        }
        let b = self.bits.get(self.pos);
        self.pos += 1;
        Some(b)
    }

    /// Counts and consumes leading zero bits up to the next 1 bit.
    ///
    /// The 1 bit itself is *not* consumed. Returns `None` if the stream
    /// is exhausted before a 1 bit appears (a truncated Elias code).
    pub fn read_unary_zeros(&mut self) -> Option<usize> {
        let mut n = 0;
        while self.pos < self.end {
            if self.bits.get(self.pos) {
                return Some(n);
            }
            self.pos += 1;
            n += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xFFFF, 16);
        w.write(0, 7);
        w.write(u64::MAX, 64);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(16), Some(0xFFFF));
        assert_eq!(r.read(7), Some(0));
        assert_eq!(r.read(64), Some(u64::MAX));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn read_past_end_returns_none_without_advancing() {
        let mut w = BitWriter::new();
        w.write(0b11, 2);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read(3), None);
        assert_eq!(r.position(), 0);
        assert_eq!(r.read(2), Some(0b11));
    }

    #[test]
    fn unary_zero_runs() {
        let mut w = BitWriter::new();
        w.write_run(false, 5);
        w.write_bit(true);
        w.write_run(false, 2);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read_unary_zeros(), Some(5));
        assert_eq!(r.read_bit(), Some(true));
        // Exhausts without finding a 1:
        assert_eq!(r.read_unary_zeros(), None);
    }

    #[test]
    fn ranged_reader_respects_bounds() {
        let mut w = BitWriter::new();
        w.write(0xABCD, 16);
        let bits = w.finish();
        let mut r = BitReader::with_range(&bits, 4, 12);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read(8), Some((0xABCD >> 4) & 0xFF));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn write_bit_interleaves_with_write() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write(0b10, 2);
        w.write_bit(false);
        let bits = w.finish();
        assert_eq!(bits.len(), 4);
        assert_eq!(bits.read_bits(0, 4), 0b0101);
    }
}
