//! Fixed-width packed integer arrays.
//!
//! The String-Array Index stores its offset vectors as arrays of fixed-width
//! integers packed back-to-back in a bit vector (§4.7.1: "each offset
//! inhabits log N bits"). [`PackedVec`] is that representation: `width` bits
//! per entry, random access by multiplication, honest size accounting via
//! [`PackedVec::bits`].

use crate::bits::BitVec;

/// A vector of unsigned integers, each stored in exactly `width` bits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedVec {
    bits: BitVec,
    width: usize,
    len: usize,
}

impl PackedVec {
    /// An empty vector with entries of `width` bits (`width ≤ 64`).
    ///
    /// `width == 0` is allowed and stores nothing; every entry reads as 0.
    pub fn new(width: usize) -> Self {
        assert!(width <= 64, "entry width above 64 bits");
        PackedVec {
            bits: BitVec::new(),
            width,
            len: 0,
        }
    }

    /// An empty vector with room for `cap` entries.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        assert!(width <= 64, "entry width above 64 bits");
        PackedVec {
            bits: BitVec::with_capacity(width * cap),
            width,
            len: 0,
        }
    }

    /// Entry width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total storage in bits (the honest cost used by the size reports).
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits.len()
    }

    /// Appends `value`, which must fit in `width` bits.
    pub fn push(&mut self, value: u64) {
        debug_assert!(
            self.width == 64 || value < (1u64 << self.width),
            "value {value} wider than {} bits",
            self.width
        );
        let pos = self.bits.len();
        self.bits.resize(pos + self.width);
        if self.width > 0 {
            self.bits.write_bits(pos, self.width, value);
        }
        self.len += 1;
    }

    /// Reads entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        if self.width == 0 {
            return 0;
        }
        self.bits.read_bits(i * self.width, self.width)
    }

    /// Overwrites entry `i` with `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        debug_assert!(self.width == 64 || value < (1u64 << self.width));
        if self.width > 0 {
            self.bits.write_bits(i * self.width, self.width, value);
        }
    }

    /// Builds from a slice, using the given width.
    pub fn from_slice(width: usize, values: &[u64]) -> Self {
        let mut v = PackedVec::with_capacity(width, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_odd_width() {
        let mut v = PackedVec::new(13);
        let vals: Vec<u64> = (0..500).map(|i| (i * 37) % (1 << 13)).collect();
        for &x in &vals {
            v.push(x);
        }
        assert_eq!(v.len(), 500);
        assert_eq!(v.bits(), 500 * 13);
        for (i, &x) in vals.iter().enumerate() {
            assert_eq!(v.get(i), x, "entry {i}");
        }
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut v = PackedVec::from_slice(7, &[1, 2, 3, 4]);
        v.set(2, 100);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 2, 100, 4]);
    }

    #[test]
    fn width_64_roundtrip() {
        let mut v = PackedVec::new(64);
        v.push(u64::MAX);
        v.push(0);
        v.push(0x0123_4567_89AB_CDEF);
        assert_eq!(v.get(0), u64::MAX);
        assert_eq!(v.get(1), 0);
        assert_eq!(v.get(2), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn width_zero_stores_nothing() {
        let mut v = PackedVec::new(0);
        v.push(0);
        v.push(0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.bits(), 0);
        assert_eq!(v.get(1), 0);
    }

    #[test]
    fn width_one_is_a_bitvec() {
        let mut v = PackedVec::new(1);
        for i in 0..100 {
            v.push(u64::from(i % 3 == 0));
        }
        for i in 0..100 {
            assert_eq!(v.get(i), u64::from(i % 3 == 0));
        }
    }
}
