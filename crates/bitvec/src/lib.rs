//! Bit-vector substrate for the Spectral Bloom Filter workspace.
//!
//! The String-Array Index of the paper (§4) stores `m` variable-length
//! counter strings packed into a base array of `N` bits, and its auxiliary
//! structures need:
//!
//! * random access to arbitrary-width bit fields ([`BitVec::read_bits`] /
//!   [`BitVec::write_bits`]),
//! * overlapping bit-range moves for the "push items toward the nearest
//!   slack" expansion of §4.4 ([`BitVec::copy_within`]),
//! * constant-time `rank` and logarithmic `select` over a frozen bit vector
//!   ([`RankSelect`]) — `rank` powers the `F`-vector translation of §4.7.2,
//!   and `select` powers the classic select-reduction reference solution to
//!   the variable-length access problem (§4.2) that the tests compare the
//!   SAI against,
//! * sequential bit readers/writers ([`BitWriter`], [`BitReader`]) used by
//!   the Elias and "steps" encodings of §4.5.

// Library code must surface failures as `Result`/documented panics, never
// ad-hoc `unwrap`/`expect` (ISSUE 4 lint wall); tests keep idiomatic unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod packed;
pub mod rank;
pub mod stream;

pub use bits::BitVec;
pub use packed::PackedVec;
pub use rank::RankSelect;
pub use stream::{BitReader, BitWriter};
