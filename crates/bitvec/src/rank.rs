//! Constant-time rank and logarithmic-time select over a frozen bit vector.
//!
//! The paper leans on two classic succinct primitives (§4.2, §4.7.2):
//!
//! * `rank(V, j)` — the number of 1 bits at positions `≤ j`; used to
//!   translate subgroup indices to "offset-vector only" indices via the `F`
//!   flag vector,
//! * `select(V, i)` — the position of the `i`th 1 bit; the classic
//!   reduction of the variable-length access problem builds a vector with a
//!   1 at the start of every string and answers accesses with `select`.
//!
//! We use a two-level rank directory (cumulative counts per 512-bit
//! superblock plus 9-bit offsets per 64-bit word) giving O(1) `rank` in
//! `o(n)` extra bits, and answer `select` by binary search over the
//! directory followed by an in-word scan — O(log n) worst case, which is
//! plenty for a reference implementation.

use crate::bits::BitVec;

const WORDS_PER_SUPER: usize = 8; // 512-bit superblocks

/// Rank/select directory over an immutable [`BitVec`].
#[derive(Debug, Clone)]
pub struct RankSelect {
    bits: BitVec,
    /// Cumulative count of ones before each superblock.
    super_ranks: Vec<u64>,
    /// Count of ones before each word, relative to its superblock (fits u16).
    word_ranks: Vec<u16>,
    total_ones: usize,
}

impl RankSelect {
    /// Builds the directory; `O(n / 64)` time.
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let n_super = words.len().div_ceil(WORDS_PER_SUPER);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut word_ranks = Vec::with_capacity(words.len());
        let mut total = 0u64;
        for (i, chunk) in words.chunks(WORDS_PER_SUPER).enumerate() {
            debug_assert_eq!(i, super_ranks.len());
            super_ranks.push(total);
            let mut within = 0u16;
            for w in chunk {
                word_ranks.push(within);
                within += w.count_ones() as u16;
            }
            total += u64::from(within);
        }
        super_ranks.push(total);
        RankSelect {
            bits,
            super_ranks,
            word_ranks,
            total_ones: total as usize,
        }
    }

    /// The underlying bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Storage cost of the rank directory alone, in bits (superblock
    /// counters at 64 bits, per-word offsets at 16 bits). Used by the
    /// honest size reports.
    pub fn directory_bits(&self) -> usize {
        self.super_ranks.len() * 64 + self.word_ranks.len() * 16
    }

    /// Total number of 1 bits.
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Number of 1 bits in positions `0 .. pos` (exclusive of `pos`).
    ///
    /// `pos` may equal `len`, giving the total count.
    pub fn rank1(&self, pos: usize) -> usize {
        assert!(pos <= self.bits.len(), "rank position out of range");
        if pos == 0 {
            return 0;
        }
        let word = pos / 64;
        let bit = pos % 64;
        let in_word = if word < self.bits.words().len() && bit > 0 {
            (self.bits.words()[word] & ((1u64 << bit) - 1)).count_ones() as usize
        } else {
            0
        };
        let super_idx = word / WORDS_PER_SUPER;
        let base = self.super_ranks[super_idx] as usize;
        let word_off = if word < self.word_ranks.len() {
            self.word_ranks[word] as usize
        } else {
            // pos == len and len is a multiple of 64·WORDS_PER_SUPER
            return self.total_ones;
        };
        base + word_off + in_word
    }

    /// Number of 0 bits in positions `0 .. pos`.
    pub fn rank0(&self, pos: usize) -> usize {
        pos - self.rank1(pos)
    }

    /// Position of the `i`th 1 bit (0-indexed: `select1(0)` is the first).
    ///
    /// Returns `None` if there are fewer than `i + 1` ones.
    pub fn select1(&self, i: usize) -> Option<usize> {
        if i >= self.total_ones {
            return None;
        }
        let target = (i + 1) as u64;
        // Binary search: find last superblock with super_ranks < target.
        let sb = match self.super_ranks.partition_point(|&r| r < target) {
            0 => 0,
            p => p - 1,
        };
        let mut remaining = target - self.super_ranks[sb];
        let first_word = sb * WORDS_PER_SUPER;
        let last_word = (first_word + WORDS_PER_SUPER).min(self.bits.words().len());
        for w in first_word..last_word {
            let ones = self.bits.words()[w].count_ones() as u64;
            if remaining <= ones {
                return Some(w * 64 + select_in_word(self.bits.words()[w], remaining as u32));
            }
            remaining -= ones;
        }
        unreachable!("directory accounting broken");
    }

    /// Position of the `i`th 0 bit (0-indexed). `O(log n)`.
    pub fn select0(&self, i: usize) -> Option<usize> {
        let total_zeros = self.bits.len() - self.total_ones;
        if i >= total_zeros {
            return None;
        }
        // Binary search on rank0 over bit positions.
        let (mut lo, mut hi) = (0usize, self.bits.len());
        // Invariant: rank0(lo) <= i < rank0(hi).
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.rank0(mid) <= i {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

/// Position (0-63) of the `r`th set bit of `w`, 1-indexed `r`.
#[inline]
fn select_in_word(mut w: u64, mut r: u32) -> usize {
    debug_assert!(r >= 1 && r <= w.count_ones());
    loop {
        let tz = w.trailing_zeros();
        if r == 1 {
            return tz as usize;
        }
        w &= w - 1; // clear lowest set bit
        r -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize, f: impl Fn(usize) -> bool) -> BitVec {
        let bools: Vec<bool> = (0..n).map(f).collect();
        BitVec::from_bools(&bools)
    }

    fn naive_rank1(bits: &BitVec, pos: usize) -> usize {
        (0..pos).filter(|&i| bits.get(i)).count()
    }

    #[test]
    fn rank_matches_naive_on_varied_patterns() {
        for (n, f) in [
            (
                1000usize,
                Box::new(|i: usize| i.is_multiple_of(7)) as Box<dyn Fn(usize) -> bool>,
            ),
            (513, Box::new(|_| true)),
            (513, Box::new(|_| false)),
            (2048, Box::new(|i| (i * i) % 13 < 5)),
            (64, Box::new(|i| i % 2 == 0)),
            (1, Box::new(|_| true)),
        ] {
            let bits = pattern(n, f);
            let rs = RankSelect::new(bits.clone());
            for pos in 0..=n {
                assert_eq!(rs.rank1(pos), naive_rank1(&bits, pos), "n={n} pos={pos}");
            }
        }
    }

    #[test]
    fn rank0_plus_rank1_equals_pos() {
        let bits = pattern(3000, |i| i % 3 == 1);
        let rs = RankSelect::new(bits);
        for pos in [0, 1, 63, 64, 65, 511, 512, 513, 2999, 3000] {
            assert_eq!(rs.rank0(pos) + rs.rank1(pos), pos);
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let bits = pattern(5000, |i| i % 11 == 3 || i % 97 == 0);
        let rs = RankSelect::new(bits.clone());
        let ones = rs.count_ones();
        for i in 0..ones {
            let p = rs.select1(i).unwrap();
            assert!(bits.get(p), "select1({i}) = {p} is not a 1 bit");
            assert_eq!(rs.rank1(p), i, "rank before the ith one must be i");
        }
        assert_eq!(rs.select1(ones), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let bits = pattern(2500, |i| i % 4 != 0);
        let rs = RankSelect::new(bits.clone());
        let zeros = bits.len() - rs.count_ones();
        for i in (0..zeros).step_by(7) {
            let p = rs.select0(i).unwrap();
            assert!(!bits.get(p));
            assert_eq!(rs.rank0(p), i);
        }
        assert_eq!(rs.select0(zeros), None);
    }

    #[test]
    fn select_on_all_ones_is_identity() {
        let rs = RankSelect::new(pattern(700, |_| true));
        for i in [0usize, 1, 63, 64, 511, 512, 699] {
            assert_eq!(rs.select1(i), Some(i));
        }
    }

    #[test]
    fn empty_vector_edge_cases() {
        let rs = RankSelect::new(BitVec::new());
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(0), None);
        assert_eq!(rs.select0(0), None);
    }

    #[test]
    fn select_in_word_is_correct() {
        let w = 0b1011_0100u64;
        assert_eq!(select_in_word(w, 1), 2);
        assert_eq!(select_in_word(w, 2), 4);
        assert_eq!(select_in_word(w, 3), 5);
        assert_eq!(select_in_word(w, 4), 7);
        assert_eq!(select_in_word(u64::MAX, 64), 63);
        assert_eq!(select_in_word(1u64 << 63, 1), 63);
    }

    #[test]
    fn exact_superblock_boundary_lengths() {
        // len divisible by 512: the word_ranks lookup at pos == len must not
        // index out of bounds.
        let bits = pattern(1024, |i| i % 2 == 0);
        let rs = RankSelect::new(bits);
        assert_eq!(rs.rank1(1024), 512);
    }
}
