//! A growable packed bit vector with arbitrary-width field access.

const WORD_BITS: usize = 64;

/// A packed vector of bits stored in `u64` words, LSB-first within a word.
///
/// Bit `i` lives in word `i / 64` at position `i % 64`. All multi-bit reads
/// and writes are little-endian in this bit order: `read_bits(p, w)` returns
/// the bits `p .. p+w` with bit `p` as the least-significant bit of the
/// result. This is the base array of the String-Array Index and the payload
/// of the encodings crate.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec(len={}, bits=", self.len)?;
        for i in 0..self.len.min(96) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 96 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        BitVec {
            words: Vec::new(),
            len: 0,
        }
    }

    /// An empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// A bit vector of `bits` zero bits.
    pub fn zeros(bits: usize) -> Self {
        BitVec {
            words: vec![0; bits.div_ceil(WORD_BITS)],
            len: bits,
        }
    }

    /// Builds from a slice of booleans (index 0 becomes bit 0).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = BitVec::with_capacity(bools.len());
        for &b in bools {
            v.push(b);
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words; bits past `len` in the last word are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / WORD_BITS, self.len % WORD_BITS);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Grows (with zero bits) or shrinks to exactly `bits` bits.
    pub fn resize(&mut self, bits: usize) {
        self.words.resize(bits.div_ceil(WORD_BITS), 0);
        if bits < self.len {
            // Clear the dropped tail so invariants on `words` hold.
            let rem = bits % WORD_BITS;
            if rem != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last &= (1u64 << rem) - 1;
                }
            }
        }
        self.len = bits;
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if bit {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of one bits in the whole vector.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reads the `width`-bit field starting at bit `pos` (`width ≤ 64`).
    ///
    /// Bits beyond the current length must not be touched; the caller is
    /// responsible for `pos + width ≤ len`.
    #[inline]
    pub fn read_bits(&self, pos: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        debug_assert!(
            pos + width <= self.len,
            "read past end: {pos}+{width} > {}",
            self.len
        );
        if width == 0 {
            return 0;
        }
        let (w, b) = (pos / WORD_BITS, pos % WORD_BITS);
        let lo = self.words[w] >> b;
        let got = WORD_BITS - b;
        let raw = if width <= got {
            lo
        } else {
            lo | (self.words[w + 1] << got)
        };
        if width == 64 {
            raw
        } else {
            raw & ((1u64 << width) - 1)
        }
    }

    /// Writes `value` into the `width`-bit field at bit `pos` (`width ≤ 64`).
    ///
    /// Bits of `value` above `width` must be zero.
    #[inline]
    pub fn write_bits(&mut self, pos: usize, width: usize, value: u64) {
        debug_assert!(width <= 64);
        debug_assert!(
            pos + width <= self.len,
            "write past end: {pos}+{width} > {}",
            self.len
        );
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value wider than field"
        );
        if width == 0 {
            return;
        }
        let (w, b) = (pos / WORD_BITS, pos % WORD_BITS);
        let got = WORD_BITS - b;
        if width <= got {
            let mask = if width == 64 {
                u64::MAX
            } else {
                ((1u64 << width) - 1) << b
            };
            self.words[w] = (self.words[w] & !mask) | ((value << b) & mask);
        } else {
            // Low part into word w, high part into word w+1.
            let lo_mask = u64::MAX << b;
            self.words[w] = (self.words[w] & !lo_mask) | (value << b);
            let hi_bits = width - got;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | ((value >> got) & hi_mask);
        }
    }

    /// Moves the bit range `src .. src + count` to start at `dst`, with
    /// `memmove` semantics (the ranges may overlap). Bits left behind keep
    /// their previous values.
    ///
    /// This is the primitive behind the §4.4 slack-push: when a counter
    /// grows, every following counter up to the nearest slack is shifted.
    pub fn copy_within(&mut self, src: usize, dst: usize, count: usize) {
        assert!(
            src + count <= self.len && dst + count <= self.len,
            "copy_within out of range"
        );
        if count == 0 || src == dst {
            return;
        }
        if dst < src {
            // Copy forward in 64-bit chunks.
            let mut done = 0;
            while done < count {
                let chunk = (count - done).min(64);
                let v = self.read_bits(src + done, chunk);
                self.write_bits(dst + done, chunk, v);
                done += chunk;
            }
        } else {
            // Copy backward so overlapping moves don't clobber the source.
            let mut remaining = count;
            while remaining > 0 {
                let chunk = remaining.min(64);
                remaining -= chunk;
                let v = self.read_bits(src + remaining, chunk);
                self.write_bits(dst + remaining, chunk, v);
            }
        }
    }

    /// Sets the bit range `pos .. pos + count` to zero.
    pub fn clear_range(&mut self, pos: usize, count: usize) {
        assert!(pos + count <= self.len, "clear_range out of range");
        let mut done = 0;
        while done < count {
            let chunk = (count - done).min(64);
            self.write_bits(pos + done, chunk, 0);
            done += chunk;
        }
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bools(&pattern);
        assert_eq!(v.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn set_flips_bits() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.count_ones(), 4);
        v.set(64, false);
        assert_eq!(v.count_ones(), 3);
        assert!(!v.get(64));
        assert!(v.get(63));
    }

    #[test]
    fn read_write_aligned_fields() {
        let mut v = BitVec::zeros(256);
        v.write_bits(0, 8, 0xAB);
        v.write_bits(64, 64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(v.read_bits(0, 8), 0xAB);
        assert_eq!(v.read_bits(64, 64), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn read_write_straddling_fields() {
        let mut v = BitVec::zeros(256);
        // Field straddling the word boundary at bit 64.
        v.write_bits(60, 10, 0b10_1101_0110);
        assert_eq!(v.read_bits(60, 10), 0b10_1101_0110);
        // Neighbors untouched.
        assert_eq!(v.read_bits(0, 60), 0);
        assert_eq!(v.read_bits(70, 64), 0);
        // 64-bit field at an unaligned position.
        v.write_bits(100, 64, u64::MAX);
        assert_eq!(v.read_bits(100, 64), u64::MAX);
        assert_eq!(v.read_bits(99, 1), 0);
        assert_eq!(v.read_bits(164, 1), 0);
    }

    #[test]
    fn write_preserves_neighbors() {
        let mut v = BitVec::zeros(192);
        for i in 0..192 {
            v.set(i, true);
        }
        v.write_bits(50, 20, 0);
        for i in 0..192 {
            assert_eq!(v.get(i), !(50..70).contains(&i), "bit {i}");
        }
    }

    #[test]
    fn zero_width_ops_are_noops() {
        let mut v = BitVec::zeros(64);
        v.write_bits(10, 0, 0);
        assert_eq!(v.read_bits(10, 0), 0);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn copy_within_non_overlapping() {
        let mut v = BitVec::zeros(300);
        v.write_bits(0, 24, 0xABCDEF);
        v.copy_within(0, 200, 24);
        assert_eq!(v.read_bits(200, 24), 0xABCDEF);
        assert_eq!(v.read_bits(0, 24), 0xABCDEF, "source unchanged");
    }

    #[test]
    fn copy_within_overlap_shift_right() {
        // Shifting a run right by 3 bits — the SAI slack-push direction.
        let mut v = BitVec::zeros(400);
        let payload = 0x1234_5678_9ABC_DEF0u64;
        v.write_bits(10, 64, payload);
        v.write_bits(74, 64, !payload);
        v.copy_within(10, 13, 128);
        assert_eq!(v.read_bits(13, 64), payload);
        assert_eq!(v.read_bits(77, 64), !payload);
    }

    #[test]
    fn copy_within_overlap_shift_left() {
        let mut v = BitVec::zeros(400);
        let payload = 0xF0E1_D2C3_B4A5_9687u64;
        v.write_bits(50, 64, payload);
        v.write_bits(114, 64, !payload);
        v.copy_within(50, 45, 128);
        assert_eq!(v.read_bits(45, 64), payload);
        assert_eq!(v.read_bits(109, 64), !payload);
    }

    #[test]
    fn copy_within_matches_model() {
        // Exhaustive-ish cross-check against a Vec<bool> model.
        let n = 230;
        let base: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
        for (src, dst, count) in [
            (0, 1, 100),
            (1, 0, 100),
            (13, 77, 64),
            (77, 13, 64),
            (5, 6, 1),
            (100, 40, 130),
            (40, 100, 130),
        ] {
            let mut v = BitVec::from_bools(&base);
            let mut model = base.clone();
            model.copy_within(src..src + count, dst);
            v.copy_within(src, dst, count);
            let got: Vec<bool> = v.iter().collect();
            assert_eq!(got, model, "src={src} dst={dst} count={count}");
        }
    }

    #[test]
    fn clear_range_clears_exactly() {
        let mut v = BitVec::zeros(200);
        for i in 0..200 {
            v.set(i, true);
        }
        v.clear_range(33, 100);
        for i in 0..200 {
            assert_eq!(v.get(i), !(33..133).contains(&i));
        }
    }

    #[test]
    fn resize_grows_with_zeros_and_shrinks_cleanly() {
        let mut v = BitVec::new();
        for _ in 0..70 {
            v.push(true);
        }
        v.resize(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 70);
        assert!(!v.get(99));
        v.resize(10);
        assert_eq!(v.count_ones(), 10);
        // Growing again must not resurrect old bits.
        v.resize(100);
        assert_eq!(v.count_ones(), 10);
    }

    #[test]
    fn words_tail_is_clean_after_shrink() {
        let mut v = BitVec::new();
        for _ in 0..64 {
            v.push(true);
        }
        v.resize(3);
        assert_eq!(v.words()[0], 0b111);
    }
}
