//! Lock-free runtime metrics for the Spectral Bloom Filter workspace.
//!
//! The workspace's production north star is a long-running service, and a
//! service needs observable internals: insert/remove/estimate rates,
//! counter-saturation events, CAS retries on the lock-free ingest path,
//! per-shard occupancy, wire bytes. This crate provides the primitives:
//!
//! * [`Counter`] — a monotonically increasing relaxed `AtomicU64`.
//! * [`Gauge`] — an instantaneous `f64` value (stored as `AtomicU64` bits).
//! * [`Histogram`] — fixed log2 buckets over `u64` observations.
//! * [`Registry`] — named get-or-register storage, snapshots, and a
//!   Prometheus-style text exposition writer ([`Snapshot::to_prometheus`]).
//!
//! Everything is `std`-only: the workspace builds offline.
//!
//! # Zero cost when disabled
//!
//! Instrumented hot paths guard every metric touch with [`enabled`], a
//! single relaxed [`AtomicBool`] load that the branch predictor learns in
//! one iteration. Telemetry is **off by default**; a process that never
//! calls [`set_enabled`]`(true)` pays one predictable never-taken branch
//! per instrumented operation and allocates nothing.
//!
//! ```
//! use sbf_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let inserts = registry.counter("sbf_core_inserts_total");
//! inserts.add(42);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_value("sbf_core_inserts_total"), Some(42));
//! assert!(snap.to_prometheus().contains("sbf_core_inserts_total 42"));
//! ```

// Library code must surface failures as `Result`/documented panics, never
// ad-hoc `unwrap`/`expect` (ISSUE 4 lint wall); tests keep idiomatic unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod metric;
mod registry;
mod sync;

pub use expose::{parse_exposition, ParseError};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Metric, Registry, Sample, SampleValue, Snapshot};

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Whether telemetry collection is globally enabled.
///
/// A single relaxed atomic load — the check instrumented hot paths make
/// before touching any metric. Telemetry starts disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables telemetry collection.
///
/// Enabling is what the CLI's `sbf stats` / `--metrics` do before running a
/// command; libraries never flip this themselves.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry instrumented crates publish into.
///
/// Lazily created on first use; cheap to call repeatedly (one `OnceLock`
/// load after initialization).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Note: the flag is process-global; restore it so parallel tests in
        // this crate (which use local registries) are unaffected.
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
