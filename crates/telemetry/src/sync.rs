//! Synchronization facade for the telemetry crate (see
//! `spectral-bloom`'s `sync` module for the full rationale).
//!
//! Telemetry sits below the core crate in the dependency graph, so it
//! carries its own tiny facade rather than importing core's. Normal
//! builds bind to `std::sync`; `RUSTFLAGS='--cfg sbf_modelcheck'` binds
//! to the model types so the enable-gate and counter hot paths can be
//! exhaustively interleaved.

#[cfg(not(sbf_modelcheck))]
pub(crate) use std::sync::{Arc, OnceLock, RwLock};

/// Atomic types, mirroring `std::sync::atomic`.
#[cfg(not(sbf_modelcheck))]
pub(crate) mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}

#[cfg(sbf_modelcheck)]
pub(crate) use sbf_modelcheck::sync::{Arc, OnceLock, RwLock};

/// Model atomic types (checker build).
#[cfg(sbf_modelcheck)]
pub(crate) mod atomic {
    pub use sbf_modelcheck::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}
