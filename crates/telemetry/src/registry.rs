//! Named metric storage, snapshots, and exposition.

use crate::sync::{Arc, RwLock};
use std::collections::BTreeMap;

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing counter.
    Counter(Arc<Counter>),
    /// An instantaneous value.
    Gauge(Arc<Gauge>),
    /// A log2-bucketed distribution.
    Histogram(Arc<Histogram>),
}

/// Named get-or-register storage for metrics.
///
/// Registration takes a write lock once per metric *name*; hot paths hold
/// the returned `Arc` and never touch the registry again. Names follow
/// Prometheus conventions (`snake_case`, `_total` suffix for counters) and
/// may carry a literal label set: `sbf_shard_ops_total{shard="3"}`. Series
/// sharing a base name group together in the exposition because the map is
/// ordered.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// One named value inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full metric name, including any literal label set.
    pub name: String,
    /// The frozen value.
    pub value: SampleValue,
}

/// The frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state (cumulative buckets, sum, count).
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every registered metric, name-ordered.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The frozen samples, ordered by name.
    pub samples: Vec<Sample>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter named `name`, registering it at zero on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_register(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    /// Returns the gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_register(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    /// Returns the histogram named `name`, registering it empty on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    // Lock poisoning is deliberately recovered from (`PoisonError::into_inner`)
    // throughout: a panic elsewhere must not cascade into every metric call,
    // and the map holds only `Arc` handles, so a poisoned guard still sees a
    // structurally intact map.
    fn get_or_register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self
            .metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return m.clone();
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let samples = map
            .iter()
            .map(|(name, metric)| Sample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { samples }
    }
}

fn kind_of(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "a counter",
        Metric::Gauge(_) => "a gauge",
        Metric::Histogram(_) => "a histogram",
    }
}

/// Splits a full series name into `(base name, label part)`; the label part
/// includes the braces and is empty when there are no labels.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    }
}

impl Snapshot {
    /// Looks up a sample by full name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.value)
    }

    /// Convenience: the value of a counter sample, if present and a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge sample, if present and a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `# TYPE` line per metric base name, then one sample line per
    /// series (histograms expand into `_bucket`/`_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for sample in &self.samples {
            let (base, labels) = split_labels(&sample.name);
            if base != last_base {
                let kind = match &sample.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base;
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{base}{labels} {v}\n"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{base}{labels} {v}\n"));
                }
                SampleValue::Histogram(h) => {
                    for &(bound, cum) in &h.buckets {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format!("{bound}")
                        };
                        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
                    out.push_str(&format!("{base}_count{labels} {}\n", h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        assert_eq!(b.get(), 1, "both handles must alias one counter");
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total");
        let _ = r.gauge("x_total");
    }

    #[test]
    fn snapshot_freezes_all_kinds() {
        let r = Registry::new();
        r.counter("ops_total").add(7);
        r.gauge("occupancy_ratio").set(0.5);
        r.histogram("estimate_values").observe(12);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("ops_total"), Some(7));
        assert_eq!(snap.gauge_value("occupancy_ratio"), Some(0.5));
        match snap.get("estimate_values") {
            Some(SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let r = Registry::new();
        r.gauge("shard_ops{shard=\"0\"}").set_u64(10);
        r.gauge("shard_ops{shard=\"1\"}").set_u64(20);
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE shard_ops gauge").count(), 1);
        assert!(text.contains("shard_ops{shard=\"0\"} 10"));
        assert!(text.contains("shard_ops{shard=\"1\"} 20"));
    }

    #[test]
    fn exposition_golden_format() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.gauge("b_ratio").set(0.25);
        let h = r.histogram("c_sizes");
        h.observe(1);
        h.observe(3);
        let text = r.snapshot().to_prometheus();
        let expected = "\
# TYPE a_total counter
a_total 3
# TYPE b_ratio gauge
b_ratio 0.25
# TYPE c_sizes histogram
c_sizes_bucket{le=\"0\"} 0
c_sizes_bucket{le=\"1\"} 1
c_sizes_bucket{le=\"2\"} 1
c_sizes_bucket{le=\"4\"} 2
c_sizes_bucket{le=\"+Inf\"} 2
c_sizes_sum 4
c_sizes_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn registrations_race_safely() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100 {
                        r.counter(&format!("m{}_total", i % 10)).inc();
                    }
                });
            }
        });
        assert_eq!(r.len(), 10);
        let snap = r.snapshot();
        let total: u64 = (0..10)
            .map(|i| snap.counter_value(&format!("m{i}_total")).unwrap())
            .sum();
        assert_eq!(total, 400);
    }
}
