//! A minimal parser for the Prometheus text exposition format — enough to
//! round-trip what [`crate::Snapshot::to_prometheus`] writes, so tests and
//! tooling can assert on dumped metrics without string-scraping.

/// A malformed exposition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses Prometheus text exposition into `(series name, value)` pairs.
///
/// Comment (`#`) and blank lines are skipped; every other line must be
/// `name[{labels}] value`. Series names keep their label part verbatim.
///
/// ```
/// let pairs = sbf_telemetry::parse_exposition(
///     "# TYPE x counter\nx 3\ny{shard=\"0\"} 1.5\n",
/// ).unwrap();
/// assert_eq!(pairs[0], ("x".to_string(), 3.0));
/// assert_eq!(pairs[1], ("y{shard=\"0\"}".to_string(), 1.5));
/// ```
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(char::is_whitespace) else {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected `name value`, got {line:?}"),
            });
        };
        let name = name.trim_end();
        if name.is_empty() {
            return Err(ParseError {
                line: i + 1,
                message: "empty metric name".into(),
            });
        }
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse::<f64>().map_err(|_| ParseError {
                line: i + 1,
                message: format!("bad sample value {v:?}"),
            })?,
        };
        out.push((name.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn roundtrips_a_full_snapshot() {
        let r = Registry::new();
        r.counter("inserts_total").add(100);
        r.gauge("occupancy{shard=\"2\"}").set(0.125);
        let h = r.histogram("sizes");
        h.observe(5);
        h.observe(9);
        let text = r.snapshot().to_prometheus();
        let pairs = parse_exposition(&text).unwrap();
        let get = |n: &str| {
            pairs
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {n} in:\n{text}"))
        };
        assert_eq!(get("inserts_total"), 100.0);
        assert_eq!(get("occupancy{shard=\"2\"}"), 0.125);
        assert_eq!(get("sizes_sum"), 14.0);
        assert_eq!(get("sizes_count"), 2.0);
        assert_eq!(get("sizes_bucket{le=\"8\"}"), 1.0);
        assert_eq!(get("sizes_bucket{le=\"+Inf\"}"), 2.0);
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_exposition("valid 1\nnot-a-pair\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_exposition("name notanumber\n").unwrap_err();
        assert!(err.message.contains("bad sample value"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let pairs = parse_exposition("# HELP x y\n\n# TYPE x counter\nx 1\n").unwrap();
        assert_eq!(pairs, vec![("x".to_string(), 1.0)]);
    }
}
