//! The three metric primitives: counter, gauge, log2 histogram.
//!
//! All are lock-free over relaxed atomics. Relaxed is enough: metrics are
//! independent statistics, no reader infers cross-metric ordering from
//! them, and the snapshot path tolerates seeing counts mid-flight.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// ```
/// let c = sbf_telemetry::Counter::new();
/// c.inc();
/// c.add(9);
/// assert_eq!(c.get(), 10);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `by`.
    #[inline]
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (occupancy ratio, shard
/// total, queue depth). Stored as the bit pattern of an `f64` in an
/// `AtomicU64`, so reads and writes stay lock-free.
///
/// ```
/// let g = sbf_telemetry::Gauge::new();
/// g.set(0.25);
/// assert_eq!(g.get(), 0.25);
/// g.set_u64(1500);
/// assert_eq!(g.get(), 1500.0);
/// ```
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the value from an integer (convenience for totals).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: `le = 0, 1, 2, 4, …, 2^62`, plus `+Inf`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram over `u64` observations.
///
/// Bucket `0` holds observations equal to zero; bucket `i ≥ 1` holds
/// observations in `(2^{i-2}, 2^{i-1}]` (upper bound `2^{i-1}`); the last
/// bucket is `+Inf`. Fixed buckets mean `observe` is a shift, a branch and
/// one relaxed `fetch_add` — cheap enough for per-operation use.
///
/// ```
/// let h = sbf_telemetry::Histogram::new();
/// h.observe(0);
/// h.observe(3);
/// h.observe(4);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 7);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The frozen state of a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Cumulative bucket counts as `(upper_bound, observations ≤ bound)`;
    /// the final entry has bound `f64::INFINITY` and equals `count`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`).
    ///
    /// Returns the upper bound of the first bucket whose cumulative count
    /// reaches `⌈q · count⌉`. With log2 buckets the answer is within 2× of
    /// the true quantile — the right resolution for latency SLO gauges
    /// (p50/p99 "order of magnitude" questions), not for fine comparisons.
    /// Returns `None` for an empty histogram; `Some(f64::INFINITY)` when
    /// the quantile falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ⌈q·count⌉, but at least 1 so q = 0 means "smallest observation".
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        self.buckets
            .iter()
            .find(|&&(_, cum)| cum >= target)
            .map(|&(bound, _)| bound)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index for a value: 0 for 0, else `⌈log2 v⌉ + 1` capped at
    /// the `+Inf` slot.
    #[inline]
    fn slot(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let bits = 64 - v.leading_zeros() as usize;
        let slot = if v.is_power_of_two() { bits } else { bits + 1 };
        slot.min(BUCKETS - 1)
    }

    /// The upper bound (`le`) of bucket `i`; the last bucket is `+Inf`.
    fn bound(i: usize) -> f64 {
        match i {
            0 => 0.0,
            _ if i == BUCKETS - 1 => f64::INFINITY,
            _ => (1u64 << (i - 1)) as f64,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::slot(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX` ≈ 584 years — the `+Inf` bucket either way). Log2 buckets
    /// give ~1.4 significant digits, exactly the resolution wanted for
    /// latency histograms like `sbfd_wal_fsync_ns`.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freezes the current state, converting per-bucket counts into the
    /// cumulative form Prometheus exposition uses. Empty trailing buckets
    /// (beyond the largest observation) are elided; the `+Inf` bucket is
    /// always present.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let last_used = raw.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(last_used + 2);
        for (i, &c) in raw.iter().enumerate().take(last_used + 1) {
            cumulative += c;
            buckets.push((Self::bound(i), cumulative));
        }
        let count = raw.iter().sum();
        if buckets.last().is_none_or(|&(b, _)| b.is_finite()) {
            buckets.push((f64::INFINITY, count));
        }
        HistogramSnapshot {
            count,
            sum: self.sum(),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_is_safe_under_concurrent_increments() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000, "increments must never be lost");
    }

    #[test]
    fn gauge_roundtrips_floats_and_ints() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.625);
        assert_eq!(g.get(), 0.625);
        g.set_u64(u64::MAX);
        assert_eq!(g.get(), u64::MAX as f64);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Values land in the bucket whose upper bound is the smallest
        // power of two ≥ value (0 has its own bucket).
        assert_eq!(Histogram::slot(0), 0);
        assert_eq!(Histogram::slot(1), 1); // le 1
        assert_eq!(Histogram::slot(2), 2); // le 2
        assert_eq!(Histogram::slot(3), 3); // le 4
        assert_eq!(Histogram::slot(4), 3); // le 4
        assert_eq!(Histogram::slot(5), 4); // le 8
        assert_eq!(Histogram::slot(1 << 20), 21);
        assert_eq!(Histogram::slot((1 << 20) + 1), 22);
        assert_eq!(Histogram::slot(u64::MAX), BUCKETS - 1); // +Inf slot
    }

    #[test]
    fn histogram_snapshot_is_cumulative() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 111);
        // Cumulative counts at each bound.
        let at = |bound: f64| {
            snap.buckets
                .iter()
                .find(|&&(b, _)| b == bound)
                .map(|&(_, c)| c)
        };
        assert_eq!(at(0.0), Some(1));
        assert_eq!(at(1.0), Some(3));
        assert_eq!(at(2.0), Some(4));
        assert_eq!(at(4.0), Some(6));
        assert_eq!(at(128.0), Some(7));
        let (last_bound, last_count) = *snap.buckets.last().unwrap();
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 7);
        // Monotone non-decreasing.
        for w in snap.buckets.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn quantiles_come_from_bucket_upper_bounds() {
        let h = Histogram::new();
        // 90 fast observations (≤ 8), 10 slow ones (≤ 1024).
        for _ in 0..90 {
            h.observe(7);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(8.0));
        assert_eq!(snap.quantile(0.9), Some(8.0));
        assert_eq!(snap.quantile(0.99), Some(1024.0));
        assert_eq!(snap.quantile(1.0), Some(1024.0));
        assert_eq!(snap.quantile(0.0), Some(8.0));
        // A value past every finite bucket lands in +Inf.
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn durations_observe_as_nanoseconds() {
        let h = Histogram::new();
        h.observe_duration(std::time::Duration::from_nanos(1500));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1500);
        // A duration too large for u64 nanoseconds saturates instead of
        // panicking and lands in +Inf.
        h.observe_duration(std::time::Duration::from_secs(u64::MAX / 1000));
        assert_eq!(h.snapshot().quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), None);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(
            snap.buckets.last().map(|&(b, c)| (b.is_infinite(), c)),
            Some((true, 0))
        );
    }

    #[test]
    fn concurrent_observations_preserve_count_and_sum() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.observe(t + i % 7);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.last().unwrap().1, 20_000);
    }
}
