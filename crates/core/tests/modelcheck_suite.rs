//! Exhaustive interleaving tests for the lock-free layer, run under the
//! in-workspace model checker.
//!
//! This suite only compiles with `RUSTFLAGS='--cfg sbf_modelcheck'` (the
//! CI `modelcheck` job): the crate's `sync` facade then binds every
//! atomic, mutex and rwlock to `sbf-modelcheck`'s model types, so the
//! code explored here is the exact production code, not a transliterated
//! model of it.
//!
//! Each test pins one protocol from DESIGN.md's memory-ordering audit:
//!
//! 1. the CAS-saturating counter loops in `AtomicCounters` lose no
//!    increments, never underflow, and saturate instead of wrapping;
//! 2. the `ShardedSketch` snapshot version-stamp hand-off never serves a
//!    stale cached snapshot as fresh (including save-during-ingest);
//! 3. shard union under concurrent insert keeps the one-sided bound
//!    f̂ ≥ f for keys fully inserted beforehand;
//! 4. the telemetry enable gate is coherent and counter increments are
//!    never lost.
//!
//! Closures must be deterministic (the replay trail is positional), so
//! the test bodies avoid anything schedule-dependent outside the model
//! types. Test parameters are tiny on purpose: exploration is
//! exponential in the number of atomic events.

#![cfg(sbf_modelcheck)]

use std::sync::Arc;

use sbf_modelcheck::{thread, Checker};
use spectral_bloom::{
    AtomicCounters, AtomicMsSbf, ConcurrentCounterStore, MsSbf, ShardedSketch, SketchReader,
};

/// Three concurrent saturating CAS increments: every increment lands.
#[test]
fn cas_add_loses_no_increments() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let store = Arc::new(AtomicCounters::with_len(1));
        let (s1, s2) = (Arc::clone(&store), Arc::clone(&store));
        let t1 = thread::spawn(move || s1.fetch_add(0, 1));
        let t2 = thread::spawn(move || s2.fetch_add(0, 2));
        store.fetch_add(0, 4);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(store.load(0), 7, "a CAS increment was lost");
    });
    assert!(report.complete, "state space must be exhausted");
}

/// Concurrent saturating subtract never drives a counter below zero
/// (no wrap-around to huge values), whatever the interleaving.
#[test]
fn cas_sub_never_underflows() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let store = Arc::new(AtomicCounters::with_len(1));
        store.fetch_add(0, 1);
        let s1 = Arc::clone(&store);
        let t1 = thread::spawn(move || s1.fetch_sub_saturating(0, 2));
        store.fetch_sub_saturating(0, 1);
        t1.join().unwrap();
        let v = store.load(0);
        assert!(v <= 1, "saturating sub underflowed: {v}");
    });
    assert!(report.complete, "state space must be exhausted");
}

/// Near-`u64::MAX` concurrent adds saturate instead of wrapping: a
/// wrapped counter would transiently report a tiny value — a false
/// negative the MS one-sided contract forbids.
#[test]
fn cas_add_saturates_instead_of_wrapping() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let store = Arc::new(AtomicCounters::with_len(1));
        store.fetch_add(0, u64::MAX - 1);
        let s1 = Arc::clone(&store);
        let t1 = thread::spawn(move || s1.fetch_add(0, 3));
        store.fetch_add(0, 2);
        t1.join().unwrap();
        assert_eq!(
            store.load(0),
            u64::MAX,
            "counter wrapped instead of saturating"
        );
    });
    assert!(report.complete, "state space must be exhausted");
}

/// The snapshot version-stamp protocol, save-during-ingest shape: a
/// snapshot the cache serves as *fresh* must contain every mutation that
/// is already visible through the shard locks. The seeded form of this
/// bug (stamp bumped after the shard lock was dropped) let the
/// snapshotter observe the new data via `estimate`, then match the old
/// stamp and serve a stale cached union as current.
#[test]
fn stamp_protocol_never_serves_stale_snapshot_as_fresh() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let sketch = Arc::new(ShardedSketch::with_shards(1, |_| MsSbf::new(8, 1, 7)));
        // Prime the cache at stamp 0 so a stale hit is possible at all.
        let primed = sketch.snapshot_cached();
        assert_eq!(primed.estimate(&1u64), 0);
        let w = Arc::clone(&sketch);
        let writer = thread::spawn(move || w.insert(&1u64));
        // If the insert is already visible through the shard lock, the
        // bumped stamp must be too — so the cached (empty) union may not
        // be served again.
        let direct = sketch.estimate(&1u64);
        let snap = sketch.snapshot_cached();
        assert!(
            snap.estimate(&1u64) >= direct,
            "stale snapshot served as fresh: snapshot={} direct={}",
            snap.estimate(&1u64),
            direct
        );
        writer.join().unwrap();
        // After the join edge everything is visible: a fresh snapshot
        // must contain the insert.
        assert_eq!(sketch.snapshot_cached().estimate(&1u64), 1);
    });
    assert!(report.complete, "state space must be exhausted");
}

/// The save path (`publish_metrics`) during ingest: the published
/// `sbf_shard_ops` stamp may never be newer than the occupancy/total it is
/// paired with. Each insert bumps the stamp by exactly 1 inside the shard
/// lock and adds 1 to `total_count`, so coherence here means `ops ≤ total`
/// in every interleaving. The pre-fix read order (data first, then the
/// stamp at `Relaxed`) fails this: the writer's bump lands between the two
/// reads and the saved pair attributes an op to data that does not contain
/// it.
#[test]
fn publish_metrics_during_ingest_never_overstates_ops() {
    let report = Checker::new().max_preemptions(2).check(|| {
        sbf_telemetry::set_enabled(true);
        let sketch = Arc::new(ShardedSketch::with_shards(1, |_| MsSbf::new(8, 1, 7)));
        let w = Arc::clone(&sketch);
        let writer = thread::spawn(move || w.insert(&1u64));
        sketch.publish_metrics();
        let reg = sbf_telemetry::global();
        let ops = reg.gauge("sbf_shard_ops{shard=\"0\"}").get();
        let total = reg.gauge("sbf_shard_total_count{shard=\"0\"}").get();
        assert!(
            ops <= total,
            "saved stamp ({ops}) is newer than the data it was published with (total {total})"
        );
        writer.join().unwrap();
        sbf_telemetry::set_enabled(false);
    });
    assert!(report.complete, "state space must be exhausted");
}

/// Shard union under concurrent insert keeps f̂ ≥ f one-sided for keys
/// fully inserted before the union began.
#[test]
fn union_under_concurrent_insert_stays_one_sided() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let sketch = Arc::new(ShardedSketch::with_shards(2, |_| MsSbf::new(8, 1, 7)));
        sketch.insert_by(&1u64, 2);
        let w = Arc::clone(&sketch);
        let writer = thread::spawn(move || w.insert(&2u64));
        // The union may or may not include the in-flight key 2, but the
        // fully-inserted key 1 must never be undercounted.
        let snap = sketch.snapshot();
        assert!(
            snap.estimate(&1u64) >= 2,
            "union undercounted a fully-inserted key: {}",
            snap.estimate(&1u64)
        );
        writer.join().unwrap();
        assert!(sketch.estimate(&2u64) >= 1);
    });
    assert!(report.complete, "state space must be exhausted");
}

/// Lock-free `AtomicMsSbf` ingest from two threads: the one-sided bound
/// and the exact total both hold in every interleaving.
#[test]
fn atomic_ms_concurrent_ingest_is_one_sided_and_total_exact() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let sbf = Arc::new(AtomicMsSbf::new(8, 1, 7));
        let s1 = Arc::clone(&sbf);
        let t1 = thread::spawn(move || s1.insert_by(&1u64, 3));
        sbf.insert_by(&2u64, 2);
        t1.join().unwrap();
        assert!(sbf.estimate(&1u64) >= 3, "one-sided bound broken for key 1");
        assert!(sbf.estimate(&2u64) >= 2, "one-sided bound broken for key 2");
        assert_eq!(sbf.total_count(), 5, "total_count lost an increment");
    });
    assert!(report.complete, "state space must be exhausted");
}

/// The telemetry enable gate: a reader sees a coherent `bool` in every
/// interleaving, the join edge forces visibility of the final state, and
/// concurrent counter increments are never lost. The closure leaves the
/// gate disabled so later explorations start from the quiet state.
#[test]
fn telemetry_gate_is_coherent_and_counters_lose_nothing() {
    let report = Checker::new().max_preemptions(2).check(|| {
        let counter = Arc::new(sbf_telemetry::Counter::new());
        let c1 = Arc::clone(&counter);
        let t1 = thread::spawn(move || {
            sbf_telemetry::set_enabled(true);
            c1.inc();
        });
        // Concurrent read: any coherent answer is fine; the load must not
        // tear, deadlock, or panic.
        let _mid = sbf_telemetry::enabled();
        counter.add(2);
        t1.join().unwrap();
        assert!(
            sbf_telemetry::enabled(),
            "join edge must force gate visibility"
        );
        assert_eq!(counter.get(), 3, "counter increment lost");
        sbf_telemetry::set_enabled(false);
    });
    assert!(report.complete, "state space must be exhausted");
}
