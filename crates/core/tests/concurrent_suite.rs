//! Concurrency suite: the invariants the ingest path must keep under real
//! thread interleavings (`std::thread::scope`, no mocked schedulers).
//!
//! The paper's one-sided contract is `f̂_x ≥ f_x`. Concurrently that reads:
//! once an insert has returned, every later estimate of that key must be at
//! least as large as the key's completed-insert count.

use spectral_bloom::{
    AtomicMsSbf, MiSbf, MsSbf, RemoveError, RmSbf, ShardedSketch, SharedSketch, SketchReader,
};

/// Lock-free MS never undercounts: with 8 producers hammering overlapping
/// keys, every completed insert is visible in the final estimate.
#[test]
fn atomic_ms_never_undercounts() {
    let sbf = AtomicMsSbf::new(1 << 15, 5, 21);
    const THREADS: u64 = 8;
    const KEYS: u64 = 500;
    const REPS: u64 = 4;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sbf = &sbf;
            scope.spawn(move || {
                // Overlapping key ranges: every key is hit by two threads.
                let base = (t / 2) * KEYS;
                for i in 0..KEYS {
                    for _ in 0..REPS {
                        sbf.insert(&(base + i));
                    }
                }
            });
        }
    });
    assert_eq!(sbf.total_count(), THREADS * KEYS * REPS);
    for key in 0..(THREADS / 2) * KEYS {
        assert!(
            sbf.estimate(&key) >= 2 * REPS,
            "undercount for {key}: {} < {}",
            sbf.estimate(&key),
            2 * REPS
        );
    }
}

/// The sharded aggregate equals the sum of its parts after a mixed
/// insert/remove workload: no count is lost to or duplicated by routing.
#[test]
fn sharded_total_is_sum_of_shard_totals() {
    let sketch = ShardedSketch::with_shards(8, |_| RmSbf::new(1 << 14, 5, 33));
    const THREADS: u64 = 4;
    const KEYS: u64 = 400;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sketch = &sketch;
            scope.spawn(move || {
                for i in 0..KEYS {
                    let key = t * 10_000 + i;
                    sketch.insert_by(&key, 3);
                    sketch.remove(&key).expect("just inserted 3");
                }
            });
        }
    });
    let expected = THREADS * KEYS * 2; // 3 in, 1 out per key
    assert_eq!(sketch.total_count(), expected);
    assert_eq!(sketch.shard_totals().iter().sum::<u64>(), expected);
    // Each key's mass lives in exactly one shard; the union by counter
    // addition can only add other shards' collision mass on top, so the
    // merged filter stays one-sided (and is never below the owning shard).
    let merged = sketch.snapshot();
    for t in 0..THREADS {
        for i in 0..KEYS {
            let key = t * 10_000 + i;
            assert!(merged.estimate(&key) >= 2, "undercount for {key}");
        }
    }
    assert_eq!(merged.total_count(), expected);
}

/// A refused removal must not mutate — even while other threads are
/// concurrently writing to the same shard.
#[test]
fn failed_removes_under_contention_leave_counters_unchanged() {
    let sketch = ShardedSketch::with_shards(4, |_| MsSbf::new(1 << 14, 5, 55));
    const RESIDENT: u64 = 200;
    for key in 0..RESIDENT {
        sketch.insert_by(&key, 5);
    }
    std::thread::scope(|scope| {
        // Attackers: over-remove resident keys (must fail: only 5 present)
        // and remove absent keys (must fail: counters are 0 w.h.p.).
        for t in 0..2u64 {
            let sketch = &sketch;
            scope.spawn(move || {
                for key in 0..RESIDENT {
                    let err = sketch.remove_by(&key, 1000).expect_err("only 5 inserted");
                    assert!(matches!(err, RemoveError::Underflow { .. }));
                    // Absent-key removals may accidentally succeed only if
                    // collisions raised every counter — not at this load.
                    let absent = 1_000_000 + t * RESIDENT + key;
                    assert!(
                        sketch.remove(&absent).is_err(),
                        "phantom removal of {absent}"
                    );
                }
            });
        }
        // Meanwhile writers keep inserting disjoint keys into the same shards.
        for t in 0..2u64 {
            let sketch = &sketch;
            scope.spawn(move || {
                for i in 0..RESIDENT {
                    sketch.insert(&(2_000_000 + t * RESIDENT + i));
                }
            });
        }
    });
    // Failed removes contributed nothing; the residents are intact.
    assert_eq!(sketch.total_count(), RESIDENT * 5 + 2 * RESIDENT);
    for key in 0..RESIDENT {
        assert!(sketch.estimate(&key) >= 5, "resident {key} was damaged");
    }
}

/// Saturating decrement on the atomic store: concurrent over-removals clamp
/// at zero instead of wrapping into a huge bogus count.
#[test]
fn atomic_remove_saturating_clamps_at_zero() {
    let sbf = AtomicMsSbf::new(4096, 4, 77);
    sbf.insert_by(&42u64, 10);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let sbf = &sbf;
            scope.spawn(move || {
                for _ in 0..20 {
                    sbf.remove_saturating(&42u64, 1);
                }
            });
        }
    });
    // 80 decrements against 10 insertions: counters floor at 0, never wrap.
    assert_eq!(sbf.estimate(&42u64), 0);
    assert_eq!(sbf.total_count(), 0);
}

/// `SharedSketch` over MI shards: batch ingest from several threads keeps
/// the one-sided bound and the exact global total.
#[test]
fn shared_mi_batches_stay_one_sided() {
    let shared = SharedSketch::with_shards(4, |_| MiSbf::new(1 << 14, 5, 9));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = shared.clone();
            scope.spawn(move || {
                let keys: Vec<u64> = (0..PER_THREAD).map(|i| i % 100).collect();
                let _ = t;
                h.insert_batch(&keys);
            });
        }
    });
    assert_eq!(shared.total_count(), THREADS * PER_THREAD);
    for key in 0u64..100 {
        assert!(
            shared.estimate(&key) >= THREADS * PER_THREAD / 100,
            "undercount for {key}"
        );
    }
}

/// Snapshots taken while producers are mid-stream are internally consistent
/// prefixes: one-sided for whatever subset of inserts they observed, and
/// never larger than the final filter.
#[test]
fn snapshot_during_ingest_is_a_consistent_prefix() {
    let sbf = AtomicMsSbf::new(1 << 14, 5, 13);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let sbf_ref = &sbf;
        let done_ref = &done;
        scope.spawn(move || {
            for i in 0..50_000u64 {
                sbf_ref.insert(&(i % 500));
            }
            done_ref.store(true, std::sync::atomic::Ordering::Release);
        });
        scope.spawn(move || {
            while !done_ref.load(std::sync::atomic::Ordering::Acquire) {
                let snap = sbf_ref.snapshot();
                // A snapshot never exceeds what was ever inserted…
                assert!(snap.total_count() <= 50_000);
                // …and its estimates respect its own total.
                assert!(snap.estimate(&0u64) <= snap.total_count().max(1));
            }
        });
    });
    assert_eq!(sbf.total_count(), 50_000);
}
