//! Range queries over an SBF via range-tree hashing (§5.5).
//!
//! Theorem 11: for an attribute domain `R` of size `r`, hash both the
//! values and a hierarchy of dyadic ranges; inserts and deletes touch
//! `log_p r` tree nodes and a range-count query over `Q ⊆ R` costs
//! `O(p·log_p |Q|)` SBF lookups (≤ 2 per level for the binary tree).
//!
//! Node keys are drawn from a namespace disjoint from the value domain
//! (`V ∩ R = ∅` in the paper) by mixing the node's `(level, index)` with a
//! tree-private tag.

use sbf_hash::Key;

use crate::sketch::MultisetSketch;
use crate::store::RemoveError;

/// Key for an internal tree node, disjoint from leaf value keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeKey(u64);

impl Key for NodeKey {
    fn canonical(&self) -> u64 {
        self.0
    }
}

/// An SBF wrapped with a dyadic range hierarchy over `[lo, hi)`.
///
/// Any [`MultisetSketch`] works underneath; the Recurring Minimum filter is
/// the natural choice since range maintenance relies on deletions.
///
/// ```
/// use spectral_bloom::{MsSbf, RangeTreeSketch};
///
/// let mut tree = RangeTreeSketch::new(MsSbf::new(1 << 14, 5, 3), 0, 256);
/// tree.insert_by(10, 4);
/// tree.insert(200);
/// let r = tree.count_range(0, 100);
/// assert!(r.estimate >= 4);             // one-sided
/// assert!(r.lookups <= 2 * 8 + 4);      // ≤ 2·log₂|Q| + O(1)
/// ```
#[derive(Debug, Clone)]
pub struct RangeTreeSketch<SK: MultisetSketch> {
    sketch: SK,
    lo: u64,
    hi: u64,
    /// Branching factor `p` (2 = the paper's binary tree).
    degree: u64,
    /// Number of internal levels (level 0 = unit ranges are the raw values).
    levels: u32,
    tag: u64,
}

impl<SK: MultisetSketch> RangeTreeSketch<SK> {
    /// Wraps `sketch` with a binary range tree over the domain `[lo, hi)`.
    pub fn new(sketch: SK, lo: u64, hi: u64) -> Self {
        Self::with_degree(sketch, lo, hi, 2)
    }

    /// Wraps with a `degree`-ary tree (`degree ≥ 2`); higher degrees trade
    /// cheaper updates (`log_p r` inserts) for more lookups per level.
    pub fn with_degree(sketch: SK, lo: u64, hi: u64, degree: u64) -> Self {
        assert!(hi > lo, "empty domain");
        assert!(degree >= 2, "tree degree must be ≥ 2");
        let r = hi - lo;
        let mut levels = 0u32;
        let mut span = 1u64;
        while span < r {
            span = span.saturating_mul(degree);
            levels += 1;
        }
        RangeTreeSketch {
            sketch,
            lo,
            hi,
            degree,
            levels,
            tag: 0x5bf_7e3e_0000_0000,
        }
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &SK {
        &self.sketch
    }

    /// Number of internal tree levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    fn node_key(&self, level: u32, index: u64) -> NodeKey {
        // fmix64 over a tagged (level, index) pair: keys are disjoint from
        // raw u64 values with overwhelming probability and stable across
        // filters built with the same parameters.
        NodeKey(sbf_hash::fmix64(
            self.tag ^ (u64::from(level) << 52) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// Span of one node at `level` (level 1 covers `degree` values).
    fn span(&self, level: u32) -> u64 {
        self.degree.saturating_pow(level)
    }

    /// Inserts `count` occurrences of `value` — the leaf plus one node per
    /// level (`log_p r` SBF inserts, Theorem 11).
    pub fn insert_by(&mut self, value: u64, count: u64) {
        assert!((self.lo..self.hi).contains(&value), "value outside domain");
        self.sketch.insert_by(&value, count);
        let off = value - self.lo;
        for level in 1..=self.levels {
            let idx = off / self.span(level);
            self.sketch.insert_by(&self.node_key(level, idx), count);
        }
    }

    /// Inserts one occurrence.
    pub fn insert(&mut self, value: u64) {
        self.insert_by(value, 1);
    }

    /// Deletes `count` occurrences of `value` from the leaf and every
    /// ancestor. Fails atomically at the first underflowing level.
    pub fn remove_by(&mut self, value: u64, count: u64) -> Result<(), RemoveError> {
        assert!((self.lo..self.hi).contains(&value), "value outside domain");
        self.sketch.remove_by(&value, count)?;
        let off = value - self.lo;
        for level in 1..=self.levels {
            let idx = off / self.span(level);
            self.sketch.remove_by(&self.node_key(level, idx), count)?;
        }
        Ok(())
    }

    /// Point query: one SBF lookup ("there is no need to traverse the
    /// tree").
    pub fn count_value(&self, value: u64) -> u64 {
        self.sketch.estimate(&value)
    }

    /// Estimated number of items with value in `[a, b)`.
    ///
    /// Decomposes the query into maximal tree nodes; the estimate inherits
    /// the SBF's one-sidedness (never an undercount for MS/RM-family
    /// sketches). Also returns the number of SBF lookups performed so the
    /// Theorem 11 bound is checkable.
    pub fn count_range(&self, a: u64, b: u64) -> RangeEstimate {
        let a = a.max(self.lo);
        let b = b.min(self.hi);
        if a >= b {
            return RangeEstimate {
                estimate: 0,
                lookups: 0,
            };
        }
        let mut estimate = 0u64;
        let mut lookups = 0usize;
        // Greedy dyadic cover, bottom-up symmetric walk.
        let mut lo = a - self.lo;
        let mut hi = b - self.lo; // exclusive
        let mut level = 0u32;
        while lo < hi {
            let span = self.span(level);
            let next_span = span.saturating_mul(self.degree);
            // Left edge: children of the next level's node that stick out.
            while lo < hi && (!lo.is_multiple_of(next_span) || lo + next_span > hi) {
                estimate += self.query_node(level, lo / span);
                lookups += 1;
                lo += span;
            }
            // Right edge.
            while hi > lo && (!hi.is_multiple_of(next_span) || hi < lo + next_span) {
                hi -= span;
                estimate += self.query_node(level, hi / span);
                lookups += 1;
            }
            level += 1;
            if level > self.levels {
                break;
            }
        }
        RangeEstimate { estimate, lookups }
    }

    fn query_node(&self, level: u32, index: u64) -> u64 {
        if level == 0 {
            let value = self.lo + index;
            self.sketch.estimate(&value)
        } else {
            self.sketch.estimate(&self.node_key(level, index))
        }
    }
}

/// Result of a range count: the estimate and the number of SBF lookups the
/// dyadic decomposition needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEstimate {
    /// Estimated item count in the range (one-sided for MS/RM sketches).
    pub estimate: u64,
    /// SBF lookups performed (Theorem 11: ≤ `p·log_p |Q|` + O(1) levels).
    pub lookups: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;

    fn tree(m: usize, lo: u64, hi: u64) -> RangeTreeSketch<MsSbf> {
        RangeTreeSketch::new(MsSbf::new(m, 5, 42), lo, hi)
    }

    #[test]
    fn point_counts() {
        let mut t = tree(8192, 0, 1024);
        t.insert_by(7, 5);
        t.insert(900);
        assert!(t.count_value(7) >= 5);
        assert!(t.count_value(900) >= 1);
        assert_eq!(t.count_value(8), 0);
    }

    #[test]
    fn range_counts_match_truth_on_light_load() {
        let mut t = tree(1 << 16, 0, 256);
        let mut truth = vec![0u64; 256];
        let mut x = 7u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 33) % 256;
            t.insert(v);
            truth[v as usize] += 1;
        }
        for (a, b) in [
            (0u64, 256u64),
            (0, 1),
            (10, 20),
            (13, 200),
            (255, 256),
            (128, 129),
            (100, 100),
        ] {
            let want: u64 = truth[a as usize..b as usize].iter().sum();
            let got = t.count_range(a, b);
            assert!(
                got.estimate >= want,
                "range [{a},{b}): {} < {want}",
                got.estimate
            );
            // Light load: estimate should be exact almost surely.
            assert_eq!(got.estimate, want, "range [{a},{b})");
        }
    }

    #[test]
    fn lookup_count_is_logarithmic() {
        let mut t = tree(1 << 18, 0, 1 << 16);
        t.insert(12_345);
        // |Q| = 60_000 → binary tree bound ≈ 2·log₂|Q| ≈ 32, plus edge slop.
        let r = t.count_range(100, 60_100);
        assert!(
            r.lookups <= 2 * 17 + 4,
            "lookups {} exceed 2·log|Q|",
            r.lookups
        );
    }

    #[test]
    fn deletes_update_ranges() {
        let mut t = tree(1 << 14, 0, 64);
        for v in 0..64 {
            t.insert_by(v, 3);
        }
        assert!(t.count_range(0, 64).estimate >= 192);
        for v in 0..32 {
            t.remove_by(v, 3).unwrap();
        }
        let left = t.count_range(0, 32).estimate;
        let right = t.count_range(32, 64).estimate;
        assert!(left <= 5, "left half should be ~0, got {left}");
        assert!(right >= 96);
    }

    #[test]
    fn degree_four_tree_works() {
        let mut t = RangeTreeSketch::with_degree(MsSbf::new(1 << 15, 5, 9), 0, 4096, 4);
        let mut truth = 0u64;
        for v in (0..4096).step_by(17) {
            t.insert(v);
            if (100..2000).contains(&v) {
                truth += 1;
            }
        }
        let got = t.count_range(100, 2000);
        assert!(got.estimate >= truth);
        assert!(
            got.estimate <= truth + 3,
            "overshoot {} vs {truth}",
            got.estimate
        );
    }

    #[test]
    fn nonzero_domain_offset() {
        let mut t = tree(1 << 14, 1000, 2000);
        t.insert_by(1500, 7);
        assert!(t.count_range(1400, 1600).estimate >= 7);
        assert_eq!(t.count_range(1000, 1400).estimate, 0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_insert_panics() {
        let mut t = tree(64, 0, 10);
        t.insert(10);
    }

    #[test]
    fn clamped_and_empty_ranges() {
        let mut t = tree(4096, 0, 100);
        t.insert_by(50, 2);
        assert_eq!(t.count_range(60, 40).estimate, 0);
        assert!(
            t.count_range(0, 1_000_000).estimate >= 2,
            "range clamped to domain"
        );
    }
}
