//! Multiset demographics from the counter vector alone (§7: the SBF "can
//! be used for maintaining demographics of a multiset or set, and allow
//! data profiling").
//!
//! Some profile questions don't need per-key queries at all — the counter
//! vector itself is a statistic:
//!
//! * **distinct-count estimation**: the fraction of zero counters after
//!   `n` distinct insertions is `(1 − 1/m)^{kn} ≈ e^{−kn/m}`, so
//!   `n̂ = −(m/k)·ln(z/m)` where `z` counters are zero — the classic
//!   Bloom-filter cardinality estimator, applicable verbatim to the SBF,
//! * **total multiplicity**: counter mass divided by `k` (exact),
//! * **load diagnostics**: the observed `γ̂` and predicted Bloom error,
//!   so operators can tell when a filter is running outside its accuracy
//!   envelope,
//! * **frequency demographics** over a candidate key set: a
//!   frequency-of-frequencies histogram, the "high-granularity histogram"
//!   view of §1.
//!
//! Everything here reads any [`SbfCore`], regardless of algorithm or
//! storage backend.

use sbf_hash::{HashFamily, Key};

use crate::core_ops::SbfCore;
use crate::num;
use crate::store::CounterStore;

/// Vector-level profile of a filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumProfile {
    /// Counters equal to zero.
    pub zero_counters: usize,
    /// Estimated number of distinct keys (`−(m/k)·ln(z/m)`), `None` when
    /// every counter is occupied (the estimator saturates).
    pub distinct_estimate: Option<f64>,
    /// Exact total multiplicity (`Σ counters / k`).
    pub total_multiplicity: u64,
    /// Observed load `γ̂ = k·n̂/m`.
    pub gamma_estimate: Option<f64>,
    /// Predicted Bloom error at the estimated load.
    pub predicted_error: Option<f64>,
}

/// Profiles the counter vector of `core`.
pub fn profile<F: HashFamily, S: CounterStore>(core: &SbfCore<F, S>) -> SpectrumProfile {
    let m = core.m();
    let k = core.k();
    let mut zeros = 0usize;
    let mut mass = 0u64;
    for i in 0..m {
        let c = core.store().get(i);
        if c == 0 {
            zeros += 1;
        }
        mass += c;
    }
    let distinct = if zeros == 0 || m == 0 {
        None
    } else {
        Some(-(num::to_f64(m) / num::to_f64(k)) * (num::to_f64(zeros) / num::to_f64(m)).ln())
    };
    let gamma = distinct.map(|n| n * num::to_f64(k) / num::to_f64(m));
    let err = gamma.map(|g| (1.0 - (-g).exp()).powi(num::powi_exp(k)));
    SpectrumProfile {
        zero_counters: zeros,
        distinct_estimate: distinct,
        total_multiplicity: mass / num::to_u64(k.max(1)),
        gamma_estimate: gamma,
        predicted_error: err,
    }
}

/// Frequency-of-frequencies histogram over a candidate key set: bucket `b`
/// counts the keys whose estimate falls in `[bounds[b], bounds[b+1])`,
/// with a final unbounded bucket. Estimates come from the provided
/// estimator (pass `|key| sketch.estimate(key)`), so any algorithm works.
pub fn frequency_histogram<K, I>(estimate: impl Fn(&K) -> u64, keys: I, bounds: &[u64]) -> Vec<u64>
where
    K: Key,
    I: IntoIterator<Item = K>,
{
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "bounds must be strictly increasing"
    );
    let mut hist = vec![0u64; bounds.len() + 1];
    for key in keys {
        let f = estimate(&key);
        let b = bounds.partition_point(|&lo| lo <= f);
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;
    use crate::sketch::{MultisetSketch, SketchReader};

    #[test]
    fn distinct_estimate_tracks_truth() {
        let mut sbf = MsSbf::new(20_000, 5, 1);
        for key in 0u64..1500 {
            sbf.insert_by(&key, 1 + key % 9); // multiplicities don't matter
        }
        let p = profile(sbf.core());
        let n_hat = p.distinct_estimate.expect("zeros remain");
        let rel = (n_hat - 1500.0).abs() / 1500.0;
        assert!(rel < 0.05, "distinct estimate {n_hat} vs 1500");
        // Total multiplicity is exact.
        let truth: u64 = (0..1500u64).map(|k| 1 + k % 9).sum();
        assert_eq!(p.total_multiplicity, truth);
    }

    #[test]
    fn gamma_and_error_prediction_are_consistent() {
        let mut sbf = MsSbf::new(7143, 5, 2);
        for key in 0u64..1000 {
            sbf.insert(&key);
        }
        let p = profile(sbf.core());
        let g = p.gamma_estimate.expect("not saturated");
        assert!((g - 0.7).abs() < 0.05, "γ̂ = {g}");
        let e = p.predicted_error.expect("not saturated");
        let direct = crate::params::bloom_error_rate(1000, 7143, 5);
        assert!((e - direct).abs() < 0.01);
    }

    #[test]
    fn saturated_filter_reports_none() {
        let mut sbf = MsSbf::new(8, 2, 3);
        for key in 0u64..200 {
            sbf.insert(&key);
        }
        let p = profile(sbf.core());
        assert_eq!(p.zero_counters, 0);
        assert!(p.distinct_estimate.is_none());
    }

    #[test]
    fn empty_filter_profile() {
        let sbf = MsSbf::new(64, 3, 4);
        let p = profile(sbf.core());
        assert_eq!(p.zero_counters, 64);
        assert_eq!(p.distinct_estimate, Some(0.0));
        assert_eq!(p.total_multiplicity, 0);
    }

    #[test]
    fn histogram_buckets_by_estimate() {
        let mut sbf = MsSbf::new(8192, 5, 5);
        for key in 0u64..100 {
            sbf.insert_by(&key, 1);
        }
        for key in 100u64..110 {
            sbf.insert_by(&key, 50);
        }
        let hist = frequency_histogram(|k: &u64| sbf.estimate(k), 0u64..200, &[1, 10, 100]);
        // Buckets: [0,1), [1,10), [10,100), [100,∞)
        assert_eq!(hist.len(), 4);
        assert_eq!(hist[0], 90, "90 of the queried 200 keys are absent");
        assert_eq!(hist[1], 100, "the singletons");
        assert_eq!(hist[2], 10, "the heavy keys");
        assert_eq!(hist[3], 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_rejected() {
        let _ = frequency_histogram(|_: &u64| 0, 0u64..1, &[5, 5]);
    }
}
