//! Recurring Minimum — the delete-capable accuracy booster of §3.3.

use sbf_hash::{HashFamily, IndexBuf, Key};

use crate::bloom::BloomFilter;
use crate::core_ops::{pipelined_batch, KeyCounters, SbfCore};
use crate::metrics;
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::sketch::{BatchRemoveError, MultisetSketch, SketchReader};
use crate::store::{CounterStore, PlainCounters, RemoveError};
use crate::DefaultFamily;

/// The Recurring Minimum SBF.
///
/// Observation (§3.3): an item suffering a Bloom error typically has a
/// *single* minimum among its `k` counters; items with a *recurring*
/// minimum are rarely wrong. RM therefore answers recurring-minimum items
/// from the primary SBF and mirrors single-minimum items into a smaller
/// **secondary SBF**, whose lighter load (γ_s) makes it far more accurate.
/// Unlike Minimal Increase, the scheme supports deletions and updates with
/// no false negatives.
///
/// An optional **marker Bloom filter** (the refinement of §3.3) pins items
/// to the secondary SBF once moved, avoiding repeated single-minimum
/// re-detection; its own error contributes `≈ (1 − e^{−γ/5})^k`, negligible
/// per the paper's arithmetic. It is on by default.
///
/// ```
/// use spectral_bloom::{RmSbf, MultisetSketch, SketchReader};
///
/// let mut rm = RmSbf::new(3000, 5, 7); // total space, split ⅔/⅓
/// for day in 0..30u64 {
///     rm.insert(&day);
/// }
/// rm.remove(&3u64).unwrap();           // deletions are first-class
/// assert_eq!(rm.estimate(&3u64), 0);
/// assert!(rm.estimate(&4u64) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct RmSbf<F: HashFamily = DefaultFamily, S: CounterStore = PlainCounters> {
    primary: SbfCore<F, S>,
    secondary: SbfCore<F, S>,
    marker: Option<BloomFilter<F>>,
}

impl RmSbf<DefaultFamily, PlainCounters> {
    /// Splits a *total* budget of `m_total` counters space-fairly: ⅔ to the
    /// primary SBF and ⅓ to the secondary (the secondary is then half the
    /// primary, the `m_s = m/2` setup of the paper's Table 1).
    pub fn new(m_total: usize, k: usize, seed: u64) -> Self {
        let m_secondary = (m_total / 3).max(1);
        let m_primary = (m_total - m_secondary).max(1);
        Self::with_split(m_primary, m_secondary, k, seed)
    }

    /// Explicit primary/secondary sizes. Prefer [`FromParams::from_params`]
    /// when sizing from a capacity/error target.
    ///
    /// The §3.3 marker-filter refinement is enabled by default (a Bloom
    /// filter of `m_primary` *bits* pinning moved items to the secondary):
    /// without it, an item that drifts back to a recurring minimum stops
    /// updating its secondary counters, and unmoved single-minimum items
    /// read other keys' mass out of the secondary — both effects measurably
    /// erode RM's advantage (see EXPERIMENTS.md). Use
    /// [`RmSbf::without_marker`] for the base algorithm.
    pub fn with_split(m_primary: usize, m_secondary: usize, k: usize, seed: u64) -> Self {
        RmSbf {
            primary: SbfCore::from_family(DefaultFamily::new(m_primary, k, seed)),
            secondary: SbfCore::from_family(DefaultFamily::new(m_secondary, k, seed ^ 0x5ec0_4da5)),
            marker: Some(BloomFilter::from_family(DefaultFamily::new(
                m_primary,
                k,
                seed ^ 0x6d61_726b,
            ))),
        }
    }
}

impl FromParams for RmSbf<DefaultFamily, PlainCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: CounterStore> RmSbf<F, S> {
    /// Builds from explicit primary and secondary hash families.
    pub fn from_families(primary: F, secondary: F) -> Self {
        RmSbf {
            primary: SbfCore::from_family(primary),
            secondary: SbfCore::from_family(secondary),
            marker: None,
        }
    }

    /// Enables the marker-filter refinement with the given marker family.
    pub fn with_marker(mut self, marker_family: F) -> Self {
        self.marker = Some(BloomFilter::from_family(marker_family));
        self
    }

    /// Disables the marker refinement — the base §3.3 algorithm, where
    /// membership in the secondary is inferred from its counters.
    pub fn without_marker(mut self) -> Self {
        self.marker = None;
        self
    }

    /// The primary SBF core.
    pub fn primary(&self) -> &SbfCore<F, S> {
        &self.primary
    }

    /// The secondary SBF core.
    pub fn secondary(&self) -> &SbfCore<F, S> {
        &self.secondary
    }

    /// Whether `key` currently shows a recurring minimum in the primary.
    pub fn has_recurring_min<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.primary.key_counters(key).has_recurring_min()
    }

    /// Unites another RM filter into this one: primary and secondary by
    /// counter addition (§5), markers by bitwise OR.
    ///
    /// Sound when each key's occurrences all live in **one** of the two
    /// filters — the invariant [`crate::ShardedSketch`]'s hash routing
    /// maintains — because then the other filter contributes only collision
    /// mass, which can only raise counters. (Splitting one key's mass
    /// across both inputs could under-read through the secondary, which is
    /// why this is not exposed as a general multiset union.)
    pub fn union_assign(&mut self, other: &RmSbf<F, S>)
    where
        F: PartialEq,
    {
        self.primary.union_assign(&other.primary);
        self.secondary.union_assign(&other.secondary);
        match (&mut self.marker, &other.marker) {
            (Some(mine), Some(theirs)) => mine.union_assign(theirs),
            (None, None) => {}
            _ => panic!("union requires both RM filters to agree on the marker refinement"),
        }
    }

    fn in_secondary<K: Key + ?Sized>(&self, key: &K) -> bool {
        if let Some(marker) = &self.marker {
            return marker.contains(key);
        }
        self.secondary.key_counters(key).min() > 0
    }

    fn estimate_uninstrumented<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let kc = self.primary.key_counters(key);
        self.estimate_from_primary(key, &kc)
    }

    /// The §3.3 estimate rule, over an already-read primary [`KeyCounters`]
    /// — the single chokepoint both the per-key and the batched estimates
    /// go through, so they cannot diverge.
    fn estimate_from_primary<K: Key + ?Sized>(&self, key: &K, kc: &KeyCounters) -> u64 {
        if let Some(marker) = &self.marker {
            if marker.contains(key) {
                let s = self.secondary.key_counters(key).min();
                return if s > 0 { s.min(kc.min()) } else { kc.min() };
            }
            return kc.min();
        }
        if kc.has_recurring_min() {
            return kc.min();
        }
        let s = self.secondary.key_counters(key).min();
        if s > 0 {
            s.min(kc.min())
        } else {
            kc.min()
        }
    }

    /// The §3.3 insert rule over precomputed primary indices (shared by
    /// [`MultisetSketch::insert_by`] and the pipelined batch path).
    fn insert_prehashed<K: Key + ?Sized>(&mut self, key: &K, idx: &IndexBuf, count: u64) {
        // "When adding an item x, increase the counters of x in the primary
        // SBF. Then check if x has a recurring minimum. If so, continue
        // normally."
        self.primary.increment_idx(idx, count);
        let kc = self.primary.key_counters_idx(idx);
        if kc.has_recurring_min() && !self.marker.as_ref().is_some_and(|m| m.contains(key)) {
            return;
        }
        // "Otherwise look for x in the secondary SBF. If found, increase
        // its counters, otherwise add x to the secondary SBF, with an
        // initial value that equals its minimal value from the primary."
        // Multiplicity totals are tracked by the primary core alone; the
        // secondary's internal total is not meaningful and never read.
        metrics::on(|m| m.rm_secondary_spills.inc());
        if self.in_secondary(key) && self.secondary.key_counters(key).min() > 0 {
            self.secondary.increment_all(key, count);
        } else {
            let initial = kc.min();
            self.secondary.increment_all(key, initial);
            if let Some(marker) = &mut self.marker {
                marker.insert(key);
            }
        }
    }

    /// The §3.3 delete rule over precomputed primary indices.
    fn remove_prehashed<K: Key + ?Sized>(
        &mut self,
        key: &K,
        idx: &IndexBuf,
        count: u64,
    ) -> Result<(), RemoveError> {
        // "Deleting x is essentially reversing the increase operation:
        // first decrease its counters in the primary SBF, then if it has a
        // single minimum (or if it exists in Bf) decrease its counters in
        // the secondary SBF, unless at least one of them is 0."
        self.primary.decrement_idx(idx, count)?;
        let single_min = !self.primary.key_counters_idx(idx).has_recurring_min();
        if single_min || self.in_secondary(key) {
            let s_min = self.secondary.key_counters(key).min();
            if s_min >= count {
                self.secondary
                    .decrement_all(key, count)
                    .unwrap_or_else(|_| unreachable!("secondary min pre-checked"));
            }
        }
        Ok(())
    }
}

impl<F: HashFamily, S: CounterStore> SketchReader for RmSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        // "Check if x has a recurring minimum in the primary SBF. If so
        // return the minimum. Otherwise perform lookup in the secondary; if
        // the returned value is greater than 0, return it. Otherwise return
        // the minimum from the primary SBF."
        // The secondary answer is capped by the primary minimum: the
        // primary is a sound upper bound, so the cap only removes
        // overestimates (secondary collisions can otherwise exceed it).
        let est = self.estimate_uninstrumented(key);
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        // Pipeline over the primary — the read every estimate performs; the
        // secondary/marker are consulted only on the (rare) spill cases.
        pipelined_batch!(
            keys,
            hash = |key, slot| self.primary.key_indexes_into(key, slot),
            prefetch = |idx| self.primary.prefetch_idx(idx),
            apply = |i, idx| {
                let kc = self.primary.key_counters_idx(idx);
                out.push(self.estimate_from_primary(&keys[i], &kc));
            }
        );
        metrics::on(|m| {
            m.estimates.add(num::to_u64(keys.len()));
            for &est in out.iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn estimate_batch_picked_into<K: Key>(&self, keys: &[K], picks: &[u32], out: &mut Vec<u64>) {
        out.reserve(picks.len());
        let before = out.len();
        pipelined_batch!(
            picks,
            hash = |j, slot| self
                .primary
                .key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.primary.prefetch_idx(idx),
            apply = |i, idx| {
                let kc = self.primary.key_counters_idx(idx);
                out.push(self.estimate_from_primary(&keys[num::to_usize(picks[i])], &kc));
            }
        );
        metrics::on(|m| {
            m.estimates.add(num::to_u64(picks.len()));
            for &est in out[before..].iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn total_count(&self) -> u64 {
        self.primary.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.primary.store().storage_bits()
            + self.secondary.store().storage_bits()
            + self.marker.as_ref().map_or(0, BloomFilter::storage_bits)
    }

    fn occupancy(&self) -> f64 {
        // The primary carries the load signal; the secondary holds only the
        // single-minimum spill-over.
        self.primary.occupancy()
    }
}

impl<F: HashFamily, S: CounterStore> MultisetSketch for RmSbf<F, S> {
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        metrics::on(|m| {
            m.inserts.inc();
            m.rm_inserts.inc();
        });
        let idx = self.primary.key_indexes(key);
        self.insert_prehashed(key, &idx, count);
    }

    fn insert_batch<K: Key>(&mut self, keys: &[K]) {
        metrics::on(|m| {
            m.inserts.add(num::to_u64(keys.len()));
            m.rm_inserts.add(num::to_u64(keys.len()));
        });
        pipelined_batch!(
            keys,
            hash = |key, slot| self.primary.key_indexes_into(key, slot),
            prefetch = |idx| self.primary.prefetch_idx_write(idx),
            apply = |i, idx| self.insert_prehashed(&keys[i], idx, 1)
        );
    }

    fn insert_batch_picked<K: Key>(&mut self, keys: &[K], picks: &[u32]) {
        metrics::on(|m| {
            m.inserts.add(num::to_u64(picks.len()));
            m.rm_inserts.add(num::to_u64(picks.len()));
        });
        pipelined_batch!(
            picks,
            hash = |j, slot| self
                .primary
                .key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.primary.prefetch_idx_write(idx),
            apply = |i, idx| self.insert_prehashed(&keys[num::to_usize(picks[i])], idx, 1)
        );
    }

    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.removes.inc());
        let idx = self.primary.key_indexes(key);
        self.remove_prehashed(key, &idx, count)
    }

    fn remove_batch<K: Key>(&mut self, keys: &[K]) -> Result<(), BatchRemoveError> {
        pipelined_batch!(
            keys,
            hash = |key, slot| self.primary.key_indexes_into(key, slot),
            prefetch = |idx| self.primary.prefetch_idx_write(idx),
            apply = |i, idx| {
                metrics::on(|m| m.removes.inc());
                self.remove_prehashed(&keys[i], idx, 1)
                    .map_err(|error| BatchRemoveError { index: i, error })?;
            }
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_one_sided() {
        let mut rm = RmSbf::new(3000, 5, 1);
        for key in 0u64..400 {
            rm.insert_by(&key, key % 11 + 1);
        }
        for key in 0u64..400 {
            assert!(rm.estimate(&key) > key % 11, "false negative for {key}");
        }
    }

    #[test]
    fn deletions_leave_no_false_negatives() {
        let mut rm = RmSbf::new(1500, 5, 2);
        for key in 0u64..200 {
            rm.insert_by(&key, 10);
        }
        for key in 0u64..200 {
            rm.remove_by(&key, 4).unwrap();
        }
        for key in 0u64..200 {
            assert!(
                rm.estimate(&key) >= 6,
                "false negative after deletes for {key}"
            );
        }
        // Full removal drives estimates to zero for most keys.
        for key in 0u64..200 {
            rm.remove_by(&key, 6).unwrap();
        }
        let nonzero = (0u64..200).filter(|k| rm.estimate(k) > 0).count();
        assert!(nonzero <= 20, "{nonzero} keys stuck above zero");
    }

    #[test]
    fn beats_ms_on_streaming_inserts() {
        use crate::ms::MsSbf;
        // The paper's regime: incremental single inserts (RM's
        // single-minimum detection is an *online* signal; bulk-loading a
        // key's whole mass in one call gives it nothing to observe).
        // Primary sized for γ = 0.7 at n = 500, secondary = m/2, and MS is
        // given the same primary size, as in Table 1.
        let n = 500u64;
        let k = 5;
        let m_primary = (n as usize * k * 10) / 7;
        let mut ms = MsSbf::new(m_primary, k, 3);
        let mut rm = RmSbf::with_split(m_primary, m_primary / 2, k, 3);
        // Skewed incremental stream: key i appears 1 + 4000/(i+1) times,
        // round-robin so arrivals interleave.
        let freq = |key: u64| 1 + 4000 / (key + 1);
        let mut remaining: Vec<u64> = (0..n).map(freq).collect();
        let mut any = true;
        while any {
            any = false;
            for key in 0..n {
                if remaining[key as usize] > 0 {
                    remaining[key as usize] -= 1;
                    ms.insert(&key);
                    rm.insert(&key);
                    any = true;
                }
            }
        }
        // RM's late-detection path can slightly *under*-estimate (the
        // secondary value of a never-moved key is another key's mass), so
        // measure absolute error for both.
        let mut ms_err = 0u64;
        let mut rm_err = 0u64;
        for key in 0..n {
            let f = freq(key);
            ms_err += ms.estimate(&key).abs_diff(f);
            rm_err += rm.estimate(&key).abs_diff(f);
        }
        assert!(
            rm_err <= ms_err,
            "RM total error {rm_err} should not exceed MS {ms_err} (same primary size)"
        );
    }

    #[test]
    fn marker_variant_roundtrips() {
        use sbf_hash::MixFamily;
        let primary = MixFamily::new(1000, 5, 7);
        let secondary = MixFamily::new(500, 5, 8);
        let marker = MixFamily::new(1000, 5, 9);
        let mut rm: RmSbf<MixFamily, PlainCounters> =
            RmSbf::from_families(primary, secondary).with_marker(marker);
        for key in 0u64..150 {
            rm.insert_by(&key, 5);
        }
        for key in 0u64..150 {
            assert!(rm.estimate(&key) >= 5);
        }
        for key in 0u64..150 {
            rm.remove_by(&key, 5).unwrap();
        }
        let nonzero = (0u64..150).filter(|k| rm.estimate(k) > 0).count();
        assert!(nonzero <= 15);
    }

    #[test]
    fn update_pattern() {
        let mut rm = RmSbf::new(600, 5, 4);
        rm.insert_by(&"gauge", 10);
        rm.remove_by(&"gauge", 10).unwrap();
        rm.insert_by(&"gauge", 3);
        let est = rm.estimate(&"gauge");
        assert!(est >= 3, "estimate {est} below true count");
    }

    #[test]
    fn total_count_tracks_primary() {
        let mut rm = RmSbf::new(300, 4, 5);
        rm.insert_by(&1u64, 5);
        rm.insert_by(&2u64, 7);
        assert_eq!(rm.total_count(), 12);
        rm.remove_by(&1u64, 5).unwrap();
        assert_eq!(rm.total_count(), 7);
    }
}
