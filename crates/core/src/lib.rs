//! **Spectral Bloom Filters** — a faithful, production-grade implementation
//! of Cohen & Matias, *Spectral Bloom Filters*, SIGMOD 2003.
//!
//! A Spectral Bloom Filter (SBF) replaces the bit vector of a Bloom filter
//! with a vector of `m` counters, turning set membership into *multiset
//! multiplicity*: for any key `x` the filter returns an estimate
//! `f̂_x ≥ f_x` that is exact except with probability roughly the Bloom
//! error `E_b = (1 − e^{−kn/m})^k`. Errors are strictly one-sided, so a
//! threshold test `f_x ≥ T` never yields false negatives — the property
//! the paper's ad-hoc iceberg queries, spectral Bloomjoins and bifocal
//! sampling all build on.
//!
//! # Choosing an algorithm
//!
//! | Type | Paper § | Inserts | Deletes | Accuracy |
//! |---|---|---|---|---|
//! | [`MsSbf`] | 2.2 | ✔ | ✔ | baseline (Minimum Selection) |
//! | [`MiSbf`] | 3.2 | ✔ | ✖ (false negatives!) | best for insert-only |
//! | [`RmSbf`] | 3.3 | ✔ | ✔ | much better than MS, supports deletes |
//! | [`TrappingRmSbf`] | 3.3.1 | ✔ | ✔ | RM + late-detection compensation |
//!
//! All algorithms implement [`MultisetSketch`] (updates) over the
//! [`SketchReader`] query supertrait — which the concurrent backends
//! [`AtomicMsSbf`], [`ShardedSketch`] and [`SharedSketch`] also implement —
//! and are generic over the hash family (`sbf-hash`) and over the counter
//! storage: [`PlainCounters`] (one word per counter, fastest) or
//! [`CompressedCounters`] (the §4 String-Array-Index representation at
//! `N + o(N) + O(m)` bits).
//!
//! # Quick start
//!
//! Prefer sizing through [`SbfParams`] + [`FromParams`] over the positional
//! `new(m, k, seed)` constructors:
//!
//! ```
//! use spectral_bloom::{FromParams, MsSbf, MultisetSketch, SbfParams, SketchReader};
//!
//! let params = SbfParams::for_capacity(2_000).with_target_error(0.01);
//! let mut sbf = MsSbf::from_params(&params, 42);
//! sbf.insert(&"apple");
//! sbf.insert_by(&"apple", 99);
//! sbf.insert(&"pear");
//! assert!(sbf.estimate(&"apple") >= 100);    // one-sided
//! assert_eq!(sbf.estimate(&"plum"), 0);      // w.h.p.
//! sbf.remove(&"pear").unwrap();
//! ```
//!
//! # Telemetry
//!
//! Hot paths are instrumented behind [`sbf_telemetry::enabled`] (default
//! off; one relaxed load + predictable branch when disabled). See
//! [`metrics`] for the metric-name table and
//! [`ShardedSketch::publish_metrics`] for per-shard gauges.

// Library code must surface failures as `Result`/documented panics, never
// ad-hoc `unwrap`/`expect` (ISSUE 4 lint wall); tests keep idiomatic unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), warn(clippy::as_conversions))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod atomic_store;
pub mod bloom;
pub mod concurrent;
pub mod core_ops;
pub mod estimator;
pub mod iceberg;
pub mod metrics;
pub mod mi;
pub mod ms;
pub mod num;
pub mod paged;
pub mod params;
pub mod range;
pub mod rm;
pub mod sharded;
pub mod sketch;
pub mod spectrum;
pub mod store;
pub mod sync;
pub mod trap;
pub mod window;

pub use atomic_store::{AtomicCounters, AtomicMsSbf, BlockedAtomicMsSbf, ConcurrentCounterStore};
pub use bloom::BloomFilter;
pub use concurrent::SharedSketch;
pub use core_ops::{SbfCore, PIPELINE_DEPTH};
pub use estimator::{median_of_means_estimate, rm_combined_estimate, unbiased_estimate};
pub use iceberg::{
    ad_hoc_iceberg, adaptive_multiscan_iceberg, multiscan_iceberg, MultiscanConfig,
    StreamingIceberg, TopKTracker,
};
pub use metrics::{core_metrics, CoreMetrics};
pub use mi::MiSbf;
pub use ms::{BlockedMsSbf, MsSbf};
pub use paged::{IoStats, PagedCounters};
pub use params::{bloom_error_rate, optimal_k, FromParams, SbfParams};
pub use range::RangeTreeSketch;
pub use rm::RmSbf;
pub use sharded::{BlockedShardedSketch, ShardMerge, ShardedSketch};
pub use sketch::{BatchRemoveError, MultisetSketch, SketchReader};
pub use spectrum::{frequency_histogram, profile, SpectrumProfile};
pub use store::{CompactCounters, CompressedCounters, CounterStore, PlainCounters, RemoveError};
pub use trap::TrappingRmSbf;
pub use window::SlidingWindowSbf;

/// The default hash family used by the convenience constructors.
pub type DefaultFamily = sbf_hash::MixFamily;
