//! Aggregate queries over specified items (§5.1).
//!
//! The SBF "behaves very much like a histogram where each item has its own
//! bucket": given any set of keys, `count`, `sum`, `avg` and `max`
//! aggregates come straight from per-key estimates, with one-sided error
//! `E_SBF` per key. These helpers implement the `SELECT count(a1) FROM R
//! WHERE a1 = v`-style usage the paper sketches.

use sbf_hash::Key;

use crate::num;
use crate::sketch::MultisetSketch;

/// Summary statistics over the estimated multiplicities of a key set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateResult {
    /// Number of keys queried.
    pub keys: usize,
    /// Keys with non-zero estimates (approximate distinct-present count).
    pub present: usize,
    /// Σ of estimates.
    pub sum: u64,
    /// Max estimate.
    pub max: u64,
    /// Mean estimate over *present* keys (0 if none).
    pub avg_present: f64,
}

/// Computes count/sum/avg/max aggregates over `keys` against `sketch`.
///
/// Because per-key errors are one-sided, `sum` and `max` are upper bounds
/// on the truth, and `present` may only over-count.
pub fn aggregate_over_keys<SK, K, I>(sketch: &SK, keys: I) -> AggregateResult
where
    SK: MultisetSketch,
    K: Key,
    I: IntoIterator<Item = K>,
{
    let mut n = 0usize;
    let mut present = 0usize;
    let mut sum = 0u64;
    let mut max = 0u64;
    for key in keys {
        n += 1;
        let est = sketch.estimate(&key);
        if est > 0 {
            present += 1;
            sum += est;
            max = max.max(est);
        }
    }
    AggregateResult {
        keys: n,
        present,
        sum,
        max,
        avg_present: if present > 0 {
            num::to_f64(sum) / num::to_f64(present)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;

    #[test]
    fn aggregates_match_truth_at_light_load() {
        let mut sbf = MsSbf::new(8192, 5, 1);
        for key in 0u64..100 {
            sbf.insert_by(&key, key + 1);
        }
        let agg = aggregate_over_keys(&sbf, 0u64..100);
        assert_eq!(agg.keys, 100);
        assert_eq!(agg.present, 100);
        assert_eq!(agg.sum, (1..=100).sum::<u64>());
        assert_eq!(agg.max, 100);
        assert!((agg.avg_present - 50.5).abs() < 1e-9);
    }

    #[test]
    fn sum_is_an_upper_bound() {
        let mut sbf = MsSbf::new(300, 5, 2); // heavy load → collisions
        for key in 0u64..300 {
            sbf.insert_by(&key, 2);
        }
        let agg = aggregate_over_keys(&sbf, 0u64..300);
        assert!(agg.sum >= 600, "one-sided errors can only inflate the sum");
    }

    #[test]
    fn absent_keys_do_not_contribute() {
        let mut sbf = MsSbf::new(8192, 5, 3);
        sbf.insert_by(&1u64, 10);
        let agg = aggregate_over_keys(&sbf, 100u64..200);
        assert_eq!(agg.present, 0);
        assert_eq!(agg.sum, 0);
        assert_eq!(agg.avg_present, 0.0);
    }

    #[test]
    fn empty_key_set() {
        let sbf = MsSbf::new(64, 3, 4);
        let agg = aggregate_over_keys(&sbf, std::iter::empty::<u64>());
        assert_eq!(agg.keys, 0);
        assert_eq!(agg.max, 0);
    }
}
