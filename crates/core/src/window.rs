//! First-class sliding windows (§2.2 "Deletions and sliding window
//! maintenance").
//!
//! The paper's recipe — "the sliding window can be maintained simply by
//! performing deletions of the out-of-date data" — assumes the departing
//! items are available. [`SlidingWindowSbf`] packages that assumption: it
//! keeps the window's raw keys in a ring buffer (they must be retained
//! *somewhere* for the recipe to work) and drives the wrapped sketch's
//! insert/remove pair on every arrival past capacity.

use std::collections::VecDeque;

use sbf_hash::Key;

use crate::params::{FromParams, SbfParams};
use crate::sketch::MultisetSketch;

/// A sketch restricted to the last `capacity` items of a stream.
#[derive(Debug, Clone)]
pub struct SlidingWindowSbf<SK: MultisetSketch> {
    sketch: SK,
    window: VecDeque<u64>,
    capacity: usize,
}

impl<SK: MultisetSketch> SlidingWindowSbf<SK> {
    /// Wraps `sketch` with a window of `capacity` items.
    ///
    /// The sketch should support deletions soundly — Recurring Minimum or
    /// Minimum Selection; Minimal Increase will corrupt (§3.2), which the
    /// wrapper cannot prevent.
    pub fn new(sketch: SK, capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindowSbf {
            sketch,
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Builds the inner sketch from sizing `params` and wraps it with a
    /// window of `capacity` items.
    pub fn from_params(params: &SbfParams, seed: u64, capacity: usize) -> Self
    where
        SK: FromParams,
    {
        Self::new(SK::from_params(params, seed), capacity)
    }

    /// Ingests one item; evicts (and deletes) the oldest when full.
    /// Returns the evicted key, if any.
    pub fn push<K: Key + ?Sized>(&mut self, key: &K) -> Option<u64> {
        let canon = key.canonical();
        self.sketch.insert(&canon);
        self.window.push_back(canon);
        if self.window.len() > self.capacity {
            let leaver = self
                .window
                .pop_front()
                .unwrap_or_else(|| unreachable!("over capacity"));
            self.sketch
                .remove(&leaver)
                .unwrap_or_else(|_| unreachable!("window leavers were inserted on arrival"));
            return Some(leaver);
        }
        None
    }

    /// Estimated multiplicity of `key` within the current window.
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        self.sketch.estimate(&key.canonical())
    }

    /// Items currently inside the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &SK {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;
    use crate::rm::RmSbf;
    use crate::sketch::SketchReader;

    #[test]
    fn window_counts_only_recent_items() {
        let mut w = SlidingWindowSbf::new(MsSbf::new(4096, 5, 1), 100);
        // 0..50 arrive, then 500 other items flush them out.
        for key in 0u64..50 {
            w.push(&key);
        }
        for key in 1000u64..1500 {
            w.push(&key);
        }
        assert_eq!(w.len(), 100);
        for key in 0u64..50 {
            assert_eq!(w.estimate(&key), 0, "flushed key {key} still counted");
        }
        for key in 1400u64..1500 {
            assert!(w.estimate(&key) >= 1, "recent key {key} missing");
        }
    }

    #[test]
    fn eviction_returns_the_leaver_in_order() {
        let mut w = SlidingWindowSbf::new(MsSbf::new(1024, 4, 2), 3);
        assert_eq!(w.push(&1u64), None);
        assert_eq!(w.push(&2u64), None);
        assert_eq!(w.push(&3u64), None);
        assert_eq!(w.push(&4u64), Some(1));
        assert_eq!(w.push(&5u64), Some(2));
    }

    #[test]
    fn repeated_keys_count_per_occurrence() {
        let mut w = SlidingWindowSbf::new(RmSbf::new(2048, 5, 3), 10);
        for _ in 0..7 {
            w.push(&"flow");
        }
        assert!(w.estimate(&"flow") >= 7);
        // Push 10 other items: all "flow" occurrences leave.
        for key in 0u64..10 {
            w.push(&key);
        }
        assert_eq!(w.estimate(&"flow"), 0);
    }

    #[test]
    fn totals_match_window_size() {
        let mut w = SlidingWindowSbf::new(MsSbf::new(8192, 5, 4), 250);
        for key in 0u64..1000 {
            w.push(&(key % 63));
        }
        assert_eq!(w.len(), 250);
        assert_eq!(w.sketch().total_count(), 250);
    }
}
