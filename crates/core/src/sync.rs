//! Synchronization facade: the single point where this crate's concurrent
//! code binds to either `std::sync` or the in-workspace model checker.
//!
//! Every atomic, mutex and rwlock used by the lock-free layer
//! ([`crate::atomic_store`], [`crate::sharded`], [`crate::concurrent`],
//! [`crate::metrics`]) is imported from here, never from `std::sync`
//! directly (enforced by the repo's `static_guards` test). Normal builds
//! re-export `std` types with zero overhead; under
//! `RUSTFLAGS='--cfg sbf_modelcheck'` the same paths resolve to
//! `sbf-modelcheck`'s model types, so the exhaustive interleaving tests in
//! `tests/modelcheck_suite.rs` exercise the exact production code.

#[cfg(not(sbf_modelcheck))]
pub use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Atomic integer types, mirroring `std::sync::atomic`.
#[cfg(not(sbf_modelcheck))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}

#[cfg(sbf_modelcheck)]
pub use sbf_modelcheck::sync::{Arc, Mutex, OnceLock, RwLock};

/// Model atomic integer types (checker build).
#[cfg(sbf_modelcheck)]
pub mod atomic {
    pub use sbf_modelcheck::sync::atomic::{AtomicU64, Ordering};
}

/// Unwraps a lock guard, propagating poisoning as a panic.
///
/// Poisoning means another thread panicked mid-mutation: a shard may hold a
/// half-applied batch, and serving that data would silently break the
/// one-sided `f̂ ≥ f` contract — so readers and writers die loudly instead
/// (the crate-wide `expect_used` lint funnels every lock acquisition
/// through here, where that choice is documented once).
#[allow(clippy::expect_used)]
pub(crate) fn lock_unpoisoned<T>(r: std::sync::LockResult<T>) -> T {
    r.expect("lock poisoned: a thread panicked mid-mutation")
}
