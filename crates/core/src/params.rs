//! Parameter selection: the error formulas of §2.1 and a builder that
//! turns capacity/error targets into `(m, k)`.

use crate::num;

/// The Bloom error `E_b = (1 − e^{−kn/m})^k` (§2.1) — the probability the
/// basic SBF misestimates an arbitrary key.
pub fn bloom_error_rate(n: usize, m: usize, k: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let gamma = num::to_f64(k) * num::to_f64(n) / num::to_f64(m);
    (1.0 - (-gamma).exp()).powi(num::powi_exp(k))
}

/// The error-minimizing number of hash functions `k = ln 2 · m/n` (§2.1),
/// at least 1.
pub fn optimal_k(n: usize, m: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let k = (num::to_f64(m) / num::to_f64(n)) * std::f64::consts::LN_2;
    num::sat_usize(k.round()).max(1)
}

/// The load ratio `γ = nk/m` of §2.1 (optimal ≈ ln 2 ≈ 0.693).
pub fn gamma(n: usize, m: usize, k: usize) -> f64 {
    if m == 0 {
        return f64::INFINITY;
    }
    num::to_f64(n) * num::to_f64(k) / num::to_f64(m)
}

/// Sizing helper: capacity and error-rate targets → `(m, k)`.
///
/// ```
/// use spectral_bloom::SbfParams;
///
/// let p = SbfParams::for_capacity(10_000).with_target_error(0.01);
/// let (m, k) = p.dimensions();
/// assert!(spectral_bloom::bloom_error_rate(10_000, m, k) <= 0.011);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbfParams {
    n: usize,
    target_error: f64,
}

impl SbfParams {
    /// Starts from the expected number of *distinct* keys.
    pub fn for_capacity(n: usize) -> Self {
        SbfParams {
            n,
            target_error: 0.01,
        }
    }

    /// Sets the acceptable Bloom-error probability (default 1%).
    pub fn with_target_error(mut self, e: f64) -> Self {
        assert!(e > 0.0 && e < 1.0, "error target must be in (0,1)");
        self.target_error = e;
        self
    }

    /// Computes `(m, k)`: at the optimum, `E_b = (1/2)^k = 0.6185^{m/n}`,
    /// so `m/n = log₂(1/E)/ln 2` and `k = ln 2 · m/n`.
    pub fn dimensions(&self) -> (usize, usize) {
        let bits_per_key = -self.target_error.log2() / std::f64::consts::LN_2;
        let m = num::sat_usize((num::to_f64(self.n) * bits_per_key).ceil());
        let m = m.max(8);
        (m, optimal_k(self.n.max(1), m))
    }
}

/// Unified construction from capacity/error-rate targets.
///
/// Every sketch in this crate implements (or offers an inherent variant
/// of) `from_params`, so `(m, k)` sizing lives in one place — prefer this
/// over the positional `new(m, k, seed)` constructors, which are easy to
/// mis-order and scatter the sizing arithmetic across call sites.
///
/// ```
/// use spectral_bloom::{FromParams, MsSbf, RmSbf, SbfParams, SketchReader};
///
/// let params = SbfParams::for_capacity(10_000).with_target_error(0.01);
/// let mut ms = MsSbf::from_params(&params, 42);
/// let rm = RmSbf::from_params(&params, 42);
/// use spectral_bloom::MultisetSketch;
/// ms.insert(&"key");
/// assert!(ms.estimate(&"key") >= 1);
/// assert_eq!(rm.total_count(), 0);
/// ```
pub trait FromParams: Sized {
    /// Builds a sketch sized by `params.dimensions()` with the given hash
    /// seed. For the Recurring Minimum family the `m` budget is the *total*
    /// counter budget, split ⅔ primary / ⅓ secondary as in
    /// [`crate::RmSbf::new`].
    fn from_params(params: &SbfParams, seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_c8() {
        // §2.1: "For c = 8, the false positive error rate is slightly larger
        // than 2%" (with optimal k).
        let n = 1000;
        let m = 8 * n;
        let k = optimal_k(n, m);
        assert_eq!(k, 6, "ln2·8 ≈ 5.5 rounds to 6");
        let e = bloom_error_rate(n, m, k);
        assert!((0.02..0.03).contains(&e), "E_b = {e}");
    }

    #[test]
    fn optimal_gamma_near_ln2() {
        let n = 1000;
        let m = 8 * n;
        let k = optimal_k(n, m);
        let g = gamma(n, m, k);
        assert!((0.6..0.8).contains(&g), "γ = {g}");
    }

    #[test]
    fn error_is_monotone_in_n() {
        let mut last = 0.0;
        for n in [100, 200, 400, 800, 1600] {
            let e = bloom_error_rate(n, 8000, 5);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn dimensions_meet_target() {
        for (n, target) in [(1000, 0.05), (10_000, 0.01), (100_000, 0.001)] {
            let (m, k) = SbfParams::for_capacity(n)
                .with_target_error(target)
                .dimensions();
            let e = bloom_error_rate(n, m, k);
            assert!(e <= target * 1.15, "n={n}: E_b {e} exceeds {target}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(bloom_error_rate(0, 100, 5), 0.0);
        assert_eq!(bloom_error_rate(10, 0, 5), 1.0);
        assert_eq!(optimal_k(0, 100), 1);
        assert!(gamma(10, 0, 5).is_infinite());
    }

    #[test]
    #[should_panic(expected = "error target")]
    fn zero_error_target_rejected() {
        let _ = SbfParams::for_capacity(10).with_target_error(0.0);
    }
}
