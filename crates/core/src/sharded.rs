//! Hash-partitioned concurrent sketches: per-shard locks instead of one
//! global lock.
//!
//! Minimal Increase and Recurring Minimum inserts are read-modify-write
//! over several counters (MI reads the minimum before raising, RM decides
//! between primary and secondary), so unlike Minimum Selection they cannot
//! run lock-free — see [`crate::AtomicMsSbf`] for that path. What *can* be
//! removed is the global lock: [`ShardedSketch`] hash-partitions keys
//! across `S` independent sub-filters, each behind its own `RwLock`, so
//! producers working on different shards never contend.
//!
//! Because every occurrence of a key routes to the same shard, each shard
//! is an exact sketch of its own sub-multiset, and §5's distributed union
//! ("SBFs can be united simply by addition of their counter vectors")
//! rebuilds a single filter of the whole stream: [`ShardedSketch::snapshot`]
//! adds the shard counter vectors. Queries don't need the union — they
//! route to the owning shard, touching one lock in read mode.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::lock_unpoisoned;
use crate::sync::{Arc, Mutex, RwLock};

use sbf_hash::{fmix64, HashFamily, Key};

use crate::metrics;
use crate::mi::MiSbf;
use crate::ms::{BlockedMsSbf, MsSbf};
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::rm::RmSbf;
use crate::sketch::{BatchRemoveError, MultisetSketch, SketchReader};
use crate::store::{CounterStore, RemoveError};

/// Reusable buffers for partitioning one batch of keys across shards.
///
/// Holding plain indices (not borrowed keys) keeps the struct lifetime-free
/// so one instance can live inside [`ShardedSketch`] and be reused across
/// batches — the steady-state batch path performs **zero** heap
/// allocations once the buffers have grown to the working batch size.
#[derive(Debug, Default)]
struct PartitionScratch {
    /// `shard_ids[i]` = owning shard of `keys[i]`.
    shard_ids: Vec<u32>,
    /// Per-shard offsets into `order` (`counts[s]..counts[s + 1]`).
    counts: Vec<usize>,
    /// Item indices grouped by shard, input order preserved within a shard.
    order: Vec<u32>,
    /// Per-item results in `order` order (query path).
    vals: Vec<u64>,
}

impl PartitionScratch {
    /// Counting-sort partition: fills `order` with `0..len` grouped by
    /// shard (stable within each shard) and `counts` with the group
    /// boundaries. `shard_of` is evaluated once per item.
    fn partition(&mut self, len: usize, num_shards: usize, mut shard_of: impl FnMut(usize) -> u32) {
        self.shard_ids.clear();
        self.shard_ids.reserve(len);
        self.counts.clear();
        self.counts.resize(num_shards + 1, 0);
        for i in 0..len {
            let s = shard_of(i);
            self.shard_ids.push(s);
            self.counts[num::to_usize(s) + 1] += 1;
        }
        for s in 0..num_shards {
            self.counts[s + 1] += self.counts[s];
        }
        self.order.clear();
        self.order.resize(len, 0);
        // `vals` doubles as the scatter cursor here; the query path
        // overwrites it afterwards anyway.
        self.vals.clear();
        self.vals
            .extend(self.counts[..num_shards].iter().map(|&c| num::to_u64(c)));
        for (i, &s) in self.shard_ids.iter().enumerate() {
            let c = &mut self.vals[num::to_usize(s)];
            self.order[num::to_usize(*c)] = num::idx_u32(i);
            *c += 1;
        }
    }

    /// The item indices owned by shard `s`.
    fn picks(&self, s: usize) -> &[u32] {
        &self.order[self.counts[s]..self.counts[s + 1]]
    }
}

/// Sketches that can absorb a disjoint peer by counter addition (§5).
///
/// `absorb` requires both sketches to share parameters and hash functions,
/// and is exact when the two inputs hold disjoint key sets (the sharding
/// invariant); see each implementation for what addition means when keys
/// overlap.
pub trait ShardMerge {
    /// Adds `other`'s counters into `self`.
    fn absorb(&mut self, other: &Self);
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for MsSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for MiSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for RmSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

/// `S` independent sub-filters with per-shard read/write locks.
///
/// All shards must be built with **identical parameters** (`m`, `k`, seed)
/// so their counter vectors are addable per §5; [`ShardedSketch::with_shards`]
/// enforces this by construction. The router hash is independent of the
/// sketches' own hash family, so shard assignment does not bias which
/// counters a key touches.
///
/// ```
/// use spectral_bloom::{MiSbf, MultisetSketch, ShardedSketch};
///
/// let sketch = ShardedSketch::with_shards(8, |_| MiSbf::new(4096, 5, 7));
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let h = &sketch;
///         s.spawn(move || {
///             let keys: Vec<u64> = (0..1000).map(|i| t * 10_000 + i).collect();
///             h.insert_batch(&keys);
///         });
///     }
/// });
/// assert_eq!(sketch.total_count(), 4000);
/// assert!(sketch.estimate(&10_001u64) >= 1);
/// ```
#[derive(Debug)]
pub struct ShardedSketch<SK> {
    shards: Vec<RwLock<SK>>,
    route_seed: u64,
    /// Per-shard mutation counters, bumped inside the shard's write lock
    /// *after* the data write. [`ShardedSketch::snapshot_cached`] reads all
    /// versions before read-locking any shard, so a stale stamp can only
    /// cause a spurious rebuild, never a stale cache hit.
    versions: Vec<AtomicU64>,
    snapshot_cache: Mutex<Option<SnapshotCache<SK>>>,
    /// Reused partition buffers for the batch paths. `try_lock`ed: if
    /// another thread is mid-batch, the loser falls back to a transient
    /// local scratch rather than serialising batches on this mutex.
    scratch: Mutex<PartitionScratch>,
}

/// A cached §5 union plus the per-shard versions it was built from.
#[derive(Debug)]
struct SnapshotCache<SK> {
    versions: Vec<u64>,
    merged: Arc<SK>,
}

impl<SK> ShardedSketch<SK> {
    /// Builds `n` shards from a constructor called with each shard index.
    ///
    /// The constructor must produce sketches with identical parameters
    /// (same `m`, `k`, hash seed) — pass the index only for bookkeeping,
    /// not to vary the filter shape, or [`ShardedSketch::snapshot`] will
    /// refuse to union the shards.
    pub fn with_shards(n: usize, make: impl FnMut(usize) -> SK) -> Self {
        assert!(n > 0, "sharded sketch needs at least one shard");
        Self::from_shards((0..n).map(make).collect())
    }

    /// Wraps pre-built shards (all with identical parameters).
    pub fn from_shards(shards: Vec<SK>) -> Self {
        assert!(
            !shards.is_empty(),
            "sharded sketch needs at least one shard"
        );
        let versions = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        ShardedSketch {
            shards: shards.into_iter().map(RwLock::new).collect(),
            // Fixed and family-independent: routing must not correlate with
            // the counter indices the sketches derive from their own seeds.
            route_seed: 0x5ba2_d911_c3b1_70a4,
            versions,
            snapshot_cache: Mutex::new(None),
            scratch: Mutex::new(PartitionScratch::default()),
        }
    }

    /// Builds `n` shards of `SK` sized by `params` — every shard gets
    /// identical `(m, k, seed)`, the invariant [`ShardedSketch::snapshot`]
    /// relies on. Note the per-*shard* size is `params.dimensions()`, so
    /// total space is `n ×` that; size `params` for the per-shard
    /// sub-multiset.
    pub fn from_params(n: usize, params: &SbfParams, seed: u64) -> Self
    where
        SK: FromParams,
    {
        assert!(n > 0, "sharded sketch needs at least one shard");
        Self::with_shards(n, |_| SK::from_params(params, seed))
    }

    /// Number of shards `S`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `key`.
    #[inline]
    pub fn shard_of<K: Key + ?Sized>(&self, key: &K) -> usize {
        let h = fmix64(key.canonical() ^ self.route_seed);
        // Widening multiply maps uniformly onto {0..S-1} without modulo bias.
        num::mul_shift_range(h, self.shards.len())
    }

    /// Runs `f` with shared read access to shard `i` (bulk queries against
    /// one shard without per-call lock traffic).
    pub fn with_shard_read<R>(&self, i: usize, f: impl FnOnce(&SK) -> R) -> R {
        let guard = lock_unpoisoned(self.shards[i].read());
        f(&guard)
    }

    /// The per-shard mutation stamps, read with `Acquire` — the raw
    /// material of the [`ShardedSketch::snapshot_cached`] staleness
    /// protocol, exposed so external caches (e.g. a compressed read
    /// replica) can run the same check. Capture the stamps *before*
    /// reading shard data, then later compare with
    /// [`ShardedSketch::versions_match`]: a racing writer can at worst
    /// make fresh data look stale (one spurious rebuild), never the
    /// reverse.
    pub fn version_stamps(&self) -> Vec<u64> {
        self.versions
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .collect()
    }

    /// Whether no shard has mutated since `stamps` was captured by
    /// [`ShardedSketch::version_stamps`]. `false` for stamp vectors of the
    /// wrong length (a cache built against a different sketch is stale by
    /// definition).
    pub fn versions_match(&self, stamps: &[u64]) -> bool {
        stamps.len() == self.versions.len()
            && self
                .versions
                .iter()
                .zip(stamps)
                .all(|(v, &s)| v.load(Ordering::Acquire) == s)
    }
}

/// Sharded blocked variant: combines the per-shard locking of
/// [`ShardedSketch`] with the 1-cache-miss-per-item blocked layout of
/// [`BlockedMsSbf`], so both the routing hash *and* the counter probes stay
/// cache-friendly under concurrency.
pub type BlockedShardedSketch = ShardedSketch<BlockedMsSbf>;

impl BlockedShardedSketch {
    /// Builds `num_shards` identical blocked MS shards, each with
    /// `num_blocks` cache-line-sized blocks of `block_size` counters (see
    /// [`BlockedMsSbf::new_blocked`] for the layout invariants).
    pub fn blocked_ms(
        num_shards: usize,
        block_size: usize,
        num_blocks: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        Self::with_shards(num_shards, |_| {
            BlockedMsSbf::new_blocked(block_size, num_blocks, k, seed)
        })
    }
}

impl<SK: MultisetSketch> ShardedSketch<SK> {
    /// Adds `count` occurrences of `key` (locks the owning shard only).
    pub fn insert_by<K: Key + ?Sized>(&self, key: &K, count: u64) {
        metrics::on(|m| m.sharded_ops.inc());
        let shard = self.shard_of(key);
        let mut guard = lock_unpoisoned(self.shards[shard].write());
        guard.insert_by(key, count);
        self.versions[shard].fetch_add(1, Ordering::Release);
        drop(guard);
    }

    /// Adds one occurrence of `key`.
    pub fn insert<K: Key + ?Sized>(&self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Adds a batch of keys, partitioned once so each shard's lock is taken
    /// once per batch instead of once per key, and applied through the
    /// shard's software-pipelined batch path. Grouping also improves
    /// locality: consecutive inserts touch one shard's counters.
    ///
    /// Relative input order is preserved *within* each shard, and keys in
    /// different shards never share counters, so the final state equals
    /// inserting every key in turn. The partition buffers are reused across
    /// batches: the steady state allocates nothing.
    pub fn insert_batch<K: Key>(&self, keys: &[K]) {
        metrics::on(|m| m.sharded_ops.add(num::to_u64(keys.len())));
        if self.shards.len() == 1 {
            let mut shard = lock_unpoisoned(self.shards[0].write());
            shard.insert_batch(keys);
            // The stamp must be bumped while the write lock is still held:
            // bumping after the unlock lets a snapshotter read the new data
            // under the lock yet pair it with the old stamp, caching a
            // stale-as-fresh snapshot (caught by
            // `stamp_protocol_never_serves_stale_snapshot_as_fresh` in
            // tests/modelcheck_suite.rs).
            self.versions[0].fetch_add(1, Ordering::Release);
            drop(shard);
            return;
        }
        self.with_partitioned(keys, |s, picks| {
            let mut shard = lock_unpoisoned(self.shards[s].write());
            shard.insert_batch_picked(keys, picks);
            // Bump inside the lock — see the single-shard path above.
            self.versions[s].fetch_add(1, Ordering::Release);
            drop(shard);
        });
    }

    /// Partitions `keys` across shards (reusing the shared scratch when
    /// uncontended) and runs `per_shard(s, picks)` for every shard with at
    /// least one key.
    fn with_partitioned<K: Key>(&self, keys: &[K], mut per_shard: impl FnMut(usize, &[u32])) {
        let mut local = PartitionScratch::default();
        let mut guard = self.scratch.try_lock().ok();
        let scratch = match guard.as_mut() {
            Some(g) => &mut **g,
            None => &mut local,
        };
        scratch.partition(keys.len(), self.shards.len(), |i| {
            num::idx_u32(self.shard_of(&keys[i]))
        });
        for s in 0..self.shards.len() {
            let picks = scratch.picks(s);
            if !picks.is_empty() {
                per_shard(s, picks);
            }
        }
    }

    /// Estimates every key, writing `out[i]` for `keys[i]` — results are
    /// exactly per-key [`ShardedSketch::estimate`] calls. The batch is
    /// partitioned once, each owning shard is read-locked once and queried
    /// through its pipelined batch path, and the answers are scattered back
    /// into input order. Steady-state allocation-free (shared scratch +
    /// caller-reused `out`).
    pub fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        out.clear();
        if self.shards.len() == 1 {
            let shard = lock_unpoisoned(self.shards[0].read());
            shard.estimate_batch_into(keys, out);
            return;
        }
        let mut local = PartitionScratch::default();
        let mut guard = self.scratch.try_lock().ok();
        let scratch = match guard.as_mut() {
            Some(g) => &mut **g,
            None => &mut local,
        };
        scratch.partition(keys.len(), self.shards.len(), |i| {
            num::idx_u32(self.shard_of(&keys[i]))
        });
        scratch.vals.clear();
        for s in 0..self.shards.len() {
            let picks = &scratch.order[scratch.counts[s]..scratch.counts[s + 1]];
            if picks.is_empty() {
                continue;
            }
            let shard = lock_unpoisoned(self.shards[s].read());
            shard.estimate_batch_picked_into(keys, picks, &mut scratch.vals);
        }
        out.resize(keys.len(), 0);
        for (pos, &i) in scratch.order.iter().enumerate() {
            out[num::to_usize(i)] = scratch.vals[pos];
        }
    }

    /// Convenience form of [`ShardedSketch::estimate_batch_into`].
    pub fn estimate_batch<K: Key>(&self, keys: &[K]) -> Vec<u64> {
        let mut out = Vec::new();
        self.estimate_batch_into(keys, &mut out);
        out
    }

    /// Removes one occurrence of every key, in input order, stopping at the
    /// first failure (see [`BatchRemoveError`]).
    ///
    /// Unlike [`ShardedSketch::insert_batch`] this does **not** partition:
    /// the stop-at-first-failure contract promises that exactly the input
    /// prefix before the failing item is applied, and regrouping by shard
    /// would apply a different subset. Removals therefore lock per key.
    pub fn remove_batch<K: Key>(&self, keys: &[K]) -> Result<(), BatchRemoveError> {
        for (index, key) in keys.iter().enumerate() {
            self.remove(key)
                .map_err(|error| BatchRemoveError { index, error })?;
        }
        Ok(())
    }

    /// Removes `count` occurrences of `key` from its owning shard.
    pub fn remove_by<K: Key + ?Sized>(&self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.sharded_ops.inc());
        let shard = self.shard_of(key);
        let mut guard = lock_unpoisoned(self.shards[shard].write());
        let result = guard.remove_by(key, count);
        if result.is_ok() {
            // Bump inside the lock, for the same snapshot-staleness reason
            // as `insert_batch`.
            self.versions[shard].fetch_add(1, Ordering::Release);
        }
        drop(guard);
        result
    }

    /// Removes one occurrence of `key`.
    pub fn remove<K: Key + ?Sized>(&self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Estimates the multiplicity of `key` (read-locks the owning shard).
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let shard = self.shard_of(key);
        lock_unpoisoned(self.shards[shard].read()).estimate(key)
    }

    /// Membership test: `f̂ > 0`.
    pub fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test against the owning shard.
    pub fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        let shard = self.shard_of(key);
        lock_unpoisoned(self.shards[shard].read()).passes_threshold(key, threshold)
    }

    /// Total multiplicity across all shards.
    ///
    /// Shards are read-locked one at a time, so the total is a consistent
    /// sum of per-shard pasts, not an instantaneous global cut — fine for
    /// monitoring, and exact once producers quiesce.
    pub fn total_count(&self) -> u64 {
        self.shard_totals().iter().sum()
    }

    /// Per-shard multiplicity totals (for load-balance inspection).
    pub fn shard_totals(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s.read()).total_count())
            .collect()
    }

    /// Total storage across shards.
    pub fn storage_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s.read()).storage_bits())
            .sum()
    }

    /// Unions all shards into one sketch by counter addition (§5) — the
    /// bridge back to the single-threaded world (serialization, further
    /// union/multiply, compressed re-encoding).
    ///
    /// This rebuilds the union from scratch on **every call** — `O(m ×
    /// num_shards)` clone-and-add work even when nothing changed since the
    /// last call. Callers that snapshot repeatedly between sparse writes
    /// (monitoring loops, repeated merges) should use
    /// [`ShardedSketch::snapshot_cached`], which reuses the previous union
    /// until some shard mutates.
    pub fn snapshot(&self) -> SK
    where
        SK: ShardMerge + Clone,
    {
        metrics::on(|m| m.snapshot_rebuilds.inc());
        self.union_shards()
    }

    /// Like [`ShardedSketch::snapshot`], but cached: the union is rebuilt
    /// only when a shard has mutated since the previous call, otherwise the
    /// cached `Arc` is cloned in O(1).
    ///
    /// Version stamps are bumped after each shard write completes and read
    /// here *before* the shard data, so a racing writer can at worst leave
    /// a fresh union stamped stale (one spurious rebuild later) — a cache
    /// hit never serves data older than its stamp.
    pub fn snapshot_cached(&self) -> Arc<SK>
    where
        SK: ShardMerge + Clone,
    {
        let stamps: Vec<u64> = self
            .versions
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .collect();
        let mut cache = lock_unpoisoned(self.snapshot_cache.lock());
        if let Some(c) = cache.as_ref() {
            if c.versions == stamps {
                metrics::on(|m| m.snapshot_cache_hits.inc());
                return Arc::clone(&c.merged);
            }
        }
        metrics::on(|m| m.snapshot_rebuilds.inc());
        let merged = Arc::new(self.union_shards());
        *cache = Some(SnapshotCache {
            versions: stamps,
            merged: Arc::clone(&merged),
        });
        merged
    }

    fn union_shards(&self) -> SK
    where
        SK: ShardMerge + Clone,
    {
        let mut merged = lock_unpoisoned(self.shards[0].read()).clone();
        for shard in &self.shards[1..] {
            let guard = lock_unpoisoned(shard.read());
            merged.absorb(&guard);
        }
        merged
    }

    /// Publishes per-shard load gauges into the global telemetry registry:
    /// `sbf_shard_occupancy_ratio{shard="i"}`,
    /// `sbf_shard_total_count{shard="i"}` and `sbf_shard_ops{shard="i"}`
    /// (the shard's version stamp, i.e. mutation batches applied). No-op
    /// while telemetry is disabled.
    pub fn publish_metrics(&self)
    where
        SK: SketchReader,
    {
        if !sbf_telemetry::enabled() {
            return;
        }
        let reg = sbf_telemetry::global();
        for (i, shard) in self.shards.iter().enumerate() {
            // Read the stamp *before* the data, with Acquire: the pair then
            // reports ops no newer than the occupancy/total it is published
            // with. The old order (data first, stamp after, Relaxed) could
            // attribute ops to a snapshot that does not contain them yet.
            let ops = self.versions[i].load(Ordering::Acquire);
            let (occ, total) = {
                let guard = lock_unpoisoned(shard.read());
                (guard.occupancy(), guard.total_count())
            };
            reg.gauge(&format!("sbf_shard_occupancy_ratio{{shard=\"{i}\"}}"))
                .set(occ);
            reg.gauge(&format!("sbf_shard_total_count{{shard=\"{i}\"}}"))
                .set_u64(total);
            reg.gauge(&format!("sbf_shard_ops{{shard=\"{i}\"}}"))
                .set_u64(ops);
        }
    }
}

impl<SK: MultisetSketch> SketchReader for ShardedSketch<SK> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        // Inherent resolution picks the instrumented routing methods.
        self.estimate(key)
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        // Route to the partition-once, one-read-lock-per-shard version.
        ShardedSketch::estimate_batch_into(self, keys, out);
    }

    fn total_count(&self) -> u64 {
        self.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.storage_bits()
    }

    fn occupancy(&self) -> f64 {
        let n = self.shards.len();
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s.read()).occupancy())
            .sum::<f64>()
            / num::to_f64(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let sketch = ShardedSketch::with_shards(8, |_| MsSbf::new(1024, 4, 1));
        for key in 0u64..1000 {
            let s = sketch.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, sketch.shard_of(&key), "routing must be deterministic");
        }
        // All shards should receive some keys.
        let mut hit = [false; 8];
        for key in 0u64..1000 {
            hit[sketch.shard_of(&key)] = true;
        }
        assert!(hit.iter().all(|&h| h), "1000 keys must touch all 8 shards");
    }

    #[test]
    fn sharded_ms_matches_unsharded_after_snapshot() {
        let sharded = ShardedSketch::with_shards(4, |_| MsSbf::new(2048, 5, 9));
        let mut flat = MsSbf::new(2048, 5, 9);
        for key in 0u64..400 {
            sharded.insert_by(&key, key % 5 + 1);
            flat.insert_by(&key, key % 5 + 1);
        }
        let merged = sharded.snapshot();
        for key in 0u64..400 {
            assert_eq!(merged.estimate(&key), flat.estimate(&key), "key {key}");
        }
        assert_eq!(merged.total_count(), flat.total_count());
    }

    #[test]
    fn estimates_route_to_owning_shard() {
        let sketch = ShardedSketch::with_shards(4, |_| MiSbf::new(4096, 5, 3));
        for key in 0u64..300 {
            sketch.insert_by(&key, key % 7 + 1);
        }
        for key in 0u64..300 {
            assert!(sketch.estimate(&key) > key % 7, "undercount for {key}");
        }
    }

    #[test]
    fn insert_batch_equals_singles() {
        let batched = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 5));
        let singles = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 5));
        let keys: Vec<u64> = (0..500).map(|i| i % 100).collect();
        batched.insert_batch(&keys);
        for key in &keys {
            singles.insert(key);
        }
        for key in 0u64..100 {
            assert_eq!(batched.estimate(&key), singles.estimate(&key));
        }
        assert_eq!(batched.total_count(), 500);
    }

    #[test]
    fn removals_stay_within_shard() {
        let sketch = ShardedSketch::with_shards(4, |_| RmSbf::new(3000, 5, 2));
        for key in 0u64..100 {
            sketch.insert_by(&key, 10);
        }
        for key in 0u64..100 {
            sketch.remove_by(&key, 4).unwrap();
        }
        for key in 0u64..100 {
            assert!(sketch.estimate(&key) >= 6, "false negative for {key}");
        }
        assert_eq!(sketch.total_count(), 600);
    }

    #[test]
    fn snapshot_of_rm_shards_keeps_upper_bound() {
        let sketch = ShardedSketch::with_shards(4, |_| RmSbf::new(6000, 5, 8));
        for key in 0u64..200 {
            sketch.insert_by(&key, key % 9 + 1);
        }
        let merged = sketch.snapshot();
        for key in 0u64..200 {
            assert!(merged.estimate(&key) > key % 9, "undercount for {key}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedSketch::<MsSbf>::from_shards(Vec::new());
    }

    #[test]
    fn snapshot_cached_reuses_union_until_a_shard_mutates() {
        let sketch = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 6));
        for key in 0u64..200 {
            sketch.insert(&key);
        }
        let first = sketch.snapshot_cached();
        let second = sketch.snapshot_cached();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged shards must hit the cache"
        );
        sketch.insert(&9999u64);
        let third = sketch.snapshot_cached();
        assert!(
            !Arc::ptr_eq(&second, &third),
            "a mutation must invalidate the cache"
        );
        // The cached union answers exactly like a fresh one.
        let fresh = sketch.snapshot();
        for key in 0u64..200 {
            assert_eq!(third.estimate(&key), fresh.estimate(&key), "key {key}");
        }
        assert_eq!(third.total_count(), 201);
    }

    #[test]
    fn snapshot_cached_sees_batch_and_remove_mutations() {
        let sketch = ShardedSketch::with_shards(2, |_| MsSbf::new(512, 4, 3));
        let keys: Vec<u64> = (0..50).collect();
        sketch.insert_batch(&keys);
        let a = sketch.snapshot_cached();
        assert_eq!(a.total_count(), 50);
        sketch.remove(&0u64).unwrap();
        let b = sketch.snapshot_cached();
        assert!(!Arc::ptr_eq(&a, &b), "remove must invalidate the cache");
        assert_eq!(b.total_count(), 49);
        // A refused remove leaves the cache valid.
        assert!(sketch.remove_by(&0u64, 1_000_000).is_err());
        let c = sketch.snapshot_cached();
        assert!(Arc::ptr_eq(&b, &c), "failed remove must not invalidate");
    }

    #[test]
    fn from_params_builds_identical_shards() {
        use crate::params::SbfParams;
        let params = SbfParams::for_capacity(1000).with_target_error(0.01);
        let sketch: ShardedSketch<MsSbf> = ShardedSketch::from_params(4, &params, 11);
        assert_eq!(sketch.num_shards(), 4);
        for key in 0u64..100 {
            sketch.insert_by(&key, 2);
        }
        // Identical shard parameters: snapshot unions without panicking and
        // stays one-sided.
        let merged = sketch.snapshot();
        for key in 0u64..100 {
            assert!(merged.estimate(&key) >= 2);
        }
    }

    #[test]
    fn blocked_sharded_matches_single_blocked_sketch() {
        // Union of blocked shards must equal one blocked sketch fed the same
        // stream: per-key routing keeps each shard exact over its own
        // sub-multiset, and identical (block_size, num_blocks, k, seed) make
        // the counter layouts line up for §5 addition.
        let sharded = BlockedShardedSketch::blocked_ms(4, 128, 64, 4, 9);
        let mut single = BlockedMsSbf::new_blocked(128, 64, 4, 9);
        let keys: Vec<u64> = (0..500).map(|i| i * 31 + 7).collect();
        sharded.insert_batch(&keys);
        for key in &keys {
            single.insert(key);
        }
        let merged = sharded.snapshot();
        for key in &keys {
            assert_eq!(merged.estimate(key), single.estimate(key));
            assert!(sharded.estimate(key) >= 1);
        }
    }

    #[test]
    fn reader_trait_is_object_usable_generically() {
        fn probe<S: SketchReader>(s: &S, key: u64) -> u64 {
            s.estimate(&key)
        }
        let sketch = ShardedSketch::with_shards(2, |_| MsSbf::new(512, 4, 1));
        sketch.insert_by(&5u64, 7);
        assert!(probe(&sketch, 5) >= 7);
        assert!(SketchReader::occupancy(&sketch) > 0.0);
    }
}
