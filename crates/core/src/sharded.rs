//! Hash-partitioned concurrent sketches: per-shard locks instead of one
//! global lock.
//!
//! Minimal Increase and Recurring Minimum inserts are read-modify-write
//! over several counters (MI reads the minimum before raising, RM decides
//! between primary and secondary), so unlike Minimum Selection they cannot
//! run lock-free — see [`crate::AtomicMsSbf`] for that path. What *can* be
//! removed is the global lock: [`ShardedSketch`] hash-partitions keys
//! across `S` independent sub-filters, each behind its own `RwLock`, so
//! producers working on different shards never contend.
//!
//! Because every occurrence of a key routes to the same shard, each shard
//! is an exact sketch of its own sub-multiset, and §5's distributed union
//! ("SBFs can be united simply by addition of their counter vectors")
//! rebuilds a single filter of the whole stream: [`ShardedSketch::snapshot`]
//! adds the shard counter vectors. Queries don't need the union — they
//! route to the owning shard, touching one lock in read mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use sbf_hash::{fmix64, HashFamily, Key};

use crate::metrics;
use crate::mi::MiSbf;
use crate::ms::MsSbf;
use crate::params::{FromParams, SbfParams};
use crate::rm::RmSbf;
use crate::sketch::{MultisetSketch, SketchReader};
use crate::store::{CounterStore, RemoveError};

/// Sketches that can absorb a disjoint peer by counter addition (§5).
///
/// `absorb` requires both sketches to share parameters and hash functions,
/// and is exact when the two inputs hold disjoint key sets (the sharding
/// invariant); see each implementation for what addition means when keys
/// overlap.
pub trait ShardMerge {
    /// Adds `other`'s counters into `self`.
    fn absorb(&mut self, other: &Self);
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for MsSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for MiSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

impl<F: HashFamily + PartialEq, S: CounterStore> ShardMerge for RmSbf<F, S> {
    fn absorb(&mut self, other: &Self) {
        self.union_assign(other);
    }
}

/// `S` independent sub-filters with per-shard read/write locks.
///
/// All shards must be built with **identical parameters** (`m`, `k`, seed)
/// so their counter vectors are addable per §5; [`ShardedSketch::with_shards`]
/// enforces this by construction. The router hash is independent of the
/// sketches' own hash family, so shard assignment does not bias which
/// counters a key touches.
///
/// ```
/// use spectral_bloom::{MiSbf, MultisetSketch, ShardedSketch};
///
/// let sketch = ShardedSketch::with_shards(8, |_| MiSbf::new(4096, 5, 7));
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let h = &sketch;
///         s.spawn(move || {
///             let keys: Vec<u64> = (0..1000).map(|i| t * 10_000 + i).collect();
///             h.insert_batch(&keys);
///         });
///     }
/// });
/// assert_eq!(sketch.total_count(), 4000);
/// assert!(sketch.estimate(&10_001u64) >= 1);
/// ```
#[derive(Debug)]
pub struct ShardedSketch<SK> {
    shards: Vec<RwLock<SK>>,
    route_seed: u64,
    /// Per-shard mutation counters, bumped inside the shard's write lock
    /// *after* the data write. [`ShardedSketch::snapshot_cached`] reads all
    /// versions before read-locking any shard, so a stale stamp can only
    /// cause a spurious rebuild, never a stale cache hit.
    versions: Vec<AtomicU64>,
    snapshot_cache: Mutex<Option<SnapshotCache<SK>>>,
}

/// A cached §5 union plus the per-shard versions it was built from.
#[derive(Debug)]
struct SnapshotCache<SK> {
    versions: Vec<u64>,
    merged: Arc<SK>,
}

impl<SK> ShardedSketch<SK> {
    /// Builds `n` shards from a constructor called with each shard index.
    ///
    /// The constructor must produce sketches with identical parameters
    /// (same `m`, `k`, hash seed) — pass the index only for bookkeeping,
    /// not to vary the filter shape, or [`ShardedSketch::snapshot`] will
    /// refuse to union the shards.
    pub fn with_shards(n: usize, make: impl FnMut(usize) -> SK) -> Self {
        assert!(n > 0, "sharded sketch needs at least one shard");
        Self::from_shards((0..n).map(make).collect())
    }

    /// Wraps pre-built shards (all with identical parameters).
    pub fn from_shards(shards: Vec<SK>) -> Self {
        assert!(
            !shards.is_empty(),
            "sharded sketch needs at least one shard"
        );
        let versions = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        ShardedSketch {
            shards: shards.into_iter().map(RwLock::new).collect(),
            // Fixed and family-independent: routing must not correlate with
            // the counter indices the sketches derive from their own seeds.
            route_seed: 0x5ba2_d911_c3b1_70a4,
            versions,
            snapshot_cache: Mutex::new(None),
        }
    }

    /// Builds `n` shards of `SK` sized by `params` — every shard gets
    /// identical `(m, k, seed)`, the invariant [`ShardedSketch::snapshot`]
    /// relies on. Note the per-*shard* size is `params.dimensions()`, so
    /// total space is `n ×` that; size `params` for the per-shard
    /// sub-multiset.
    pub fn from_params(n: usize, params: &SbfParams, seed: u64) -> Self
    where
        SK: FromParams,
    {
        assert!(n > 0, "sharded sketch needs at least one shard");
        Self::with_shards(n, |_| SK::from_params(params, seed))
    }

    /// Number of shards `S`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `key`.
    #[inline]
    pub fn shard_of<K: Key + ?Sized>(&self, key: &K) -> usize {
        let h = fmix64(key.canonical() ^ self.route_seed);
        // Widening multiply maps uniformly onto {0..S-1} without modulo bias.
        ((u128::from(h) * self.shards.len() as u128) >> 64) as usize
    }

    /// Runs `f` with shared read access to shard `i` (bulk queries against
    /// one shard without per-call lock traffic).
    pub fn with_shard_read<R>(&self, i: usize, f: impl FnOnce(&SK) -> R) -> R {
        f(&self.shards[i].read().expect("shard lock poisoned"))
    }
}

impl<SK: MultisetSketch> ShardedSketch<SK> {
    /// Adds `count` occurrences of `key` (locks the owning shard only).
    pub fn insert_by<K: Key + ?Sized>(&self, key: &K, count: u64) {
        metrics::on(|m| m.sharded_ops.inc());
        let shard = self.shard_of(key);
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        guard.insert_by(key, count);
        self.versions[shard].fetch_add(1, Ordering::Release);
        drop(guard);
    }

    /// Adds one occurrence of `key`.
    pub fn insert<K: Key + ?Sized>(&self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Adds a batch of keys, grouped per shard so each shard's lock is
    /// taken once per batch instead of once per key. Grouping also improves
    /// locality: consecutive inserts touch one shard's counters.
    pub fn insert_batch<K: Key>(&self, keys: &[K]) {
        metrics::on(|m| m.sharded_ops.add(keys.len() as u64));
        if self.shards.len() == 1 {
            let mut shard = self.shards[0].write().expect("shard lock poisoned");
            for key in keys {
                shard.insert(key);
            }
            drop(shard);
            self.versions[0].fetch_add(1, Ordering::Release);
            return;
        }
        let mut buckets: Vec<Vec<&K>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for key in keys {
            buckets[self.shard_of(key)].push(key);
        }
        for (i, (shard, bucket)) in self.shards.iter().zip(buckets).enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut shard = shard.write().expect("shard lock poisoned");
            for key in bucket {
                shard.insert(key);
            }
            drop(shard);
            self.versions[i].fetch_add(1, Ordering::Release);
        }
    }

    /// Removes `count` occurrences of `key` from its owning shard.
    pub fn remove_by<K: Key + ?Sized>(&self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.sharded_ops.inc());
        let shard = self.shard_of(key);
        let mut guard = self.shards[shard].write().expect("shard lock poisoned");
        let result = guard.remove_by(key, count);
        drop(guard);
        if result.is_ok() {
            self.versions[shard].fetch_add(1, Ordering::Release);
        }
        result
    }

    /// Removes one occurrence of `key`.
    pub fn remove<K: Key + ?Sized>(&self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Estimates the multiplicity of `key` (read-locks the owning shard).
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let shard = self.shard_of(key);
        self.shards[shard]
            .read()
            .expect("shard lock poisoned")
            .estimate(key)
    }

    /// Membership test: `f̂ > 0`.
    pub fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test against the owning shard.
    pub fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard]
            .read()
            .expect("shard lock poisoned")
            .passes_threshold(key, threshold)
    }

    /// Total multiplicity across all shards.
    ///
    /// Shards are read-locked one at a time, so the total is a consistent
    /// sum of per-shard pasts, not an instantaneous global cut — fine for
    /// monitoring, and exact once producers quiesce.
    pub fn total_count(&self) -> u64 {
        self.shard_totals().iter().sum()
    }

    /// Per-shard multiplicity totals (for load-balance inspection).
    pub fn shard_totals(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").total_count())
            .collect()
    }

    /// Total storage across shards.
    pub fn storage_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").storage_bits())
            .sum()
    }

    /// Unions all shards into one sketch by counter addition (§5) — the
    /// bridge back to the single-threaded world (serialization, further
    /// union/multiply, compressed re-encoding).
    ///
    /// This rebuilds the union from scratch on **every call** — `O(m ×
    /// num_shards)` clone-and-add work even when nothing changed since the
    /// last call. Callers that snapshot repeatedly between sparse writes
    /// (monitoring loops, repeated merges) should use
    /// [`ShardedSketch::snapshot_cached`], which reuses the previous union
    /// until some shard mutates.
    pub fn snapshot(&self) -> SK
    where
        SK: ShardMerge + Clone,
    {
        metrics::on(|m| m.snapshot_rebuilds.inc());
        self.union_shards()
    }

    /// Like [`ShardedSketch::snapshot`], but cached: the union is rebuilt
    /// only when a shard has mutated since the previous call, otherwise the
    /// cached `Arc` is cloned in O(1).
    ///
    /// Version stamps are bumped after each shard write completes and read
    /// here *before* the shard data, so a racing writer can at worst leave
    /// a fresh union stamped stale (one spurious rebuild later) — a cache
    /// hit never serves data older than its stamp.
    pub fn snapshot_cached(&self) -> Arc<SK>
    where
        SK: ShardMerge + Clone,
    {
        let stamps: Vec<u64> = self
            .versions
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .collect();
        let mut cache = self.snapshot_cache.lock().expect("snapshot cache poisoned");
        if let Some(c) = cache.as_ref() {
            if c.versions == stamps {
                metrics::on(|m| m.snapshot_cache_hits.inc());
                return Arc::clone(&c.merged);
            }
        }
        metrics::on(|m| m.snapshot_rebuilds.inc());
        let merged = Arc::new(self.union_shards());
        *cache = Some(SnapshotCache {
            versions: stamps,
            merged: Arc::clone(&merged),
        });
        merged
    }

    fn union_shards(&self) -> SK
    where
        SK: ShardMerge + Clone,
    {
        let mut merged = self.shards[0].read().expect("shard lock poisoned").clone();
        for shard in &self.shards[1..] {
            merged.absorb(&shard.read().expect("shard lock poisoned"));
        }
        merged
    }

    /// Publishes per-shard load gauges into the global telemetry registry:
    /// `sbf_shard_occupancy_ratio{shard="i"}`,
    /// `sbf_shard_total_count{shard="i"}` and `sbf_shard_ops{shard="i"}`
    /// (the shard's version stamp, i.e. mutation batches applied). No-op
    /// while telemetry is disabled.
    pub fn publish_metrics(&self)
    where
        SK: SketchReader,
    {
        if !sbf_telemetry::enabled() {
            return;
        }
        let reg = sbf_telemetry::global();
        for (i, shard) in self.shards.iter().enumerate() {
            let (occ, total) = {
                let guard = shard.read().expect("shard lock poisoned");
                (guard.occupancy(), guard.total_count())
            };
            reg.gauge(&format!("sbf_shard_occupancy_ratio{{shard=\"{i}\"}}"))
                .set(occ);
            reg.gauge(&format!("sbf_shard_total_count{{shard=\"{i}\"}}"))
                .set_u64(total);
            reg.gauge(&format!("sbf_shard_ops{{shard=\"{i}\"}}"))
                .set_u64(self.versions[i].load(Ordering::Relaxed));
        }
    }
}

impl<SK: MultisetSketch> SketchReader for ShardedSketch<SK> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        // Inherent resolution picks the instrumented routing methods.
        self.estimate(key)
    }

    fn total_count(&self) -> u64 {
        self.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.storage_bits()
    }

    fn occupancy(&self) -> f64 {
        let n = self.shards.len();
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").occupancy())
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let sketch = ShardedSketch::with_shards(8, |_| MsSbf::new(1024, 4, 1));
        for key in 0u64..1000 {
            let s = sketch.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, sketch.shard_of(&key), "routing must be deterministic");
        }
        // All shards should receive some keys.
        let mut hit = [false; 8];
        for key in 0u64..1000 {
            hit[sketch.shard_of(&key)] = true;
        }
        assert!(hit.iter().all(|&h| h), "1000 keys must touch all 8 shards");
    }

    #[test]
    fn sharded_ms_matches_unsharded_after_snapshot() {
        let sharded = ShardedSketch::with_shards(4, |_| MsSbf::new(2048, 5, 9));
        let mut flat = MsSbf::new(2048, 5, 9);
        for key in 0u64..400 {
            sharded.insert_by(&key, key % 5 + 1);
            flat.insert_by(&key, key % 5 + 1);
        }
        let merged = sharded.snapshot();
        for key in 0u64..400 {
            assert_eq!(merged.estimate(&key), flat.estimate(&key), "key {key}");
        }
        assert_eq!(merged.total_count(), flat.total_count());
    }

    #[test]
    fn estimates_route_to_owning_shard() {
        let sketch = ShardedSketch::with_shards(4, |_| MiSbf::new(4096, 5, 3));
        for key in 0u64..300 {
            sketch.insert_by(&key, key % 7 + 1);
        }
        for key in 0u64..300 {
            assert!(sketch.estimate(&key) > key % 7, "undercount for {key}");
        }
    }

    #[test]
    fn insert_batch_equals_singles() {
        let batched = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 5));
        let singles = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 5));
        let keys: Vec<u64> = (0..500).map(|i| i % 100).collect();
        batched.insert_batch(&keys);
        for key in &keys {
            singles.insert(key);
        }
        for key in 0u64..100 {
            assert_eq!(batched.estimate(&key), singles.estimate(&key));
        }
        assert_eq!(batched.total_count(), 500);
    }

    #[test]
    fn removals_stay_within_shard() {
        let sketch = ShardedSketch::with_shards(4, |_| RmSbf::new(3000, 5, 2));
        for key in 0u64..100 {
            sketch.insert_by(&key, 10);
        }
        for key in 0u64..100 {
            sketch.remove_by(&key, 4).unwrap();
        }
        for key in 0u64..100 {
            assert!(sketch.estimate(&key) >= 6, "false negative for {key}");
        }
        assert_eq!(sketch.total_count(), 600);
    }

    #[test]
    fn snapshot_of_rm_shards_keeps_upper_bound() {
        let sketch = ShardedSketch::with_shards(4, |_| RmSbf::new(6000, 5, 8));
        for key in 0u64..200 {
            sketch.insert_by(&key, key % 9 + 1);
        }
        let merged = sketch.snapshot();
        for key in 0u64..200 {
            assert!(merged.estimate(&key) > key % 9, "undercount for {key}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedSketch::<MsSbf>::from_shards(Vec::new());
    }

    #[test]
    fn snapshot_cached_reuses_union_until_a_shard_mutates() {
        let sketch = ShardedSketch::with_shards(4, |_| MsSbf::new(1024, 4, 6));
        for key in 0u64..200 {
            sketch.insert(&key);
        }
        let first = sketch.snapshot_cached();
        let second = sketch.snapshot_cached();
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged shards must hit the cache"
        );
        sketch.insert(&9999u64);
        let third = sketch.snapshot_cached();
        assert!(
            !Arc::ptr_eq(&second, &third),
            "a mutation must invalidate the cache"
        );
        // The cached union answers exactly like a fresh one.
        let fresh = sketch.snapshot();
        for key in 0u64..200 {
            assert_eq!(third.estimate(&key), fresh.estimate(&key), "key {key}");
        }
        assert_eq!(third.total_count(), 201);
    }

    #[test]
    fn snapshot_cached_sees_batch_and_remove_mutations() {
        let sketch = ShardedSketch::with_shards(2, |_| MsSbf::new(512, 4, 3));
        let keys: Vec<u64> = (0..50).collect();
        sketch.insert_batch(&keys);
        let a = sketch.snapshot_cached();
        assert_eq!(a.total_count(), 50);
        sketch.remove(&0u64).unwrap();
        let b = sketch.snapshot_cached();
        assert!(!Arc::ptr_eq(&a, &b), "remove must invalidate the cache");
        assert_eq!(b.total_count(), 49);
        // A refused remove leaves the cache valid.
        assert!(sketch.remove_by(&0u64, 1_000_000).is_err());
        let c = sketch.snapshot_cached();
        assert!(Arc::ptr_eq(&b, &c), "failed remove must not invalidate");
    }

    #[test]
    fn from_params_builds_identical_shards() {
        use crate::params::SbfParams;
        let params = SbfParams::for_capacity(1000).with_target_error(0.01);
        let sketch: ShardedSketch<MsSbf> = ShardedSketch::from_params(4, &params, 11);
        assert_eq!(sketch.num_shards(), 4);
        for key in 0u64..100 {
            sketch.insert_by(&key, 2);
        }
        // Identical shard parameters: snapshot unions without panicking and
        // stays one-sided.
        let merged = sketch.snapshot();
        for key in 0u64..100 {
            assert!(merged.estimate(&key) >= 2);
        }
    }

    #[test]
    fn reader_trait_is_object_usable_generically() {
        fn probe<S: SketchReader>(s: &S, key: u64) -> u64 {
            s.estimate(&key)
        }
        let sketch = ShardedSketch::with_shards(2, |_| MsSbf::new(512, 4, 1));
        sketch.insert_by(&5u64, 7);
        assert!(probe(&sketch, 5) >= 7);
        assert!(SketchReader::occupancy(&sketch) > 0.0);
    }
}
