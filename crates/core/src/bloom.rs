//! The classic Bloom filter (Bloom 1970) — the baseline the SBF extends,
//! and the marker filter used by the Recurring Minimum refinement (§3.3).

use sbf_bitvec::BitVec;
use sbf_hash::{HashFamily, IndexBuf, Key};

use crate::core_ops::pipelined_batch;
use crate::num;
use crate::DefaultFamily;

/// A plain bit-vector Bloom filter over `m` bits and `k` hash functions.
///
/// ```
/// use spectral_bloom::BloomFilter;
///
/// let mut bf = BloomFilter::new(1024, 4, 9);
/// bf.insert(&"hunter2");
/// assert!(bf.contains(&"hunter2"));     // never a false negative
/// assert!(!bf.contains(&"hunter3"));    // w.h.p.
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter<F: HashFamily = DefaultFamily> {
    family: F,
    bits: BitVec,
    inserted: u64,
}

impl BloomFilter<DefaultFamily> {
    /// A filter with `m` bits and `k` hash functions.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        Self::from_family(DefaultFamily::new(m, k, seed))
    }
}

impl<F: HashFamily> BloomFilter<F> {
    /// Builds over an explicit hash family.
    pub fn from_family(family: F) -> Self {
        let bits = BitVec::zeros(family.m());
        BloomFilter {
            family,
            bits,
            inserted: 0,
        }
    }

    /// Number of bits `m`.
    pub fn m(&self) -> usize {
        self.family.m()
    }

    /// Number of hash functions `k`.
    pub fn k(&self) -> usize {
        self.family.k()
    }

    /// Count of insert operations performed (not distinct keys).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Sets the `k` bits of `key`.
    pub fn insert<K: Key + ?Sized>(&mut self, key: &K) {
        for &i in self.family.indexes(key).as_slice() {
            self.bits.set(i, true);
        }
        self.inserted += 1;
    }

    /// Whether all `k` bits of `key` are set (no false negatives; false
    /// positives with probability `≈ (1 − e^{−kn/m})^k`).
    pub fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.family
            .indexes(key)
            .as_slice()
            .iter()
            .all(|&i| self.bits.get(i))
    }

    /// Requests the cache lines holding the bits behind `idx`.
    #[inline]
    fn prefetch_idx(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            sbf_hash::prefetch_slice(self.bits.words(), i / 64);
        }
    }

    /// Write-intent form of [`BloomFilter::prefetch_idx`], for the insert
    /// pipeline (bit sets are stores; see `CounterStore::prefetch_write`).
    #[inline]
    fn prefetch_idx_write(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            sbf_hash::prefetch_slice_write(self.bits.words(), i / 64);
        }
    }

    /// Sets the bits of every key, software-pipelined (item `i+D` is hashed
    /// and its bit words prefetched while item `i`'s bits are set).
    /// Equivalent to inserting each key in turn.
    pub fn insert_batch<K: Key>(&mut self, keys: &[K]) {
        pipelined_batch!(
            keys,
            hash = |key, slot| slot.fill(self.family.k(), |s| self.family.indexes_into(key, s)),
            prefetch = |idx| self.prefetch_idx_write(idx),
            apply = |_i, idx| {
                for &i in idx.as_slice() {
                    self.bits.set(i, true);
                }
                self.inserted += 1;
            }
        );
    }

    /// Membership-tests every key, software-pipelined; `out` is cleared
    /// first and `out[i]` answers `keys[i]`, exactly as
    /// [`BloomFilter::contains`] would.
    pub fn contains_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(keys.len());
        pipelined_batch!(
            keys,
            hash = |key, slot| slot.fill(self.family.k(), |s| self.family.indexes_into(key, s)),
            prefetch = |idx| self.prefetch_idx(idx),
            apply = |_i, idx| out.push(idx.as_slice().iter().all(|&i| self.bits.get(i)))
        );
    }

    /// Convenience form of [`BloomFilter::contains_batch_into`].
    pub fn contains_batch<K: Key>(&self, keys: &[K]) -> Vec<bool> {
        let mut out = Vec::new();
        self.contains_batch_into(keys, &mut out);
        out
    }

    /// Unites another filter into this one (bitwise OR) — the Bloom
    /// analogue of the SBF's §5 counter-addition union. Both filters must
    /// share parameters and hash functions.
    pub fn union_assign(&mut self, other: &BloomFilter<F>)
    where
        F: PartialEq,
    {
        assert!(
            self.family == other.family,
            "union requires identical parameters and hash functions"
        );
        for (i, bit) in other.bits.iter().enumerate() {
            if bit {
                self.bits.set(i, true);
            }
        }
        self.inserted += other.inserted;
    }

    /// Fraction of set bits (the fill that determines the error rate).
    pub fn fill_ratio(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        num::to_f64(self.bits.count_ones()) / num::to_f64(self.bits.len())
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(4096, 5, 1);
        for key in 0u64..400 {
            bf.insert(&key);
        }
        for key in 0u64..400 {
            assert!(bf.contains(&key), "false negative for {key}");
        }
    }

    #[test]
    fn false_positive_rate_tracks_theory() {
        // n = 400, m = 4096, k = 5 → γ ≈ 0.49, E_b ≈ (1 − e^{−0.49})⁵ ≈ 0.9%.
        let mut bf = BloomFilter::new(4096, 5, 2);
        for key in 0u64..400 {
            bf.insert(&key);
        }
        let trials = 20_000u64;
        let fp = (1_000_000..1_000_000 + trials)
            .filter(|k| bf.contains(k))
            .count();
        let rate = fp as f64 / trials as f64;
        let theory = crate::params::bloom_error_rate(400, 4096, 5);
        assert!(
            (rate - theory).abs() < 0.01,
            "measured {rate:.4} vs theory {theory:.4}"
        );
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(64, 3, 3);
        assert!(!bf.contains(&1u64));
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn string_keys() {
        let mut bf = BloomFilter::new(1024, 4, 4);
        bf.insert(&"password123");
        assert!(bf.contains(&"password123"));
        assert!(!bf.contains(&"password124"));
    }
}
