//! The Trapping Recurring Minimum algorithm (§3.3.1).
//!
//! RM's residual weakness is *late detection*: an item is recognized as
//! having a single minimum only after all of its counters were already
//! contaminated, so the value transferred to the secondary SBF carries the
//! contamination along. The trapping refinement attaches a one-bit **trap**
//! to every primary counter and a lookup table `L` mapping a sprung trap to
//! the item that set it:
//!
//! * When an item `Z` is moved to the secondary SBF, the trap on its single
//!   minimal counter `C_i` is armed and `L(i) = Z` recorded.
//! * When a later *recurring-minimum* item `X` steps on that trap, we learn
//!   that `Z`'s transferred value was inflated by `X`'s mass sitting in
//!   `C_i`: `Z`'s secondary counters are reduced by `X`'s current estimate
//!   `m_x` (clamped to keep the secondary non-negative), compensating the
//!   earlier error, and the trap is released.
//!
//! Deviation from the paper's pseudocode, documented here: the pseudocode
//! also moves `m_x` *out of* `Z`'s primary counters on transfer and back on
//! compensation. Doing so corrupts the counts of unrelated keys sharing
//! those counters (their minima drop below their true frequencies), so this
//! implementation keeps the primary SBF untouched — compensation acts on
//! the secondary only, bounded so it can never underflow. Accuracy-wise
//! this is strictly conservative: estimates stay one-sided except for the
//! same late-detection collisions plain RM has.
//!
//! The paper notes two rare uncovered cases, reproduced in the tests: the
//! *palindrome* stream where the stepping item never reappears after the
//! victim moves, and twin stepped-over counters faking a recurring minimum.

use std::collections::{HashMap, HashSet};

use sbf_hash::{HashFamily, Key};

use crate::core_ops::SbfCore;
use crate::metrics;
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::sketch::{MultisetSketch, SketchReader};
use crate::store::{CounterStore, PlainCounters, RemoveError};
use crate::DefaultFamily;

/// Recurring Minimum with trap-based compensation for late detection.
#[derive(Debug, Clone)]
pub struct TrappingRmSbf<F: HashFamily = DefaultFamily, S: CounterStore = PlainCounters> {
    primary: SbfCore<F, S>,
    secondary: SbfCore<F, S>,
    /// Trap bit per primary counter.
    traps: Vec<bool>,
    /// Armed-trap owners: counter index → canonical key (the table `L`).
    owners: HashMap<usize, u64>,
    /// Canonical keys currently mirrored in the secondary SBF.
    moved: HashSet<u64>,
    /// Compensations applied (exposed for experiments).
    compensations: u64,
}

impl TrappingRmSbf<DefaultFamily, PlainCounters> {
    /// Splits `m_total` counters ⅔ primary / ⅓ secondary, like
    /// [`crate::RmSbf::new`].
    pub fn new(m_total: usize, k: usize, seed: u64) -> Self {
        let m_secondary = (m_total / 3).max(1);
        let m_primary = (m_total - m_secondary).max(1);
        TrappingRmSbf {
            primary: SbfCore::from_family(DefaultFamily::new(m_primary, k, seed)),
            secondary: SbfCore::from_family(DefaultFamily::new(m_secondary, k, seed ^ 0x7a4b_11d3)),
            traps: vec![false; m_primary],
            owners: HashMap::new(),
            moved: HashSet::new(),
            compensations: 0,
        }
    }
}

impl FromParams for TrappingRmSbf<DefaultFamily, PlainCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: CounterStore> TrappingRmSbf<F, S> {
    /// Number of compensation events (trap firings) so far.
    pub fn compensations(&self) -> u64 {
        self.compensations
    }

    /// Number of currently armed traps.
    pub fn armed_traps(&self) -> usize {
        self.owners.len()
    }

    /// The primary SBF core.
    pub fn primary(&self) -> &SbfCore<F, S> {
        &self.primary
    }

    /// The secondary SBF core.
    pub fn secondary(&self) -> &SbfCore<F, S> {
        &self.secondary
    }

    /// Fires any traps the (recurring-minimum) item `x` steps on: reduces
    /// the owner's secondary counters by `x`'s estimate, clamped so the
    /// secondary never underflows.
    fn fire_traps<K: Key + ?Sized>(&mut self, key: &K, mx: u64) {
        let canon = key.canonical();
        let idxs = self.primary.family().indexes(key);
        for &i in idxs.as_slice() {
            if !self.traps[i] {
                continue;
            }
            let Some(&owner) = self.owners.get(&i) else {
                continue;
            };
            if owner == canon {
                continue;
            }
            // Safe compensation bound: per counter, value divided by how
            // many of the owner's hash functions land on it (a decrement
            // hits a duplicated counter once per occurrence).
            let okc = self.secondary.key_counters(&owner);
            let oidx = okc.indexes;
            let cap = oidx
                .as_slice()
                .iter()
                .enumerate()
                .map(|(slot, &i)| {
                    let mult = num::to_u64(oidx.as_slice().iter().filter(|&&j| j == i).count());
                    okc.values()[slot] / mult
                })
                .min()
                .unwrap_or(0);
            let back = mx.min(cap);
            if back > 0 {
                self.secondary
                    .decrement_all(&owner, back)
                    .unwrap_or_else(|_| {
                        unreachable!("bounded by the owner's per-counter capacity")
                    });
                self.compensations += 1;
            }
            self.traps[i] = false;
            self.owners.remove(&i);
        }
    }
}

impl<F: HashFamily, S: CounterStore> SketchReader for TrappingRmSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let kc = self.primary.key_counters(key);
        let est = if self.moved.contains(&key.canonical()) {
            let s = self.secondary.key_counters(key).min();
            // The secondary value is usually tighter (compensated); the
            // primary min stays a sound upper bound.
            if s > 0 {
                s.min(kc.min())
            } else {
                kc.min()
            }
        } else if kc.has_recurring_min() {
            kc.min()
        } else {
            let s = self.secondary.key_counters(key).min();
            if s > 0 {
                s.min(kc.min())
            } else {
                kc.min()
            }
        };
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    fn total_count(&self) -> u64 {
        self.primary.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.primary.store().storage_bits()
            + self.secondary.store().storage_bits()
            + self.traps.len()
            // The lookup table L: one (index, key) pair per armed trap.
            + self.owners.len() * 128
    }

    fn occupancy(&self) -> f64 {
        self.primary.occupancy()
    }
}

impl<F: HashFamily, S: CounterStore> MultisetSketch for TrappingRmSbf<F, S> {
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        metrics::on(|m| {
            m.inserts.inc();
            m.rm_inserts.inc();
        });
        self.primary.increment_all(key, count);
        let canon = key.canonical();
        if self.moved.contains(&canon) {
            metrics::on(|m| m.rm_secondary_spills.inc());
            self.secondary.increment_all(key, count);
            return;
        }
        let kc = self.primary.key_counters(key);
        if kc.has_recurring_min() {
            let mx = kc.min();
            self.fire_traps(key, mx);
            return;
        }
        // Single minimum: mirror into the secondary with the current
        // estimate, arm the trap on the minimal counter.
        metrics::on(|m| m.rm_secondary_spills.inc());
        let mx = kc.min();
        let slot = kc
            .single_min_slot()
            .unwrap_or_else(|| unreachable!("single minimum by branch"));
        let min_counter = kc.indexes[slot];
        self.secondary.increment_all(key, mx);
        self.traps[min_counter] = true;
        self.owners.insert(min_counter, canon);
        self.moved.insert(canon);
    }

    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.removes.inc());
        self.primary.decrement_all(key, count)?;
        if self.moved.contains(&key.canonical()) {
            let s_min = self.secondary.key_counters(key).min();
            if s_min >= count {
                self.secondary
                    .decrement_all(key, count)
                    .unwrap_or_else(|_| unreachable!("secondary min pre-checked"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts_are_preserved() {
        let mut t = TrappingRmSbf::new(3000, 5, 1);
        for key in 0u64..300 {
            t.insert_by(&key, key % 13 + 1);
        }
        for key in 0u64..300 {
            let est = t.estimate(&key);
            assert!(est > key % 13, "false negative for {key}: {est}");
        }
    }

    #[test]
    fn deletion_roundtrip() {
        let mut t = TrappingRmSbf::new(1200, 5, 2);
        for key in 0u64..100 {
            t.insert_by(&key, 8);
        }
        for key in 0u64..100 {
            t.remove_by(&key, 3).unwrap();
        }
        for key in 0u64..100 {
            assert!(
                t.estimate(&key) >= 5,
                "false negative after delete for {key}"
            );
        }
    }

    #[test]
    fn compensation_fires_under_load() {
        // Densely loaded filter: single minima and re-appearing steppers are
        // common, so traps must actually fire.
        let mut t = TrappingRmSbf::new(400, 5, 3);
        for round in 0..20u64 {
            for key in 0u64..200 {
                t.insert_by(&key, 1 + round % 3);
            }
        }
        assert!(
            t.compensations() > 0,
            "expected trap compensations under heavy load"
        );
    }

    #[test]
    fn compensation_tightens_overestimates() {
        // Same heavy stream through plain RM and trapping RM: the trapping
        // variant's total overestimate must not exceed plain RM's.
        use crate::rm::RmSbf;
        let mut rm = RmSbf::new(600, 5, 7);
        let mut tr = TrappingRmSbf::new(600, 5, 7);
        let mut truth = std::collections::HashMap::new();
        for round in 0..10u64 {
            for key in 0u64..300 {
                let c = 1 + (key + round) % 4;
                rm.insert_by(&key, c);
                tr.insert_by(&key, c);
                *truth.entry(key).or_insert(0u64) += c;
            }
        }
        let rm_err: u64 = truth
            .iter()
            .map(|(k, &f)| rm.estimate(k).saturating_sub(f))
            .sum();
        let tr_err: u64 = truth
            .iter()
            .map(|(k, &f)| tr.estimate(k).saturating_sub(f))
            .sum();
        // Compensation is a heuristic: it wins on the late-detection cases
        // it targets but can misfire (firing with mass that never
        // contaminated the victim), so allow a small tolerance instead of
        // strict dominance.
        assert!(
            tr_err as f64 <= rm_err as f64 * 1.15,
            "trapping RM overestimate {tr_err} far exceeds RM's {rm_err}"
        );
    }

    #[test]
    fn palindrome_stream_is_the_documented_weakness() {
        // §3.3.1: v₁ v₂ … v_{n/2} v_{n/2} … v₂ v₁ — the adversarial order
        // the paper singles out: victims move to the secondary late, and
        // their steppers either never fire the traps or fire them with mass
        // that was never part of the contamination, so small residual
        // errors (in both directions) persist. The structure must stay
        // *sound*: counts conserved, estimates never zero for present keys,
        // and the damage confined to a small fraction of keys.
        let n = 400u64;
        let mut t = TrappingRmSbf::new(900, 5, 4);
        let forward: Vec<u64> = (0..n / 2).collect();
        let backward: Vec<u64> = (0..n / 2).rev().collect();
        for &v in forward.iter().chain(&backward) {
            t.insert(&v);
        }
        let mut below_truth = 0usize;
        for v in 0..n / 2 {
            let est = t.estimate(&v);
            assert!(est >= 1, "present key {v} reported absent");
            if est < 2 {
                below_truth += 1;
            }
        }
        assert!(
            below_truth <= (n / 2) as usize / 10,
            "{below_truth} of {} keys under-estimated",
            n / 2
        );
        assert_eq!(t.total_count(), n);
    }

    #[test]
    fn total_count_is_conserved_through_moves() {
        let mut t = TrappingRmSbf::new(300, 5, 5);
        for key in 0u64..150 {
            t.insert_by(&key, 4);
        }
        assert_eq!(t.total_count(), 600);
        for key in 0u64..150 {
            t.remove_by(&key, 2).unwrap();
        }
        assert_eq!(t.total_count(), 300);
    }
}
