//! Lock-free counter storage for concurrent ingest.
//!
//! The paper's streaming scenario (§1.1.4) has data arriving "faster than a
//! single consumer comfortably handles". For the Minimum Selection family
//! that pressure needs no locking at all: an MS insert only ever *adds* to
//! counters, and the estimate is a minimum over monotonically increasing
//! values, so concurrent increments keep the one-sided `f̂_x ≥ f_x`
//! contract (§2.2, Claim 1) — a reader can at worst observe a *partially
//! applied* insert, which under-applies someone else's increments, never
//! the key's own completed ones.
//!
//! [`ConcurrentCounterStore`] is the `&self` analogue of
//! [`crate::CounterStore`]; [`AtomicCounters`] realizes it as one
//! `AtomicU64` per counter. [`AtomicMsSbf`] builds the MS algorithm on top
//! with shared-reference insert/estimate/threshold, so any number of
//! producer and query threads proceed without coordination. Heuristics
//! that need read-modify-write atomicity across several counters (Minimal
//! Increase, Recurring Minimum) cannot run lock-free; they go through
//! [`crate::ShardedSketch`]'s per-shard locks instead.

use crate::sync::atomic::{AtomicU64, Ordering};

use sbf_hash::{BlockedFamily, HashFamily, IndexBuf, Key};

use crate::core_ops::{lane_pipeline, lanes_worthwhile, pipelined_batch, LaneOp};
use crate::metrics;
use crate::ms::MsSbf;
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::sketch::SketchReader;
use crate::store::{CounterStore, PlainCounters};
use crate::DefaultFamily;

/// A fixed-length counter vector whose operations take `&self`.
///
/// The contract mirrors [`crate::CounterStore`] with concurrency folded in:
/// increments are atomic per counter and saturate at `u64::MAX` (see the
/// overflow discussion on [`crate::CounterStore::increment`]); the
/// saturating decrement never drives a counter below zero even under
/// contention. No ordering between *different* counters is promised —
/// exactly the freedom that makes the MS one-sided bound cheap to keep.
pub trait ConcurrentCounterStore: Send + Sync {
    /// Creates a store of `m` zero counters.
    fn with_len(m: usize) -> Self;

    /// Number of counters.
    fn len(&self) -> usize;

    /// Whether the store has no counters.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads counter `i`.
    fn load(&self, i: usize) -> u64;

    /// Atomically adds `by` to counter `i`, saturating at `u64::MAX`.
    fn fetch_add(&self, i: usize, by: u64);

    /// Atomically subtracts `by` from counter `i`, clamping at zero.
    fn fetch_sub_saturating(&self, i: usize, by: u64);

    /// Atomically raises counter `i` to at least `floor`.
    fn fetch_max(&self, i: usize, floor: u64);

    /// Hints that counter `i` will be accessed shortly (see
    /// [`crate::CounterStore::prefetch`]). Advisory; default no-op.
    #[inline]
    fn prefetch(&self, _i: usize) {}

    /// Write-intent prefetch hint (see `CounterStore::prefetch_write`):
    /// the line is about to be the target of an atomic RMW, which needs
    /// exclusive ownership. Advisory; defaults to a no-op.
    fn prefetch_write(&self, _i: usize) {}

    /// Storage footprint in bits.
    fn storage_bits(&self) -> usize;
}

/// One `AtomicU64` per counter — the lock-free backend.
///
/// All operations use relaxed ordering: counters are independent statistics
/// and every consumer tolerates reordering between counters (the estimate
/// is a min over values that only grow under the MS workload).
#[derive(Debug, Default)]
pub struct AtomicCounters {
    counters: Vec<AtomicU64>,
}

impl AtomicCounters {
    /// Copies the current counter values into a plain store (the bridge to
    /// the single-threaded API: union, serialization, compression).
    pub fn snapshot(&self) -> PlainCounters {
        let mut plain = PlainCounters::with_len(self.counters.len());
        for (i, c) in self.counters.iter().enumerate() {
            plain.set(i, c.load(Ordering::Relaxed));
        }
        plain
    }
}

impl ConcurrentCounterStore for AtomicCounters {
    fn with_len(m: usize) -> Self {
        AtomicCounters {
            counters: (0..m).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn load(&self, i: usize) -> u64 {
        self.counters[i].load(Ordering::Relaxed)
    }

    #[inline]
    fn fetch_add(&self, i: usize, by: u64) {
        // Saturating add via CAS: `AtomicU64::fetch_add` would wrap, and a
        // wrapped counter would (transiently) report a tiny value — a false
        // negative, which the one-sided contract forbids.
        let cell = &self.counters[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let (next, overflowed) = cur.overflowing_add(by);
            let next = if overflowed { u64::MAX } else { next };
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    if overflowed {
                        metrics::on(|m| m.saturations.inc());
                    }
                    return;
                }
                Err(seen) => {
                    metrics::on(|m| m.cas_retries.inc());
                    cur = seen;
                }
            }
        }
    }

    #[inline]
    fn fetch_sub_saturating(&self, i: usize, by: u64) {
        let cell = &self.counters[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(by);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => {
                    metrics::on(|m| m.cas_retries.inc());
                    cur = seen;
                }
            }
        }
    }

    #[inline]
    fn fetch_max(&self, i: usize, floor: u64) {
        self.counters[i].fetch_max(floor, Ordering::Relaxed);
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        sbf_hash::prefetch_slice(&self.counters, i);
    }

    #[inline]
    fn prefetch_write(&self, i: usize) {
        sbf_hash::prefetch_slice_write(&self.counters, i);
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 64
    }
}

/// Minimum Selection over atomic counters: fully lock-free ingest and
/// query.
///
/// Every method takes `&self`, so the filter can be shared across threads
/// behind a plain `Arc` — no `RwLock`, no shards. This is the
/// fastest-scaling ingest path in the crate; its price is that it only
/// speaks MS (Claim 1's baseline accuracy) and that deletions are limited
/// to the saturating form. See `DESIGN.md` ("Concurrency model") for why
/// MI/RM need per-shard locks instead.
///
/// ```
/// use std::sync::Arc;
/// use spectral_bloom::AtomicMsSbf;
///
/// let sbf = Arc::new(AtomicMsSbf::new(1 << 14, 5, 42));
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let h = Arc::clone(&sbf);
///         s.spawn(move || h.insert_by(&t, 10));
///     }
/// });
/// assert!(sbf.estimate(&2u64) >= 10); // one-sided, even mid-flight
/// assert_eq!(sbf.total_count(), 40);
/// ```
#[derive(Debug)]
pub struct AtomicMsSbf<F: HashFamily = DefaultFamily, S: ConcurrentCounterStore = AtomicCounters> {
    family: F,
    store: S,
    total_count: AtomicU64,
}

impl AtomicMsSbf<DefaultFamily, AtomicCounters> {
    /// An atomic MS filter with `m` counters, `k` hash functions. Prefer
    /// [`FromParams::from_params`] when sizing from a capacity/error target.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        Self::from_family(DefaultFamily::new(m, k, seed))
    }
}

impl FromParams for AtomicMsSbf<DefaultFamily, AtomicCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: ConcurrentCounterStore> AtomicMsSbf<F, S> {
    /// Builds over an explicit hash family.
    pub fn from_family(family: F) -> Self {
        let store = S::with_len(family.m());
        AtomicMsSbf {
            family,
            store,
            total_count: AtomicU64::new(0),
        }
    }

    /// Number of counters `m`.
    pub fn m(&self) -> usize {
        self.family.m()
    }

    /// Number of hash functions `k`.
    pub fn k(&self) -> usize {
        self.family.k()
    }

    /// The hash family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The concurrent store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The distinct counter indices of `key`, sorted — the same §3.1
    /// canonicalisation [`crate::SbfCore::key_indexes`] applies, so the
    /// atomic filter and [`MsSbf`] built from equal parameters stay
    /// counter-for-counter identical under identical operations.
    #[inline]
    fn key_indexes<K: Key + ?Sized>(&self, key: &K) -> IndexBuf {
        let mut idx = self.family.indexes(key);
        idx.sort_dedup();
        idx
    }

    /// [`AtomicMsSbf::key_indexes`] written into a caller-owned buffer (the
    /// pipelines' copy-free ring refill; see `IndexBuf::fill`).
    #[inline]
    fn key_indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut IndexBuf) {
        out.fill(self.family.k(), |slots| {
            self.family.indexes_into(key, slots)
        });
        out.sort_dedup();
    }

    #[inline]
    fn prefetch_idx(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            self.store.prefetch(i);
        }
    }

    #[inline]
    fn prefetch_idx_write(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            self.store.prefetch_write(i);
        }
    }

    /// Adds `count` occurrences of `key` (lock-free).
    pub fn insert_by<K: Key + ?Sized>(&self, key: &K, count: u64) {
        metrics::on(|m| m.inserts.inc());
        for &i in self.key_indexes(key).as_slice() {
            self.store.fetch_add(i, count);
        }
        self.total_count.fetch_add(count, Ordering::Relaxed);
    }

    /// Adds one occurrence of `key` (lock-free).
    pub fn insert<K: Key + ?Sized>(&self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Adds a batch of keys. The final state equals inserting each key in
    /// turn; the running total is published once at the end of the batch,
    /// so a concurrent [`AtomicMsSbf::total_count`] read may lag mid-batch
    /// (counter reads were always racy in that window anyway).
    ///
    /// Pipelined with **write-intent** prefetch: `fetch_add` needs the
    /// line in exclusive state, which a read-intent hint does not provide
    /// (and can actively delay by fetching the line shared first), but a
    /// `PREFETCHW`-class hint requests ownership up front — exactly what a
    /// `lock xadd` wants. The batch also hashes once per key, hoists the
    /// metrics guard, and publishes one total-count RMW per batch instead
    /// of per item.
    pub fn insert_batch<K: Key>(&self, keys: &[K]) {
        metrics::on(|m| m.inserts.add(num::to_u64(keys.len())));
        pipelined_batch!(
            keys,
            hash = |key, slot| self.key_indexes_into(key, slot),
            prefetch = |idx| self.prefetch_idx_write(idx),
            apply = |_i, idx| {
                for &i in idx.as_slice() {
                    self.store.fetch_add(i, 1);
                }
            }
        );
        self.total_count
            .fetch_add(num::to_u64(keys.len()), Ordering::Relaxed);
    }

    /// Removes `count` occurrences of `key`, clamping counters at zero.
    ///
    /// The precise (atomic-across-counters) removal of [`crate::MsSbf`]
    /// needs a consistent multi-counter read-modify-write and therefore a
    /// lock; under the lock-free contract only the saturating form is
    /// available. Removing more than was inserted can introduce false
    /// negatives — the same §3.2 caveat as Minimal Increase deletions.
    pub fn remove_saturating<K: Key + ?Sized>(&self, key: &K, count: u64) {
        metrics::on(|m| m.removes.inc());
        for &i in self.key_indexes(key).as_slice() {
            self.store.fetch_sub_saturating(i, count);
        }
        // Total stays monotone-consistent: clamp like the counters do.
        let mut cur = self.total_count.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(count);
            match self.total_count.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => {
                    metrics::on(|m| m.cas_retries.inc());
                    cur = seen;
                }
            }
        }
    }

    /// Estimates the multiplicity of `key` (minimum over its counters).
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let est = self
            .key_indexes(key)
            .as_slice()
            .iter()
            .map(|&i| self.store.load(i))
            .min()
            .unwrap_or(0);
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    /// Estimates every key, software-pipelined; `out` is cleared first and
    /// `out[i]` answers `keys[i]`, exactly as [`AtomicMsSbf::estimate`]
    /// would at the same moment.
    ///
    /// This backend cannot take the SIMD gathered-min path: a vector
    /// gather over `AtomicU64` memory would be a non-atomic access racing
    /// concurrent writers (TSan would rightly flag it). The counter reads
    /// stay per-element atomic loads; the lane pass still pays off here
    /// because dedup is skipped (the minimum over a multiset equals the
    /// minimum over its distinct values), which the per-key scalar hash
    /// path cannot do without a dedicated no-dedup pipeline.
    pub fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        if lanes_worthwhile(keys.len()) {
            lane_pipeline(
                &self.family,
                keys.len(),
                |i| keys[i].canonical(),
                false,
                |op| match op {
                    LaneOp::Prefetch(idx) => self.prefetch_idx(idx),
                    LaneOp::Apply(idx) => out.push(
                        idx.as_slice()
                            .iter()
                            .map(|&i| self.store.load(i))
                            .min()
                            .unwrap_or(0),
                    ),
                },
            );
        } else {
            pipelined_batch!(
                keys,
                hash = |key, slot| self.key_indexes_into(key, slot),
                prefetch = |idx| self.prefetch_idx(idx),
                apply = |_i, idx| out.push(
                    idx.as_slice()
                        .iter()
                        .map(|&i| self.store.load(i))
                        .min()
                        .unwrap_or(0)
                )
            );
        }
        metrics::on(|m| {
            m.estimates.add(num::to_u64(keys.len()));
            for &est in out.iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    /// Membership test: `f̂ > 0`.
    pub fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test: `f̂ ≥ threshold` (lock-free; false
    /// positives only while the workload is insert-only).
    pub fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.estimate(key) >= threshold
    }

    /// Total multiplicity represented.
    pub fn total_count(&self) -> u64 {
        self.total_count.load(Ordering::Relaxed)
    }

    /// Storage footprint in bits.
    pub fn storage_bits(&self) -> usize {
        self.store.storage_bits()
    }

    /// Fraction of non-zero counters (a racy but monotone-safe read: each
    /// counter only grows under the insert-only workload).
    pub fn occupancy(&self) -> f64 {
        let m = self.store.len();
        if m == 0 {
            return 0.0;
        }
        let nonzero = (0..m).filter(|&i| self.store.load(i) > 0).count();
        num::to_f64(nonzero) / num::to_f64(m)
    }
}

impl<F: HashFamily, S: ConcurrentCounterStore> SketchReader for AtomicMsSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        // Inherent method resolution picks the instrumented `&self` version.
        self.estimate(key)
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        // Route to the pipelined inherent version.
        AtomicMsSbf::estimate_batch_into(self, keys, out);
    }

    fn total_count(&self) -> u64 {
        self.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.storage_bits()
    }

    fn occupancy(&self) -> f64 {
        self.occupancy()
    }
}

/// Lock-free Minimum Selection over the cache-blocked layout: the same
/// two-level hashing as [`crate::BlockedMsSbf`] (first-level hash picks a
/// block, the `k` functions hash within it), so one key's counters share
/// 1–2 cache lines — one prefetch or miss per concurrent insert instead of
/// `k` scattered ones. Same accuracy trade-off as the locked variant
/// (negligible for blocks ≳ 64 counters).
pub type BlockedAtomicMsSbf = AtomicMsSbf<BlockedFamily<DefaultFamily>, AtomicCounters>;

impl BlockedAtomicMsSbf {
    /// A blocked atomic MS filter of `num_blocks × block_size` counters
    /// with `k` hash functions per block (see
    /// [`crate::BlockedMsSbf::new_blocked`] for block-size guidance).
    pub fn new_blocked(block_size: usize, num_blocks: usize, k: usize, seed: u64) -> Self {
        Self::from_family(BlockedFamily::new(
            DefaultFamily::new(block_size, k, seed),
            num_blocks,
            seed,
        ))
    }
}

impl<F: HashFamily> AtomicMsSbf<F, AtomicCounters> {
    /// Freezes the current state into a single-threaded [`MsSbf`] (for
    /// union, serialization, or switching to a compressed store).
    ///
    /// Taken while producers are still running, the snapshot is some valid
    /// *past* state per counter — still one-sided for every key whose
    /// inserts completed before the call.
    pub fn snapshot(&self) -> MsSbf<F, PlainCounters> {
        let mut ms = MsSbf::with_parts(self.family.clone(), self.store.snapshot());
        ms.core_mut().add_to_total(self.total_count());
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::MultisetSketch;
    use crate::sync::Arc;

    #[test]
    fn store_contract() {
        let s = AtomicCounters::with_len(64);
        assert_eq!(s.len(), 64);
        s.fetch_add(3, 10);
        assert_eq!(s.load(3), 10);
        s.fetch_sub_saturating(3, 4);
        assert_eq!(s.load(3), 6);
        s.fetch_sub_saturating(3, 100);
        assert_eq!(s.load(3), 0, "decrement clamps at zero");
        s.fetch_max(5, 9);
        s.fetch_max(5, 2);
        assert_eq!(s.load(5), 9, "fetch_max only raises");
        assert_eq!(s.storage_bits(), 64 * 64);
    }

    #[test]
    fn fetch_add_saturates_instead_of_wrapping() {
        let s = AtomicCounters::with_len(4);
        s.fetch_add(0, u64::MAX - 1);
        s.fetch_add(0, 5);
        assert_eq!(s.load(0), u64::MAX);
    }

    #[test]
    fn matches_locked_ms_single_threaded() {
        let atomic = AtomicMsSbf::new(4096, 5, 7);
        let mut locked = MsSbf::new(4096, 5, 7);
        for key in 0u64..300 {
            atomic.insert_by(&key, key % 9 + 1);
            locked.insert_by(&key, key % 9 + 1);
        }
        for key in 0u64..300 {
            assert_eq!(atomic.estimate(&key), locked.estimate(&key), "key {key}");
        }
        assert_eq!(atomic.total_count(), locked.total_count());
    }

    #[test]
    fn concurrent_inserts_never_undercount() {
        let sbf = Arc::new(AtomicMsSbf::new(1 << 14, 5, 1));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&sbf);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        h.insert(&(t * 1_000_000 + i));
                    }
                });
            }
        });
        assert_eq!(sbf.total_count(), 8 * 500);
        for t in 0..8u64 {
            for i in 0..500u64 {
                assert!(sbf.estimate(&(t * 1_000_000 + i)) >= 1);
            }
        }
    }

    #[test]
    fn blocked_atomic_matches_blocked_locked() {
        // Same (block_size, num_blocks, k, seed) ⇒ identical index streams,
        // so single-threaded the lock-free blocked backend must agree with
        // the sequential one, batch and single paths alike.
        let atomic = BlockedAtomicMsSbf::new_blocked(128, 32, 5, 17);
        let mut locked = crate::ms::BlockedMsSbf::new_blocked(128, 32, 5, 17);
        let keys: Vec<u64> = (0..400).map(|i| i * 13 + 1).collect();
        atomic.insert_batch(&keys);
        locked.insert_batch(&keys);
        let mut got = Vec::new();
        atomic.estimate_batch_into(&keys, &mut got);
        for (key, est) in keys.iter().zip(&got) {
            assert_eq!(*est, locked.estimate(key), "key {key}");
            assert_eq!(atomic.estimate(key), *est, "batch vs single, key {key}");
        }
        assert_eq!(atomic.total_count(), locked.total_count());
    }

    #[test]
    fn snapshot_roundtrips_to_locked_ms() {
        let atomic = AtomicMsSbf::new(2048, 4, 3);
        for key in 0u64..100 {
            atomic.insert_by(&key, 2);
        }
        let ms = atomic.snapshot();
        for key in 0u64..100 {
            assert_eq!(ms.estimate(&key), atomic.estimate(&key));
        }
        assert_eq!(ms.total_count(), 200);
    }
}
