//! Checked-intent numeric conversions.
//!
//! `crates/core` warns on raw `as` casts (`clippy::as_conversions`, part of
//! the ISSUE 4 lint wall): a silent `as` hides whether a conversion is a
//! lossless widening, a deliberate truncation, or an estimator-math
//! precision trade. Every conversion core needs is named here instead, with
//! its loss contract documented once; a new raw `as` anywhere else in the
//! crate still warns.
//!
//! The checked narrowings ([`try_u32`], [`try_usize`]) are public: other
//! workspace crates that face attacker-sized values (the `sbf-server` frame
//! encoder, the WAL record codec) route through them instead of growing
//! their own ad-hoc `as` casts.

#![allow(clippy::as_conversions)]

/// `usize → u32`, checked: `None` when the value exceeds `u32::MAX`.
///
/// For length/count fields in wire and log frames, where a silent `as`
/// truncation would declare a frame shorter than its payload — callers map
/// `None` to their protocol's `Oversized` error instead of wrapping.
#[inline]
pub fn try_u32(x: usize) -> Option<u32> {
    u32::try_from(x).ok()
}

/// `u64 → usize`, checked: `None` when the value does not fit the target's
/// address width (only possible on 32-bit targets).
///
/// For untrusted 64-bit size fields that are about to become slice bounds
/// or allocation sizes.
#[inline]
pub fn try_usize(x: u64) -> Option<usize> {
    usize::try_from(x).ok()
}

/// Source types [`to_f64`] accepts.
pub(crate) trait F64Src {
    fn cast(self) -> f64;
}

impl F64Src for u64 {
    fn cast(self) -> f64 {
        self as f64
    }
}
impl F64Src for usize {
    fn cast(self) -> f64 {
        self as f64
    }
}
impl F64Src for u32 {
    fn cast(self) -> f64 {
        f64::from(self)
    }
}

/// Integer → `f64` for estimator math: exact below 2⁵³, rounds to nearest
/// above — the paper's estimators are themselves approximate at that
/// magnitude, so the rounding is immaterial.
#[inline(always)]
pub(crate) fn to_f64<T: F64Src>(x: T) -> f64 {
    x.cast()
}

/// Source types [`to_usize`] accepts losslessly.
pub(crate) trait UsizeSrc {
    fn cast(self) -> usize;
}

impl UsizeSrc for u32 {
    // All supported targets have `usize ≥ 32` bits; used for the `u32`
    // pick/index buffers on the batched hot path.
    fn cast(self) -> usize {
        self as usize
    }
}
impl UsizeSrc for u16 {
    fn cast(self) -> usize {
        usize::from(self)
    }
}
impl UsizeSrc for u8 {
    fn cast(self) -> usize {
        usize::from(self)
    }
}
impl UsizeSrc for u64 {
    // Counter indexes and counts are bounded by `m : usize` on every
    // construction path; debug builds assert the bound on 32-bit targets.
    fn cast(self) -> usize {
        debug_assert!(self <= usize::MAX as u64, "value {self} exceeds usize");
        self as usize
    }
}

/// Integer → `usize`: lossless widening (or caller-bounded narrowing from
/// `u64`, debug-asserted).
#[inline(always)]
pub(crate) fn to_usize<T: UsizeSrc>(x: T) -> usize {
    x.cast()
}

/// `usize → u64`: lossless on every supported target (`usize` is at most
/// 64 bits).
#[inline(always)]
pub(crate) fn to_u64(x: usize) -> u64 {
    x as u64
}

/// `usize → u128`: lossless widening (multiply-shift shard mixing).
#[inline(always)]
pub(crate) fn to_u128(x: usize) -> u128 {
    x as u128
}

/// `f64 → usize` for sizing math (`m = ceil(n · bits)` and friends):
/// saturating, NaN → 0.
#[inline(always)]
pub(crate) fn sat_usize(x: f64) -> usize {
    x as usize
}

/// `usize → u32`, caller-bounded: the value indexes a buffer whose length
/// the caller already capped below `u32::MAX` (batch sizes, shard counts).
/// Debug builds assert the bound.
#[inline(always)]
pub(crate) fn idx_u32(x: usize) -> u32 {
    debug_assert!(x <= u32::MAX as usize, "index {x} exceeds u32 range");
    x as u32
}

/// `usize → i32` for `f64::powi` exponents (`k` is a small hash-family
/// arity). Debug builds assert the bound.
#[inline(always)]
pub(crate) fn powi_exp(x: usize) -> i32 {
    debug_assert!(x <= i32::MAX as usize, "exponent {x} exceeds i32 range");
    x as i32
}

/// Upper-64-bits multiply-shift: maps hash `h` uniformly onto `0..n`
/// (Lemire's fast range reduction). The shift keeps the product `< n`, so
/// the narrowing is lossless.
#[inline(always)]
pub(crate) fn mul_shift_range(h: u64, n: usize) -> usize {
    let wide = (u128::from(h) * to_u128(n)) >> 64;
    debug_assert!(wide <= usize::MAX as u128, "range product exceeds usize");
    wide as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_roundtrips() {
        assert_eq!(to_u64(usize::MAX), usize::MAX as u64);
        assert_eq!(to_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(idx_u32(7), 7);
        assert_eq!(powi_exp(5), 5);
    }

    #[test]
    fn float_conversions_saturate() {
        assert_eq!(sat_usize(-1.0), 0);
        assert_eq!(sat_usize(f64::NAN), 0);
        assert_eq!(sat_usize(2.9), 2);
        assert_eq!(to_f64(1u64 << 52), (1u64 << 52) as f64);
    }

    #[test]
    fn mul_shift_range_stays_in_range() {
        for n in [1usize, 2, 3, 7, 64] {
            for h in [0u64, 1, u64::MAX / 2, u64::MAX] {
                assert!(mul_shift_range(h, n) < n);
            }
        }
    }
}
