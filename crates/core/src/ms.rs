//! Minimum Selection — the basic SBF of §2.2.

use sbf_hash::{HashFamily, Key};

use crate::core_ops::SbfCore;
use crate::metrics;
use crate::params::{FromParams, SbfParams};
use crate::sketch::{MultisetSketch, SketchReader};
use crate::store::{CounterStore, PlainCounters, RemoveError};
use crate::DefaultFamily;

/// The basic Spectral Bloom Filter with the Minimum Selection estimator:
/// insert increments all `k` counters, the estimate is their minimum.
///
/// Claim 1 of the paper: `f_x ≤ m_x` always, and `f_x ≠ m_x` only with the
/// Bloom-error probability `E_b ≈ (1 − e^{−kn/m})^k`. Supports deletions
/// and updates by decrementing, and sliding windows by deleting out-of-date
/// items.
#[derive(Debug, Clone)]
pub struct MsSbf<F: HashFamily = DefaultFamily, S: CounterStore = PlainCounters> {
    core: SbfCore<F, S>,
}

impl MsSbf<DefaultFamily, PlainCounters> {
    /// An MS filter with `m` counters, `k` hash functions and the default
    /// hash family, plain storage. Prefer [`FromParams::from_params`] when
    /// sizing from a capacity/error target.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        Self::from_family(DefaultFamily::new(m, k, seed))
    }
}

impl FromParams for MsSbf<DefaultFamily, PlainCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: CounterStore> MsSbf<F, S> {
    /// Builds over an explicit hash family, with a fresh store.
    pub fn from_family(family: F) -> Self {
        MsSbf {
            core: SbfCore::from_family(family),
        }
    }

    /// Builds from explicit parts.
    pub fn with_parts(family: F, store: S) -> Self {
        MsSbf {
            core: SbfCore::with_parts(family, store),
        }
    }

    /// The underlying core (counters, family, totals).
    pub fn core(&self) -> &SbfCore<F, S> {
        &self.core
    }

    /// Mutable core access (for estimators and tests).
    pub fn core_mut(&mut self) -> &mut SbfCore<F, S> {
        &mut self.core
    }

    /// Unites another MS filter into this one (counter addition, §2.2).
    pub fn union_assign<S2: CounterStore>(&mut self, other: &MsSbf<F, S2>)
    where
        F: PartialEq,
    {
        self.core.union_assign(&other.core);
    }

    /// Multiplies counter-wise, forming the join synopsis of §2.2.
    pub fn multiply_assign<S2: CounterStore>(&mut self, other: &MsSbf<F, S2>)
    where
        F: PartialEq,
    {
        self.core.multiply_assign(&other.core);
    }
}

impl<F: HashFamily, S: CounterStore> SketchReader for MsSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let est = self.core.key_counters(key).min();
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    fn total_count(&self) -> u64 {
        self.core.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.core.store().storage_bits()
    }

    fn occupancy(&self) -> f64 {
        self.core.occupancy()
    }
}

impl<F: HashFamily, S: CounterStore> MultisetSketch for MsSbf<F, S> {
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        metrics::on(|m| m.inserts.inc());
        self.core.increment_all(key, count);
    }

    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.removes.inc());
        self.core.decrement_all(key, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CompressedCounters;
    use sbf_hash::MixFamily;

    #[test]
    fn estimate_is_upper_bound_and_usually_exact() {
        let mut sbf = MsSbf::new(4096, 5, 1);
        for key in 0u64..200 {
            sbf.insert_by(&key, key + 1);
        }
        let mut exact = 0;
        for key in 0u64..200 {
            let est = sbf.estimate(&key);
            assert!(est > key, "one-sidedness violated for {key}");
            if est == key + 1 {
                exact += 1;
            }
        }
        // At γ = 200·5/4096 ≈ 0.24 the error probability is tiny.
        assert!(exact >= 195, "only {exact}/200 exact");
    }

    #[test]
    fn absent_keys_mostly_report_zero() {
        let mut sbf = MsSbf::new(8192, 5, 2);
        for key in 0u64..500 {
            sbf.insert(&key);
        }
        let false_pos = (10_000u64..11_000).filter(|k| sbf.contains(k)).count();
        assert!(false_pos < 20, "{false_pos} false positives out of 1000");
    }

    #[test]
    fn delete_restores_zero() {
        let mut sbf = MsSbf::new(1024, 4, 3);
        sbf.insert_by(&7u64, 5);
        sbf.remove_by(&7u64, 5).unwrap();
        assert_eq!(sbf.estimate(&7u64), 0);
        assert_eq!(sbf.total_count(), 0);
    }

    #[test]
    fn update_is_delete_then_insert() {
        let mut sbf = MsSbf::new(1024, 4, 4);
        sbf.insert_by(&"session", 10);
        // Update 10 → 6 (§2.2: "updates are also allowed").
        sbf.remove_by(&"session", 10).unwrap();
        sbf.insert_by(&"session", 6);
        assert_eq!(sbf.estimate(&"session"), 6);
    }

    #[test]
    fn works_over_compressed_store() {
        let family = MixFamily::new(2048, 5, 7);
        let mut sbf: MsSbf<MixFamily, CompressedCounters> = MsSbf::from_family(family);
        for key in 0u64..100 {
            sbf.insert_by(&key, 3);
        }
        for key in 0u64..100 {
            assert!(sbf.estimate(&key) >= 3);
        }
        // Compressed storage beats 64 bits/counter comfortably here.
        assert!(sbf.storage_bits() < 2048 * 64);
    }

    #[test]
    fn sliding_window_by_deletion() {
        // §2.2: maintain a window of the last W items by deleting leavers.
        let mut sbf = MsSbf::new(4096, 5, 8);
        let stream: Vec<u64> = (0..1000).map(|i| i % 50).collect();
        let w = 100;
        for (t, &x) in stream.iter().enumerate() {
            sbf.insert(&x);
            if t >= w {
                sbf.remove(&stream[t - w]).unwrap();
            }
        }
        assert_eq!(sbf.total_count(), w as u64);
        // Every key still occurs exactly w/50 = 2 times in the window.
        for key in 0u64..50 {
            assert!(sbf.estimate(&key) >= 2);
        }
    }
}
