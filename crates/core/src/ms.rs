//! Minimum Selection — the basic SBF of §2.2.

use sbf_hash::{BlockedFamily, HashFamily, Key};

use crate::core_ops::SbfCore;
use crate::metrics;
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::sketch::{MultisetSketch, SketchReader};
use crate::store::{CounterStore, PlainCounters, RemoveError};
use crate::DefaultFamily;

/// The basic Spectral Bloom Filter with the Minimum Selection estimator:
/// insert increments all `k` counters, the estimate is their minimum.
///
/// Claim 1 of the paper: `f_x ≤ m_x` always, and `f_x ≠ m_x` only with the
/// Bloom-error probability `E_b ≈ (1 − e^{−kn/m})^k`. Supports deletions
/// and updates by decrementing, and sliding windows by deleting out-of-date
/// items.
#[derive(Debug, Clone)]
pub struct MsSbf<F: HashFamily = DefaultFamily, S: CounterStore = PlainCounters> {
    core: SbfCore<F, S>,
}

impl MsSbf<DefaultFamily, PlainCounters> {
    /// An MS filter with `m` counters, `k` hash functions and the default
    /// hash family, plain storage. Prefer [`FromParams::from_params`] when
    /// sizing from a capacity/error target.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        Self::from_family(DefaultFamily::new(m, k, seed))
    }
}

impl FromParams for MsSbf<DefaultFamily, PlainCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: CounterStore> MsSbf<F, S> {
    /// Builds over an explicit hash family, with a fresh store.
    pub fn from_family(family: F) -> Self {
        MsSbf {
            core: SbfCore::from_family(family),
        }
    }

    /// Builds from explicit parts.
    pub fn with_parts(family: F, store: S) -> Self {
        MsSbf {
            core: SbfCore::with_parts(family, store),
        }
    }

    /// The underlying core (counters, family, totals).
    pub fn core(&self) -> &SbfCore<F, S> {
        &self.core
    }

    /// Mutable core access (for estimators and tests).
    pub fn core_mut(&mut self) -> &mut SbfCore<F, S> {
        &mut self.core
    }

    /// Unites another MS filter into this one (counter addition, §2.2).
    pub fn union_assign<S2: CounterStore>(&mut self, other: &MsSbf<F, S2>)
    where
        F: PartialEq,
    {
        self.core.union_assign(&other.core);
    }

    /// Multiplies counter-wise, forming the join synopsis of §2.2.
    pub fn multiply_assign<S2: CounterStore>(&mut self, other: &MsSbf<F, S2>)
    where
        F: PartialEq,
    {
        self.core.multiply_assign(&other.core);
    }
}

/// Minimum Selection over a cache-blocked layout: a first-level hash picks
/// a block, the `k` functions hash *within* it (the §2.2 external-memory
/// scheme of Manber & Wu, applied at cache granularity).
///
/// With a block sized to a few cache lines, one key's `k` counters share
/// 1–2 lines instead of `k` scattered ones, so a single prefetch (or miss)
/// covers the whole operation — the batched hot path's best case. The
/// trade-off is accuracy: `k` counters drawn from one small block collide
/// more than `k` drawn from all of `m`, raising the effective error rate
/// slightly (negligibly for blocks ≳ 64 counters; see DESIGN.md "Hot
/// path" and the `blocked_vs_flat` ablation).
pub type BlockedMsSbf = MsSbf<BlockedFamily<DefaultFamily>, PlainCounters>;

impl BlockedMsSbf {
    /// A blocked MS filter of `num_blocks × block_size` counters with `k`
    /// hash functions per block. `block_size = 64` (one 512-byte span, 8
    /// cache lines) is a good default; smaller blocks trade accuracy for
    /// locality.
    pub fn new_blocked(block_size: usize, num_blocks: usize, k: usize, seed: u64) -> Self {
        MsSbf::from_family(BlockedFamily::new(
            DefaultFamily::new(block_size, k, seed),
            num_blocks,
            seed,
        ))
    }
}

impl<F: HashFamily, S: CounterStore> SketchReader for MsSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let est = self.core.key_counters(key).min();
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        self.core.min_batch_into(keys, out);
        metrics::on(|m| {
            m.estimates.add(num::to_u64(keys.len()));
            for &est in out.iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn estimate_batch_picked_into<K: Key>(&self, keys: &[K], picks: &[u32], out: &mut Vec<u64>) {
        let before = out.len();
        self.core.min_batch_picked_into(keys, picks, out);
        metrics::on(|m| {
            m.estimates.add(num::to_u64(picks.len()));
            for &est in out[before..].iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn total_count(&self) -> u64 {
        self.core.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.core.store().storage_bits()
    }

    fn occupancy(&self) -> f64 {
        self.core.occupancy()
    }
}

impl<F: HashFamily, S: CounterStore> MultisetSketch for MsSbf<F, S> {
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        metrics::on(|m| m.inserts.inc());
        self.core.increment_all(key, count);
    }

    fn insert_batch<K: Key>(&mut self, keys: &[K]) {
        metrics::on(|m| m.inserts.add(num::to_u64(keys.len())));
        self.core.increment_batch(keys);
    }

    fn insert_batch_picked<K: Key>(&mut self, keys: &[K], picks: &[u32]) {
        metrics::on(|m| m.inserts.add(num::to_u64(picks.len())));
        self.core.increment_batch_picked(keys, picks);
    }

    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError> {
        metrics::on(|m| m.removes.inc());
        self.core.decrement_all(key, count)
    }

    fn remove_batch<K: Key>(&mut self, keys: &[K]) -> Result<(), crate::BatchRemoveError> {
        let result = self.core.decrement_batch(keys);
        // Count attempts, like the item-at-a-time loop would: every applied
        // item plus the one that failed.
        let attempts = match &result {
            Ok(()) => num::to_u64(keys.len()),
            Err(e) => num::to_u64(e.index) + 1,
        };
        metrics::on(|m| m.removes.add(attempts));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CompressedCounters;
    use sbf_hash::MixFamily;

    #[test]
    fn estimate_is_upper_bound_and_usually_exact() {
        let mut sbf = MsSbf::new(4096, 5, 1);
        for key in 0u64..200 {
            sbf.insert_by(&key, key + 1);
        }
        let mut exact = 0;
        for key in 0u64..200 {
            let est = sbf.estimate(&key);
            assert!(est > key, "one-sidedness violated for {key}");
            if est == key + 1 {
                exact += 1;
            }
        }
        // At γ = 200·5/4096 ≈ 0.24 the error probability is tiny.
        assert!(exact >= 195, "only {exact}/200 exact");
    }

    #[test]
    fn absent_keys_mostly_report_zero() {
        let mut sbf = MsSbf::new(8192, 5, 2);
        for key in 0u64..500 {
            sbf.insert(&key);
        }
        let false_pos = (10_000u64..11_000).filter(|k| sbf.contains(k)).count();
        assert!(false_pos < 20, "{false_pos} false positives out of 1000");
    }

    #[test]
    fn delete_restores_zero() {
        let mut sbf = MsSbf::new(1024, 4, 3);
        sbf.insert_by(&7u64, 5);
        sbf.remove_by(&7u64, 5).unwrap();
        assert_eq!(sbf.estimate(&7u64), 0);
        assert_eq!(sbf.total_count(), 0);
    }

    #[test]
    fn update_is_delete_then_insert() {
        let mut sbf = MsSbf::new(1024, 4, 4);
        sbf.insert_by(&"session", 10);
        // Update 10 → 6 (§2.2: "updates are also allowed").
        sbf.remove_by(&"session", 10).unwrap();
        sbf.insert_by(&"session", 6);
        assert_eq!(sbf.estimate(&"session"), 6);
    }

    #[test]
    fn works_over_compressed_store() {
        let family = MixFamily::new(2048, 5, 7);
        let mut sbf: MsSbf<MixFamily, CompressedCounters> = MsSbf::from_family(family);
        for key in 0u64..100 {
            sbf.insert_by(&key, 3);
        }
        for key in 0u64..100 {
            assert!(sbf.estimate(&key) >= 3);
        }
        // Compressed storage beats 64 bits/counter comfortably here.
        assert!(sbf.storage_bits() < 2048 * 64);
    }

    /// A family whose `k` functions all collide on one slot — the worst
    /// case for per-item index dedup.
    #[derive(Debug, Clone, PartialEq)]
    struct CollidingFamily {
        inner: MixFamily,
        k: usize,
    }

    impl CollidingFamily {
        fn new(m: usize, k: usize, seed: u64) -> Self {
            CollidingFamily {
                inner: MixFamily::new(m, 1, seed),
                k,
            }
        }
    }

    impl HashFamily for CollidingFamily {
        fn k(&self) -> usize {
            self.k
        }
        fn m(&self) -> usize {
            self.inner.m()
        }
        fn indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut [usize]) {
            let mut one = [0usize; 1];
            self.inner.indexes_into(key, &mut one);
            out[..self.k].fill(one[0]);
        }
    }

    #[test]
    fn colliding_indices_count_each_insert_once() {
        // Regression: when a key's hash functions collide, the slot must be
        // bumped once per insert, not once per colliding function —
        // otherwise the estimate over-counts by up to k×.
        let mut sbf: MsSbf<CollidingFamily> = MsSbf::from_family(CollidingFamily::new(64, 4, 9));
        sbf.insert(&1u64);
        assert_eq!(sbf.estimate(&1u64), 1, "k-way collision inflated count");
        sbf.insert_by(&1u64, 4);
        assert_eq!(sbf.estimate(&1u64), 5);
        sbf.remove(&1u64).unwrap();
        assert_eq!(sbf.estimate(&1u64), 4, "dedup must hold on removes too");
    }

    #[test]
    fn colliding_indices_batch_matches_singles() {
        let keys: Vec<u64> = (0..100).map(|i| i % 13).collect();
        let mut single: MsSbf<CollidingFamily> = MsSbf::from_family(CollidingFamily::new(64, 4, 9));
        let mut batch = single.clone();
        for k in &keys {
            single.insert(k);
        }
        batch.insert_batch(&keys);
        for k in 0u64..13 {
            assert_eq!(single.estimate(&k), batch.estimate(&k));
            assert_eq!(single.estimate(&k), batch.estimate_batch(&[k])[0]);
        }
        batch.remove_batch(&keys).unwrap();
        assert_eq!(batch.total_count(), 0);
        for k in 0u64..13 {
            assert_eq!(batch.estimate(&k), 0);
        }
    }

    #[test]
    fn blocked_variant_is_one_sided_and_batch_consistent() {
        let mut blocked = BlockedMsSbf::new_blocked(64, 64, 4, 11);
        assert_eq!(blocked.core().family().m(), 4096);
        let keys: Vec<u64> = (0..800).map(|i| i % 160).collect();
        blocked.insert_batch(&keys);
        assert_eq!(blocked.total_count(), 800);
        let ests = blocked.estimate_batch(&(0u64..160).collect::<Vec<_>>());
        for (k, &est) in ests.iter().enumerate() {
            assert!(est >= 5, "undercount for {k}: {est}");
            assert_eq!(est, blocked.estimate(&(k as u64)));
        }
    }

    #[test]
    fn sliding_window_by_deletion() {
        // §2.2: maintain a window of the last W items by deleting leavers.
        let mut sbf = MsSbf::new(4096, 5, 8);
        let stream: Vec<u64> = (0..1000).map(|i| i % 50).collect();
        let w = 100;
        for (t, &x) in stream.iter().enumerate() {
            sbf.insert(&x);
            if t >= w {
                sbf.remove(&stream[t - w]).unwrap();
            }
        }
        assert_eq!(sbf.total_count(), w as u64);
        // Every key still occurs exactly w/50 = 2 times in the window.
        for key in 0u64..50 {
            assert!(sbf.estimate(&key) >= 2);
        }
    }
}
