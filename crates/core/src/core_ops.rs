//! The shared machinery under every SBF algorithm: `k` hashed counters,
//! bulk increment/decrement, minima inspection, union and multiply — plus
//! the software-pipelined batch engine the batched trait methods build on.

use sbf_hash::{dispatch, HashFamily, IndexBuf, Key, SimdLevel, LANES, MAX_K};

use crate::num;
use crate::sketch::BatchRemoveError;
use crate::store::{CounterStore, RemoveError};
use crate::DefaultFamily;

/// Software-pipeline depth of the batched hot path: while item `i` is
/// applied, item `i + PIPELINE_DEPTH`'s indices are hashed and their
/// counter cache lines prefetched.
///
/// The distance must cover the miss latency with useful work: one item's
/// apply step is `k` (~5) dependent counter accesses plus `k` hashes
/// (~2 ns each), so 8 items in flight put roughly 80–120 ns between a
/// line's prefetch and its use — about one DRAM round-trip — while keeping
/// the ring's own footprint (8 × `IndexBuf` ≈ 1 KiB) inside L1. Measured
/// flat on this workload from 4 to 16; see DESIGN.md "Hot path".
pub const PIPELINE_DEPTH: usize = 8;

/// The software-pipelined batch loop shared by every backend.
///
/// Expands to a ring-buffered "hash ahead by [`PIPELINE_DEPTH`]" loop:
/// `hash` computes a key's (deduplicated) [`IndexBuf`], `prefetch` requests
/// its counter cache lines, `apply` consumes the indices of the *current*
/// item. Items are applied strictly in order — only hashing and prefetching
/// run ahead — so batched results are bit-identical to the item-at-a-time
/// path even for order-dependent algorithms (Minimal Increase).
///
/// A macro rather than a higher-order function so that `hash`/`prefetch`
/// (shared borrows) and `apply` (often a mutable borrow of the same
/// sketch) expand to *sequential* statements instead of coexisting closure
/// captures, which the borrow checker would reject. `apply` may use `?` /
/// `return`: the loop expands inline in the calling function.
macro_rules! pipelined_batch {
    (
        $keys:expr,
        hash = |$key:ident, $slot:ident| $hash:expr,
        prefetch = |$pidx:ident| $pre:expr,
        apply = |$i:ident, $idx:ident| $body:expr
    ) => {{
        let keys = $keys;
        let len = keys.len();
        let depth = $crate::core_ops::PIPELINE_DEPTH.min(len);
        if depth > 0 {
            let mut ring = [sbf_hash::IndexBuf::new(); $crate::core_ops::PIPELINE_DEPTH];
            for (slot_no, ring_slot) in ring.iter_mut().enumerate().take(depth) {
                let $key = &keys[slot_no];
                {
                    let $slot = &mut *ring_slot;
                    $hash;
                }
                {
                    let $pidx = &*ring_slot;
                    $pre;
                }
            }
            for $i in 0..len {
                // Borrow (not copy) the slot: `apply` consumes it before
                // the refill below overwrites it, so the shared borrow of
                // `ring` has ended by then.
                {
                    let $idx = &ring[$i % $crate::core_ops::PIPELINE_DEPTH];
                    $body;
                }
                if $i + depth < len {
                    // Hash straight into the just-vacated slot (the `hash`
                    // stage writes the slot in place — no `IndexBuf`-sized
                    // temp copy), then prefetch from it.
                    let $key = &keys[$i + depth];
                    {
                        let $slot = &mut ring[$i % $crate::core_ops::PIPELINE_DEPTH];
                        $hash;
                    }
                    {
                        let $pidx = &ring[$i % $crate::core_ops::PIPELINE_DEPTH];
                        $pre;
                    }
                }
            }
        }
    }};
}
pub(crate) use pipelined_batch;

/// One step of the lane-pass pipeline ([`lane_pipeline`]): either a freshly
/// hashed item whose counter lines should be requested now (a chunk ahead
/// of use), or the current item to consume, in order.
pub(crate) enum LaneOp<'a> {
    /// Hashed a chunk ahead — issue the prefetch hints for this item.
    Prefetch(&'a IndexBuf),
    /// The current item's (optionally deduplicated) indices.
    Apply(&'a IndexBuf),
}

/// Hashes one full lane group of [`LANES`] canonical key values through the
/// family's SIMD kernel and transposes the seed-major output into per-item
/// [`IndexBuf`]s (`bufs[lane]`), optionally canonicalising each through
/// [`IndexBuf::sort_dedup`].
#[inline]
fn fill_lane_group<F: HashFamily>(
    family: &F,
    vs: [u64; LANES],
    bufs: &mut [IndexBuf],
    dedup: bool,
) {
    let k = family.k();
    let mut stage = [0usize; LANES * MAX_K];
    family.indexes_lanes(vs, &mut stage[..k * LANES]);
    for (lane, buf) in bufs.iter_mut().enumerate().take(LANES) {
        buf.fill(k, |slots| {
            for (f, slot) in slots.iter_mut().enumerate() {
                *slot = stage[f * LANES + lane];
            }
        });
        if dedup {
            buf.sort_dedup();
        }
    }
}

/// The lane-pass analogue of [`pipelined_batch!`]: items are hashed in
/// groups of [`LANES`] through the family's SIMD kernel (scalar remainder
/// per chunk), one chunk of [`PIPELINE_DEPTH`] items ahead of consumption,
/// and applied strictly in order — so results stay bit-identical to the
/// item-at-a-time path.
///
/// `canon` maps an item position to its canonical key value (the
/// [`Key::canonical`] contract every family hashes from); `op` receives
/// [`LaneOp::Prefetch`] once per item as its chunk is hashed — a chunk
/// before the matching [`LaneOp::Apply`] — and may capture mutable state
/// (a `&mut` store, an output vector): hashing needs only `family` and
/// `canon`, so the borrows never overlap.
///
/// Worth it only for read paths that can also skip [`IndexBuf::sort_dedup`]
/// (`dedup = false`): with dedup on, the transpose + canonicalisation per
/// item costs more than the vector hash saves, which is why the write
/// paths stay on the scalar [`pipelined_batch!`] pipeline (measured
/// 10–25 % slower with lanes on every backend — see the `hotpath` bench
/// and DESIGN.md §4i).
pub(crate) fn lane_pipeline<F: HashFamily>(
    family: &F,
    n: usize,
    canon: impl Fn(usize) -> u64,
    dedup: bool,
    mut op: impl FnMut(LaneOp<'_>),
) {
    if n == 0 {
        return;
    }
    let fill = |bufs: &mut [IndexBuf; PIPELINE_DEPTH], base: usize, len: usize| {
        let mut i = 0;
        while i + LANES <= len {
            let b = base + i;
            let vs = [canon(b), canon(b + 1), canon(b + 2), canon(b + 3)];
            fill_lane_group(family, vs, &mut bufs[i..], dedup);
            i += LANES;
        }
        for (j, buf) in bufs.iter_mut().enumerate().take(len).skip(i) {
            let v = canon(base + j);
            buf.fill(family.k(), |slots| family.indexes_into(&v, slots));
            if dedup {
                buf.sort_dedup();
            }
        }
    };
    let mut cur = [IndexBuf::new(); PIPELINE_DEPTH];
    let mut nxt = [IndexBuf::new(); PIPELINE_DEPTH];
    let mut base = 0usize;
    let mut cur_len = PIPELINE_DEPTH.min(n);
    fill(&mut cur, 0, cur_len);
    for buf in cur.iter().take(cur_len) {
        op(LaneOp::Prefetch(buf));
    }
    loop {
        let next_base = base + cur_len;
        let next_len = PIPELINE_DEPTH.min(n - next_base);
        if next_len > 0 {
            fill(&mut nxt, next_base, next_len);
            for buf in nxt.iter().take(next_len) {
                op(LaneOp::Prefetch(buf));
            }
        }
        for buf in cur.iter().take(cur_len) {
            op(LaneOp::Apply(buf));
        }
        if next_len == 0 {
            return;
        }
        std::mem::swap(&mut cur, &mut nxt);
        base = next_base;
        cur_len = next_len;
    }
}

/// Whether the lane-pass estimate engines are worth dispatching for a
/// batch of `n` items: a SIMD level is active and the batch covers at
/// least one lane group.
///
/// Only the *read* paths consult this. The write paths (insert/remove)
/// deliberately stay on the scalar [`pipelined_batch!`] pipeline: they are
/// bound by the `k` read-modify-writes per item, which no gather kernel
/// can vectorise, and they must deduplicate indices — so lane hashing
/// would only add a seed-major→per-item transpose per key, measured
/// 10–25 % *slower* than the scalar write-intent pipeline on every
/// backend (see the `hotpath` bench and DESIGN.md §4i). The estimate
/// paths win because the minimum over a multiset equals the minimum over
/// its distinct values: dedup is skipped, and (where the store exposes a
/// plain `u64` slice) the hashes feed the gathered-min kernel directly.
#[inline]
pub(crate) fn lanes_worthwhile(n: usize) -> bool {
    n >= LANES && sbf_hash::simd_level() != SimdLevel::Scalar
}

/// The counter values of one key, in hash-function order, plus the derived
/// minimum statistics the algorithms of §2–§3 decide on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyCounters {
    /// The `k` counter indices.
    pub indexes: IndexBuf,
    values: [u64; MAX_K],
    k: usize,
}

impl KeyCounters {
    /// The `k` counter values.
    pub fn values(&self) -> &[u64] {
        &self.values[..self.k]
    }

    /// The minimal counter value `m_x` — the Minimum Selection estimate.
    pub fn min(&self) -> u64 {
        self.values().iter().copied().min().unwrap_or(0)
    }

    /// How many of the `k` counters hold the minimum.
    pub fn min_multiplicity(&self) -> usize {
        let m = self.min();
        self.values().iter().filter(|&&v| v == m).count()
    }

    /// Whether the minimum recurs (appears in ≥ 2 counters) — the
    /// error-detection signal of the Recurring Minimum method (§3.3).
    pub fn has_recurring_min(&self) -> bool {
        self.min_multiplicity() >= 2
    }

    /// The position (within the `k` functions) of the single minimum, when
    /// there is exactly one.
    pub fn single_min_slot(&self) -> Option<usize> {
        let m = self.min();
        let mut found = None;
        for (slot, &v) in self.values().iter().enumerate() {
            if v == m {
                if found.is_some() {
                    return None;
                }
                found = Some(slot);
            }
        }
        found
    }

    /// Mean of the `k` counter values (used by the unbiased estimator).
    pub fn mean(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        self.values().iter().map(|&v| num::to_f64(v)).sum::<f64>() / num::to_f64(self.k)
    }
}

/// Hash family + counter store + multiplicity accounting.
///
/// Every SBF algorithm in this crate owns one (the Recurring Minimum
/// variants own two). The core does not choose an estimation policy; it
/// provides the operations the policies are written in.
#[derive(Debug, Clone)]
pub struct SbfCore<F: HashFamily = DefaultFamily, S: CounterStore = crate::PlainCounters> {
    family: F,
    store: S,
    total_count: u64,
}

impl<F: HashFamily, S: CounterStore> SbfCore<F, S> {
    /// Assembles a core from a hash family and a fresh store of matching
    /// length.
    pub fn from_family(family: F) -> Self {
        let store = S::with_len(family.m());
        SbfCore {
            family,
            store,
            total_count: 0,
        }
    }

    /// Assembles from explicit parts. `store.len()` must equal `family.m()`.
    pub fn with_parts(family: F, store: S) -> Self {
        assert_eq!(
            family.m(),
            store.len(),
            "hash range and store length disagree"
        );
        let total_count = 0;
        SbfCore {
            family,
            store,
            total_count,
        }
    }

    /// Number of counters `m`.
    pub fn m(&self) -> usize {
        self.family.m()
    }

    /// Number of hash functions `k`.
    pub fn k(&self) -> usize {
        self.family.k()
    }

    /// The hash family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The counter store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable counter store (for algorithm internals).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Total multiplicity currently represented (Σ inserts − Σ removes);
    /// the `N` of the unbiased estimator (Lemma 3).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// The load factor `γ = (total k-increments)/m` would need the distinct
    /// count; this reports the *occupancy*: fraction of non-zero counters.
    pub fn occupancy(&self) -> f64 {
        if self.store.len() == 0 {
            return 0.0;
        }
        let nz = (0..self.store.len())
            .filter(|&i| self.store.get(i) > 0)
            .count();
        num::to_f64(nz) / num::to_f64(self.store.len())
    }

    /// The distinct counter indices of `key`, sorted.
    ///
    /// This is the canonical per-key index set every mutation and read in
    /// the crate goes through. Two hash functions can collide on the same
    /// counter (`h_i(x) = h_j(x)`); the paper's §3.1 model increments each
    /// *distinct* counter once per occurrence, so the duplicate is dropped
    /// here — otherwise one insert would bump the shared counter twice and
    /// permanently inflate `min`-based estimates.
    #[inline]
    pub fn key_indexes<K: Key + ?Sized>(&self, key: &K) -> IndexBuf {
        let mut idx = self.family.indexes(key);
        idx.sort_dedup();
        idx
    }

    /// [`SbfCore::key_indexes`] written into a caller-owned buffer — the
    /// batch pipelines' ring-refill path, which avoids copying the full
    /// `IndexBuf` struct per item (see [`IndexBuf::fill`]).
    #[inline]
    pub fn key_indexes_into<K: Key + ?Sized>(&self, key: &K, out: &mut IndexBuf) {
        out.fill(self.family.k(), |slots| {
            self.family.indexes_into(key, slots)
        });
        out.sort_dedup();
    }

    /// Prefetches the counter cache lines behind `idx` (no-op for stores
    /// without a linear memory layout).
    ///
    /// One hint per index, deliberately *without* deduplicating indices
    /// that share a cache line: a `line != last_line` test is an
    /// unpredictable branch (especially for the blocked layout, where all
    /// `k` indices land in one 64-counter block and the comparison is a
    /// coin flip), and a mispredict costs more than the redundant prefetch
    /// µop it saves — the load/store queue collapses duplicate requests to
    /// a resident line for free.
    #[inline]
    pub fn prefetch_idx(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            self.store.prefetch(i);
        }
    }

    /// Write-intent form of [`SbfCore::prefetch_idx`], for pipelines whose
    /// apply stage *stores* to the counters (insert/remove): the lines are
    /// requested in exclusive state so the increments skip the
    /// read-for-ownership upgrade.
    #[inline]
    pub fn prefetch_idx_write(&self, idx: &IndexBuf) {
        for &i in idx.as_slice() {
            self.store.prefetch_write(i);
        }
    }

    /// The minimum counter value of a precomputed index set, without
    /// materialising a full [`KeyCounters`] — the batched estimate's inner
    /// loop.
    #[inline]
    pub fn min_of_idx(&self, idx: &IndexBuf) -> u64 {
        idx.as_slice()
            .iter()
            .map(|&i| self.store.get(i))
            .min()
            .unwrap_or(0)
    }

    /// Reads the key's counters and minimum statistics.
    pub fn key_counters<K: Key + ?Sized>(&self, key: &K) -> KeyCounters {
        self.key_counters_idx(&self.key_indexes(key))
    }

    /// [`SbfCore::key_counters`] over a precomputed (deduplicated) index
    /// set — the batch engine hashes each key once and fans out from here.
    pub fn key_counters_idx(&self, idx: &IndexBuf) -> KeyCounters {
        let mut values = [0u64; MAX_K];
        for (slot, &i) in idx.as_slice().iter().enumerate() {
            values[slot] = self.store.get(i);
        }
        KeyCounters {
            indexes: *idx,
            values,
            k: idx.len(),
        }
    }

    /// Increments every distinct counter of `key` by `by`.
    pub fn increment_all<K: Key + ?Sized>(&mut self, key: &K, by: u64) {
        let idx = self.key_indexes(key);
        self.increment_idx(&idx, by);
    }

    /// [`SbfCore::increment_all`] over a precomputed index set.
    #[inline]
    pub fn increment_idx(&mut self, idx: &IndexBuf, by: u64) {
        for &i in idx.as_slice() {
            self.store.increment(i, by);
        }
        self.total_count += by;
    }

    /// Decrements every distinct counter of `key` by `by`; fails atomically
    /// (no counter is changed) if any would underflow.
    pub fn decrement_all<K: Key + ?Sized>(&mut self, key: &K, by: u64) -> Result<(), RemoveError> {
        let idx = self.key_indexes(key);
        self.decrement_idx(&idx, by)
    }

    /// [`SbfCore::decrement_all`] over a precomputed index set.
    pub fn decrement_idx(&mut self, idx: &IndexBuf, by: u64) -> Result<(), RemoveError> {
        for &i in idx.as_slice() {
            if self.store.get(i) < by {
                return Err(RemoveError::Underflow { index: i });
            }
        }
        for &i in idx.as_slice() {
            self.store
                .decrement(i, by)
                .unwrap_or_else(|_| unreachable!("pre-checked decrement cannot underflow"));
        }
        self.total_count = self.total_count.saturating_sub(by);
        Ok(())
    }

    /// Decrements every distinct counter of `key` by `by`, clamping at
    /// zero. Used to reproduce Minimal Increase's behaviour under deletions
    /// (§3.2), where counters may legitimately sit below the amount being
    /// removed.
    pub fn decrement_all_saturating<K: Key + ?Sized>(&mut self, key: &K, by: u64) {
        let idx = self.key_indexes(key);
        for &i in idx.as_slice() {
            self.store.decrement_saturating(i, by);
        }
        self.total_count = self.total_count.saturating_sub(by);
    }

    /// Raises every counter of `key` to at least `floor` — the batch form
    /// of Minimal Increase (§3.2): *"increase the smallest counter(s) by r,
    /// and update every other counter to the maximum of its old value and
    /// m_x + r"*.
    pub fn raise_to_floor<K: Key + ?Sized>(&mut self, key: &K, floor: u64) {
        let idx = self.key_indexes(key);
        self.raise_to_floor_idx(&idx, floor);
    }

    /// [`SbfCore::raise_to_floor`] over a precomputed index set.
    #[inline]
    pub fn raise_to_floor_idx(&mut self, idx: &IndexBuf, floor: u64) {
        for &i in idx.as_slice() {
            if self.store.get(i) < floor {
                self.store.set(i, floor);
            }
        }
    }

    /// Adds one occurrence of every key. Bit-identical to calling
    /// [`SbfCore::increment_all`] with `by = 1` per key.
    ///
    /// Pipelined with **write-intent** prefetch: increments are stores,
    /// and a read-intent hint (`PREFETCHT0`) leaves the line in shared
    /// state, so the increment still pays the read-for-ownership upgrade —
    /// which is why a read-prefetch pipeline measures no better than a
    /// fused hash-and-apply loop here. `PREFETCHW` requests the line
    /// exclusive up front, and that is what makes the insert pipeline beat
    /// the single-item loop on cache-hostile (uniform) streams; see
    /// DESIGN.md "Hot path".
    pub fn increment_batch<K: Key>(&mut self, keys: &[K]) {
        pipelined_batch!(
            keys,
            hash = |key, slot| self.key_indexes_into(key, slot),
            prefetch = |idx| self.prefetch_idx_write(idx),
            apply = |_i, idx| self.increment_idx(idx, 1)
        );
    }

    /// [`SbfCore::increment_batch`] addressed through `picks` (indices into
    /// `keys`) — the sharded backend's per-shard ingest path.
    pub fn increment_batch_picked<K: Key>(&mut self, keys: &[K], picks: &[u32]) {
        pipelined_batch!(
            picks,
            hash = |j, slot| self.key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.prefetch_idx_write(idx),
            apply = |_i, idx| self.increment_idx(idx, 1)
        );
    }

    /// The per-key minimum counter (the Minimum Selection estimate `m_x`)
    /// for every key, software-pipelined. `out` is cleared first; `out[i]`
    /// answers `keys[i]`, exactly as `key_counters(keys[i]).min()` would.
    pub fn min_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        if lanes_worthwhile(keys.len()) {
            if let Some(counters) = self.store.as_u64_slice() {
                self.min_lanes_run(counters, keys.len(), |i| keys[i].canonical(), out);
                return;
            }
        }
        pipelined_batch!(
            keys,
            hash = |key, slot| self.key_indexes_into(key, slot),
            prefetch = |idx| self.prefetch_idx(idx),
            apply = |_i, idx| out.push(self.min_of_idx(idx))
        );
    }

    /// [`SbfCore::min_batch_into`] addressed through `picks`, *appending*
    /// to `out` (the sharded estimate scatters per-shard answers back into
    /// request order afterwards).
    pub fn min_batch_picked_into<K: Key>(&self, keys: &[K], picks: &[u32], out: &mut Vec<u64>) {
        out.reserve(picks.len());
        if lanes_worthwhile(picks.len()) {
            if let Some(counters) = self.store.as_u64_slice() {
                self.min_lanes_run(
                    counters,
                    picks.len(),
                    |i| keys[num::to_usize(picks[i])].canonical(),
                    out,
                );
                return;
            }
        }
        pipelined_batch!(
            picks,
            hash = |j, slot| self.key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.prefetch_idx(idx),
            apply = |_i, idx| out.push(self.min_of_idx(idx))
        );
    }

    /// The SIMD estimate worker: hashes lane groups through the family's
    /// vector kernel straight into seed-major stages (no [`IndexBuf`], no
    /// [`IndexBuf::sort_dedup`] — the minimum over a multiset equals the
    /// minimum over its distinct values, so the answers stay bit-identical
    /// to the scalar path) and reduces each group with the gathered-min
    /// kernel. Two lane groups stay hashed-and-prefetched ahead, matching
    /// [`PIPELINE_DEPTH`] items in flight.
    fn min_lanes_run(
        &self,
        counters: &[u64],
        n: usize,
        canon: impl Fn(usize) -> u64,
        out: &mut Vec<u64>,
    ) {
        let k = self.family.k();
        let groups = n / LANES;
        // Ring of 3 so the refill (2 groups ahead) never lands on a stage
        // that is still unconsumed.
        let mut stages = [[0usize; LANES * MAX_K]; 3];
        let ahead = 2.min(groups);
        for (g, stage) in stages.iter_mut().enumerate().take(ahead) {
            let b = g * LANES;
            let vs = [canon(b), canon(b + 1), canon(b + 2), canon(b + 3)];
            self.family.indexes_lanes(vs, &mut stage[..k * LANES]);
            for &i in &stage[..k * LANES] {
                sbf_hash::prefetch_slice(counters, i);
            }
        }
        for g in 0..groups {
            let refill = g + ahead;
            if refill < groups {
                let b = refill * LANES;
                let vs = [canon(b), canon(b + 1), canon(b + 2), canon(b + 3)];
                let stage = &mut stages[refill % 3];
                self.family.indexes_lanes(vs, &mut stage[..k * LANES]);
                for &i in &stage[..k * LANES] {
                    sbf_hash::prefetch_slice(counters, i);
                }
            }
            let mins = dispatch::min_gather_lanes(counters, &stages[g % 3][..k * LANES], k);
            out.extend_from_slice(&mins);
        }
        for j in groups * LANES..n {
            let v = canon(j);
            let mut idx = [0usize; MAX_K];
            self.family.indexes_into(&v, &mut idx[..k]);
            out.push(idx[..k].iter().map(|&i| counters[i]).min().unwrap_or(0));
        }
    }

    /// Removes one occurrence of every key in order, software-pipelined,
    /// stopping at the first failure (the applied prefix stays applied; the
    /// failing key's counters are untouched — [`SbfCore::decrement_idx`] is
    /// atomic per key).
    pub fn decrement_batch<K: Key>(&mut self, keys: &[K]) -> Result<(), BatchRemoveError> {
        pipelined_batch!(
            keys,
            hash = |key, slot| self.key_indexes_into(key, slot),
            prefetch = |idx| self.prefetch_idx_write(idx),
            apply = |i, idx| self
                .decrement_idx(idx, 1)
                .map_err(|error| BatchRemoveError { index: i, error })?
        );
        Ok(())
    }

    /// Bumps the internal multiplicity account (for algorithms that bypass
    /// [`Self::increment_all`]).
    pub fn add_to_total(&mut self, by: u64) {
        self.total_count += by;
    }

    /// Lowers the internal multiplicity account.
    pub fn sub_from_total(&mut self, by: u64) {
        self.total_count = self.total_count.saturating_sub(by);
    }

    /// Whether `other` was built with identical parameters and hash
    /// functions — the precondition for union and multiply (§2.2).
    pub fn compatible<S2: CounterStore>(&self, other: &SbfCore<F, S2>) -> bool
    where
        F: PartialEq,
    {
        self.family == other.family
    }

    /// Counter-wise addition: the distributed union of §2.2 (*"SBFs can be
    /// united simply by addition of their counter vectors"*).
    pub fn union_assign<S2: CounterStore>(&mut self, other: &SbfCore<F, S2>)
    where
        F: PartialEq,
    {
        assert!(
            self.compatible(other),
            "union requires identical parameters and hash functions"
        );
        for i in 0..self.store.len() {
            let o = other.store.get(i);
            if o > 0 {
                self.store.increment(i, o);
            }
        }
        self.total_count += other.total_count;
    }

    /// Counter-wise multiplication: the join synopsis of §2.2 (*"the
    /// counter vectors are linearly multiplied to generate an SBF
    /// representing the join of the two relations"*).
    pub fn multiply_assign<S2: CounterStore>(&mut self, other: &SbfCore<F, S2>)
    where
        F: PartialEq,
    {
        assert!(
            self.compatible(other),
            "multiply requires identical parameters and hash functions"
        );
        let mut total = 0u64;
        for i in 0..self.store.len() {
            let Some(v) = self.store.get(i).checked_mul(other.store.get(i)) else {
                panic!("join counter overflow")
            };
            self.store.set(i, v);
            total = total.saturating_add(v);
        }
        // Multiplicity accounting is heuristic after a multiply; expose the
        // counter mass divided by k as the best available figure.
        self.total_count = total / num::to_u64(self.k().max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PlainCounters;
    use sbf_hash::MixFamily;

    type Core = SbfCore<MixFamily, PlainCounters>;

    fn core(m: usize, k: usize, seed: u64) -> Core {
        SbfCore::from_family(MixFamily::new(m, k, seed))
    }

    #[test]
    fn increment_then_min_is_at_least_count() {
        let mut c = core(1024, 5, 1);
        c.increment_all(&7u64, 3);
        c.increment_all(&7u64, 2);
        assert!(c.key_counters(&7u64).min() >= 5);
        assert_eq!(c.total_count(), 5);
    }

    #[test]
    fn decrement_is_atomic_on_underflow() {
        let mut c = core(64, 4, 2);
        c.increment_all(&1u64, 2);
        let before: Vec<u64> = (0..64).map(|i| c.store().get(i)).collect();
        assert!(c.decrement_all(&1u64, 3).is_err());
        let after: Vec<u64> = (0..64).map(|i| c.store().get(i)).collect();
        assert_eq!(before, after, "failed removal must not change any counter");
        assert!(c.decrement_all(&1u64, 2).is_ok());
        assert_eq!(c.key_counters(&1u64).min(), 0);
    }

    #[test]
    fn recurring_minimum_detection() {
        let mut c = core(4096, 5, 3);
        c.increment_all(&99u64, 10);
        let kc = c.key_counters(&99u64);
        // With an empty filter all k counters are exactly 10.
        assert_eq!(kc.min(), 10);
        assert!(kc.has_recurring_min());
        assert_eq!(kc.single_min_slot(), None);
        assert_eq!(kc.min_multiplicity(), 5);
    }

    #[test]
    fn single_min_slot_identified() {
        let mut c = core(4096, 3, 4);
        c.increment_all(&5u64, 1);
        // Manually bump all but the last distinct counter to fabricate a
        // single min (slots follow the canonical sorted-dedup index order).
        let idx = c.key_indexes(&5u64);
        let last = idx.len() - 1;
        for &i in &idx.as_slice()[..last] {
            c.store_mut().increment(i, 7);
        }
        let kc = c.key_counters(&5u64);
        assert_eq!(kc.single_min_slot(), Some(last));
        assert!(!kc.has_recurring_min());
    }

    #[test]
    fn union_adds_counters() {
        let mut a = core(512, 4, 9);
        let mut b = core(512, 4, 9);
        a.increment_all(&10u64, 3);
        b.increment_all(&10u64, 4);
        b.increment_all(&20u64, 1);
        a.union_assign(&b);
        assert!(a.key_counters(&10u64).min() >= 7);
        assert!(a.key_counters(&20u64).min() >= 1);
        assert_eq!(a.total_count(), 8);
    }

    #[test]
    #[should_panic(expected = "identical parameters")]
    fn union_rejects_different_seeds() {
        let mut a = core(512, 4, 9);
        let b = core(512, 4, 10);
        a.union_assign(&b);
    }

    #[test]
    fn multiply_zeroes_disjoint_keys() {
        let mut a = core(2048, 5, 11);
        let mut b = core(2048, 5, 11);
        a.increment_all(&1u64, 5);
        b.increment_all(&1u64, 3);
        a.increment_all(&2u64, 5); // only in a
        b.increment_all(&3u64, 4); // only in b
        a.multiply_assign(&b);
        assert!(a.key_counters(&1u64).min() >= 15);
        assert_eq!(a.key_counters(&2u64).min(), 0);
        assert_eq!(a.key_counters(&3u64).min(), 0);
    }

    #[test]
    fn raise_to_floor_only_raises() {
        let mut c = core(256, 4, 5);
        c.increment_all(&8u64, 10);
        c.raise_to_floor(&8u64, 6); // below current values: no-op
        assert_eq!(c.key_counters(&8u64).min(), 10);
        c.raise_to_floor(&8u64, 12);
        assert_eq!(c.key_counters(&8u64).min(), 12);
    }

    #[test]
    fn batch_engine_matches_singles_across_depth_boundaries() {
        // Exercise batch lengths around PIPELINE_DEPTH: empty, shorter than
        // the ring, exactly the ring, and several multiples past it.
        for n in [0usize, 1, 7, 8, 9, 40] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i % 11).collect();
            let mut single = core(512, 5, 7);
            let mut batch = core(512, 5, 7);
            for k in &keys {
                single.increment_all(k, 1);
            }
            batch.increment_batch(&keys);
            assert_eq!(batch.total_count(), single.total_count(), "n={n}");
            let probes: Vec<u64> = (0..16).collect();
            let mut got = Vec::new();
            batch.min_batch_into(&probes, &mut got);
            let want: Vec<u64> = probes
                .iter()
                .map(|p| single.key_counters(p).min())
                .collect();
            assert_eq!(got, want, "n={n}");
            // And the batched removal drains exactly what went in.
            batch.decrement_batch(&keys).unwrap();
            assert_eq!(batch.total_count(), 0, "n={n}");
        }
    }

    #[test]
    fn decrement_batch_stops_at_first_failure_with_prefix_applied() {
        let mut c = core(2048, 4, 2);
        c.increment_all(&1u64, 2);
        c.increment_all(&2u64, 1);
        let err = c.decrement_batch(&[1u64, 1, 1, 2]).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(matches!(err.error, RemoveError::Underflow { .. }));
        assert_eq!(c.key_counters(&1u64).min(), 0, "prefix applied");
        assert_eq!(c.key_counters(&2u64).min(), 1, "suffix untouched");
    }

    #[test]
    fn min_batch_reuses_buffer_without_stale_entries() {
        let mut c = core(256, 4, 3);
        c.increment_all(&5u64, 9);
        let mut out = vec![111, 222, 333, 444, 555];
        c.min_batch_into(&[5u64, 6u64], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], 9);
    }

    #[test]
    fn occupancy_counts_nonzero() {
        let mut c = core(100, 1, 6);
        assert_eq!(c.occupancy(), 0.0);
        c.increment_all(&1u64, 1);
        assert!((c.occupancy() - 0.01).abs() < 1e-9);
    }
}
