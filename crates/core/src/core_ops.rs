//! The shared machinery under every SBF algorithm: `k` hashed counters,
//! bulk increment/decrement, minima inspection, union and multiply.

use sbf_hash::{HashFamily, IndexBuf, Key, MAX_K};

use crate::store::{CounterStore, RemoveError};
use crate::DefaultFamily;

/// The counter values of one key, in hash-function order, plus the derived
/// minimum statistics the algorithms of §2–§3 decide on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyCounters {
    /// The `k` counter indices.
    pub indexes: IndexBuf,
    values: [u64; MAX_K],
    k: usize,
}

impl KeyCounters {
    /// The `k` counter values.
    pub fn values(&self) -> &[u64] {
        &self.values[..self.k]
    }

    /// The minimal counter value `m_x` — the Minimum Selection estimate.
    pub fn min(&self) -> u64 {
        self.values().iter().copied().min().unwrap_or(0)
    }

    /// How many of the `k` counters hold the minimum.
    pub fn min_multiplicity(&self) -> usize {
        let m = self.min();
        self.values().iter().filter(|&&v| v == m).count()
    }

    /// Whether the minimum recurs (appears in ≥ 2 counters) — the
    /// error-detection signal of the Recurring Minimum method (§3.3).
    pub fn has_recurring_min(&self) -> bool {
        self.min_multiplicity() >= 2
    }

    /// The position (within the `k` functions) of the single minimum, when
    /// there is exactly one.
    pub fn single_min_slot(&self) -> Option<usize> {
        let m = self.min();
        let mut found = None;
        for (slot, &v) in self.values().iter().enumerate() {
            if v == m {
                if found.is_some() {
                    return None;
                }
                found = Some(slot);
            }
        }
        found
    }

    /// Mean of the `k` counter values (used by the unbiased estimator).
    pub fn mean(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        self.values().iter().map(|&v| v as f64).sum::<f64>() / self.k as f64
    }
}

/// Hash family + counter store + multiplicity accounting.
///
/// Every SBF algorithm in this crate owns one (the Recurring Minimum
/// variants own two). The core does not choose an estimation policy; it
/// provides the operations the policies are written in.
#[derive(Debug, Clone)]
pub struct SbfCore<F: HashFamily = DefaultFamily, S: CounterStore = crate::PlainCounters> {
    family: F,
    store: S,
    total_count: u64,
}

impl<F: HashFamily, S: CounterStore> SbfCore<F, S> {
    /// Assembles a core from a hash family and a fresh store of matching
    /// length.
    pub fn from_family(family: F) -> Self {
        let store = S::with_len(family.m());
        SbfCore {
            family,
            store,
            total_count: 0,
        }
    }

    /// Assembles from explicit parts. `store.len()` must equal `family.m()`.
    pub fn with_parts(family: F, store: S) -> Self {
        assert_eq!(
            family.m(),
            store.len(),
            "hash range and store length disagree"
        );
        let total_count = 0;
        SbfCore {
            family,
            store,
            total_count,
        }
    }

    /// Number of counters `m`.
    pub fn m(&self) -> usize {
        self.family.m()
    }

    /// Number of hash functions `k`.
    pub fn k(&self) -> usize {
        self.family.k()
    }

    /// The hash family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The counter store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable counter store (for algorithm internals).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Total multiplicity currently represented (Σ inserts − Σ removes);
    /// the `N` of the unbiased estimator (Lemma 3).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// The load factor `γ = (total k-increments)/m` would need the distinct
    /// count; this reports the *occupancy*: fraction of non-zero counters.
    pub fn occupancy(&self) -> f64 {
        if self.store.len() == 0 {
            return 0.0;
        }
        let nz = (0..self.store.len())
            .filter(|&i| self.store.get(i) > 0)
            .count();
        nz as f64 / self.store.len() as f64
    }

    /// Reads the key's counters and minimum statistics.
    pub fn key_counters<K: Key + ?Sized>(&self, key: &K) -> KeyCounters {
        let indexes = self.family.indexes(key);
        let mut values = [0u64; MAX_K];
        for (slot, &i) in indexes.as_slice().iter().enumerate() {
            values[slot] = self.store.get(i);
        }
        KeyCounters {
            indexes,
            values,
            k: indexes.len(),
        }
    }

    /// Increments all `k` counters of `key` by `by` (duplicate indices are
    /// incremented once per occurrence, as in the paper's model).
    pub fn increment_all<K: Key + ?Sized>(&mut self, key: &K, by: u64) {
        let idx = self.family.indexes(key);
        for &i in idx.as_slice() {
            self.store.increment(i, by);
        }
        self.total_count += by;
    }

    /// Decrements all `k` counters by `by`; fails atomically (no counter is
    /// changed) if any would underflow.
    ///
    /// Duplicate indices (two hash functions landing on the same counter)
    /// are handled like the insert side: the counter is decremented once
    /// per occurrence, and the pre-check accounts for the multiplicity.
    pub fn decrement_all<K: Key + ?Sized>(&mut self, key: &K, by: u64) -> Result<(), RemoveError> {
        let idx = self.family.indexes(key);
        let slice = idx.as_slice();
        for (slot, &i) in slice.iter().enumerate() {
            if slice[..slot].contains(&i) {
                continue; // multiplicity already accounted at first sight
            }
            let mult = slice.iter().filter(|&&j| j == i).count() as u64;
            let need = by
                .checked_mul(mult)
                .ok_or(RemoveError::Underflow { index: i })?;
            if self.store.get(i) < need {
                return Err(RemoveError::Underflow { index: i });
            }
        }
        for &i in slice {
            self.store
                .decrement(i, by)
                .expect("pre-checked decrement cannot underflow");
        }
        self.total_count = self.total_count.saturating_sub(by);
        Ok(())
    }

    /// Decrements all `k` counters by `by`, clamping at zero. Used to
    /// reproduce Minimal Increase's behaviour under deletions (§3.2), where
    /// counters may legitimately sit below the amount being removed.
    pub fn decrement_all_saturating<K: Key + ?Sized>(&mut self, key: &K, by: u64) {
        let idx = self.family.indexes(key);
        for &i in idx.as_slice() {
            self.store.decrement_saturating(i, by);
        }
        self.total_count = self.total_count.saturating_sub(by);
    }

    /// Raises every counter of `key` to at least `floor` — the batch form
    /// of Minimal Increase (§3.2): *"increase the smallest counter(s) by r,
    /// and update every other counter to the maximum of its old value and
    /// m_x + r"*.
    pub fn raise_to_floor<K: Key + ?Sized>(&mut self, key: &K, floor: u64) {
        let idx = self.family.indexes(key);
        for &i in idx.as_slice() {
            if self.store.get(i) < floor {
                self.store.set(i, floor);
            }
        }
    }

    /// Bumps the internal multiplicity account (for algorithms that bypass
    /// [`Self::increment_all`]).
    pub fn add_to_total(&mut self, by: u64) {
        self.total_count += by;
    }

    /// Lowers the internal multiplicity account.
    pub fn sub_from_total(&mut self, by: u64) {
        self.total_count = self.total_count.saturating_sub(by);
    }

    /// Whether `other` was built with identical parameters and hash
    /// functions — the precondition for union and multiply (§2.2).
    pub fn compatible<S2: CounterStore>(&self, other: &SbfCore<F, S2>) -> bool
    where
        F: PartialEq,
    {
        self.family == other.family
    }

    /// Counter-wise addition: the distributed union of §2.2 (*"SBFs can be
    /// united simply by addition of their counter vectors"*).
    pub fn union_assign<S2: CounterStore>(&mut self, other: &SbfCore<F, S2>)
    where
        F: PartialEq,
    {
        assert!(
            self.compatible(other),
            "union requires identical parameters and hash functions"
        );
        for i in 0..self.store.len() {
            let o = other.store.get(i);
            if o > 0 {
                self.store.increment(i, o);
            }
        }
        self.total_count += other.total_count;
    }

    /// Counter-wise multiplication: the join synopsis of §2.2 (*"the
    /// counter vectors are linearly multiplied to generate an SBF
    /// representing the join of the two relations"*).
    pub fn multiply_assign<S2: CounterStore>(&mut self, other: &SbfCore<F, S2>)
    where
        F: PartialEq,
    {
        assert!(
            self.compatible(other),
            "multiply requires identical parameters and hash functions"
        );
        let mut total = 0u64;
        for i in 0..self.store.len() {
            let v = self
                .store
                .get(i)
                .checked_mul(other.store.get(i))
                .expect("join counter overflow");
            self.store.set(i, v);
            total = total.saturating_add(v);
        }
        // Multiplicity accounting is heuristic after a multiply; expose the
        // counter mass divided by k as the best available figure.
        self.total_count = total / self.k().max(1) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PlainCounters;
    use sbf_hash::MixFamily;

    type Core = SbfCore<MixFamily, PlainCounters>;

    fn core(m: usize, k: usize, seed: u64) -> Core {
        SbfCore::from_family(MixFamily::new(m, k, seed))
    }

    #[test]
    fn increment_then_min_is_at_least_count() {
        let mut c = core(1024, 5, 1);
        c.increment_all(&7u64, 3);
        c.increment_all(&7u64, 2);
        assert!(c.key_counters(&7u64).min() >= 5);
        assert_eq!(c.total_count(), 5);
    }

    #[test]
    fn decrement_is_atomic_on_underflow() {
        let mut c = core(64, 4, 2);
        c.increment_all(&1u64, 2);
        let before: Vec<u64> = (0..64).map(|i| c.store().get(i)).collect();
        assert!(c.decrement_all(&1u64, 3).is_err());
        let after: Vec<u64> = (0..64).map(|i| c.store().get(i)).collect();
        assert_eq!(before, after, "failed removal must not change any counter");
        assert!(c.decrement_all(&1u64, 2).is_ok());
        assert_eq!(c.key_counters(&1u64).min(), 0);
    }

    #[test]
    fn recurring_minimum_detection() {
        let mut c = core(4096, 5, 3);
        c.increment_all(&99u64, 10);
        let kc = c.key_counters(&99u64);
        // With an empty filter all k counters are exactly 10.
        assert_eq!(kc.min(), 10);
        assert!(kc.has_recurring_min());
        assert_eq!(kc.single_min_slot(), None);
        assert_eq!(kc.min_multiplicity(), 5);
    }

    #[test]
    fn single_min_slot_identified() {
        let mut c = core(4096, 3, 4);
        c.increment_all(&5u64, 1);
        // Manually bump two of the three counters to fabricate a single min.
        let idx = c.family().indexes(&5u64);
        c.store_mut().increment(idx[0], 7);
        c.store_mut().increment(idx[1], 7);
        let kc = c.key_counters(&5u64);
        assert_eq!(kc.single_min_slot(), Some(2));
        assert!(!kc.has_recurring_min());
    }

    #[test]
    fn union_adds_counters() {
        let mut a = core(512, 4, 9);
        let mut b = core(512, 4, 9);
        a.increment_all(&10u64, 3);
        b.increment_all(&10u64, 4);
        b.increment_all(&20u64, 1);
        a.union_assign(&b);
        assert!(a.key_counters(&10u64).min() >= 7);
        assert!(a.key_counters(&20u64).min() >= 1);
        assert_eq!(a.total_count(), 8);
    }

    #[test]
    #[should_panic(expected = "identical parameters")]
    fn union_rejects_different_seeds() {
        let mut a = core(512, 4, 9);
        let b = core(512, 4, 10);
        a.union_assign(&b);
    }

    #[test]
    fn multiply_zeroes_disjoint_keys() {
        let mut a = core(2048, 5, 11);
        let mut b = core(2048, 5, 11);
        a.increment_all(&1u64, 5);
        b.increment_all(&1u64, 3);
        a.increment_all(&2u64, 5); // only in a
        b.increment_all(&3u64, 4); // only in b
        a.multiply_assign(&b);
        assert!(a.key_counters(&1u64).min() >= 15);
        assert_eq!(a.key_counters(&2u64).min(), 0);
        assert_eq!(a.key_counters(&3u64).min(), 0);
    }

    #[test]
    fn raise_to_floor_only_raises() {
        let mut c = core(256, 4, 5);
        c.increment_all(&8u64, 10);
        c.raise_to_floor(&8u64, 6); // below current values: no-op
        assert_eq!(c.key_counters(&8u64).min(), 10);
        c.raise_to_floor(&8u64, 12);
        assert_eq!(c.key_counters(&8u64).min(), 12);
    }

    #[test]
    fn occupancy_counts_nonzero() {
        let mut c = core(100, 1, 6);
        assert_eq!(c.occupancy(), 0.0);
        c.increment_all(&1u64, 1);
        assert!((c.occupancy() - 0.01).abs() < 1e-9);
    }
}
