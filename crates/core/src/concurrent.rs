//! A thread-safe wrapper for ingesting streams from multiple producers.
//!
//! The paper's streaming scenario (§1.1.4) has data arriving faster than a
//! single consumer comfortably handles; [`SharedSketch`] is a cheaply
//! cloneable handle over a [`ShardedSketch`], so several ingest threads can
//! feed one logical filter while query threads read it.
//!
//! With [`SharedSketch::new`] there is a single shard and the behaviour is
//! the classic `Arc<RwLock<…>>`: writes take the exclusive lock, reads
//! share. With [`SharedSketch::with_shards`] keys are hash-partitioned and
//! each shard has its own lock, so producers on different shards never
//! contend — the right shape for MI/RM whose inserts are read-modify-write
//! and cannot go lock-free. For Minimum Selection, which *can* go
//! lock-free, prefer [`crate::AtomicMsSbf`].

use crate::sync::Arc;

use sbf_hash::Key;

use crate::params::{FromParams, SbfParams};
use crate::sharded::{ShardMerge, ShardedSketch};
use crate::sketch::{BatchRemoveError, MultisetSketch, SketchReader};
use crate::store::RemoveError;

/// A cheaply-cloneable, thread-safe handle to a (possibly sharded) sketch.
#[derive(Debug)]
pub struct SharedSketch<SK> {
    inner: Arc<ShardedSketch<SK>>,
}

impl<SK> Clone for SharedSketch<SK> {
    fn clone(&self) -> Self {
        SharedSketch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<SK: MultisetSketch> SharedSketch<SK> {
    /// Wraps a sketch behind a single lock (one shard).
    pub fn new(sketch: SK) -> Self {
        Self::sharded(ShardedSketch::from_shards(vec![sketch]))
    }

    /// Builds `n` hash-partitioned shards from a constructor called with
    /// each shard index; the constructor must produce identically
    /// parameterised sketches (see [`ShardedSketch::with_shards`]).
    pub fn with_shards(n: usize, make: impl FnMut(usize) -> SK) -> Self {
        Self::sharded(ShardedSketch::with_shards(n, make))
    }

    /// Wraps an existing sharded sketch.
    pub fn sharded(sketch: ShardedSketch<SK>) -> Self {
        SharedSketch {
            inner: Arc::new(sketch),
        }
    }

    /// Builds `n` identically parameterised shards sized by `params` (see
    /// [`ShardedSketch::from_params`]).
    pub fn from_params(n: usize, params: &SbfParams, seed: u64) -> Self
    where
        SK: FromParams,
    {
        Self::sharded(ShardedSketch::from_params(n, params, seed))
    }

    /// Number of shards behind this handle.
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// The underlying sharded sketch.
    pub fn inner(&self) -> &ShardedSketch<SK> {
        &self.inner
    }

    /// Adds `count` occurrences of `key` (locks only the owning shard).
    pub fn insert_by<K: Key + ?Sized>(&self, key: &K, count: u64) {
        self.inner.insert_by(key, count);
    }

    /// Adds one occurrence of `key`.
    pub fn insert<K: Key + ?Sized>(&self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Adds a batch of keys, grouped per shard to amortise lock traffic.
    pub fn insert_batch<K: Key>(&self, keys: &[K]) {
        self.inner.insert_batch(keys);
    }

    /// Removes `count` occurrences of `key`.
    pub fn remove_by<K: Key + ?Sized>(&self, key: &K, count: u64) -> Result<(), RemoveError> {
        self.inner.remove_by(key, count)
    }

    /// Removes one occurrence of `key`.
    pub fn remove<K: Key + ?Sized>(&self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Removes one occurrence of every key, in order, stopping at the first
    /// failure (see [`ShardedSketch::remove_batch`]).
    pub fn remove_batch<K: Key>(&self, keys: &[K]) -> Result<(), BatchRemoveError> {
        self.inner.remove_batch(keys)
    }

    /// Estimates the multiplicity of `key`.
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        self.inner.estimate(key)
    }

    /// Estimates every key through the partitioned batch path (see
    /// [`ShardedSketch::estimate_batch_into`]).
    pub fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        self.inner.estimate_batch_into(keys, out);
    }

    /// Convenience form of [`SharedSketch::estimate_batch_into`].
    pub fn estimate_batch<K: Key>(&self, keys: &[K]) -> Vec<u64> {
        self.inner.estimate_batch(keys)
    }

    /// Spectral threshold test.
    pub fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.inner.passes_threshold(key, threshold)
    }

    /// Total multiplicity represented (sums shard totals).
    pub fn total_count(&self) -> u64 {
        self.inner.total_count()
    }

    /// Unions the shards into one sketch by §5 counter addition.
    pub fn snapshot(&self) -> SK
    where
        SK: ShardMerge + Clone,
    {
        self.inner.snapshot()
    }

    /// Cached variant of [`SharedSketch::snapshot`]: reuses the previous
    /// union until a shard mutates (see
    /// [`ShardedSketch::snapshot_cached`]).
    pub fn snapshot_cached(&self) -> Arc<SK>
    where
        SK: ShardMerge + Clone,
    {
        self.inner.snapshot_cached()
    }

    /// Publishes per-shard load gauges (see
    /// [`ShardedSketch::publish_metrics`]).
    pub fn publish_metrics(&self) {
        self.inner.publish_metrics();
    }

    /// Runs `f` with shared read access to the sketch (for bulk queries
    /// without per-call lock traffic). Only valid on single-shard handles —
    /// with multiple shards there is no one sketch to borrow; use
    /// [`SharedSketch::snapshot`] or [`ShardedSketch::with_shard_read`].
    pub fn with_read<R>(&self, f: impl FnOnce(&SK) -> R) -> R {
        assert_eq!(
            self.inner.num_shards(),
            1,
            "with_read requires a single shard; snapshot() a sharded sketch instead"
        );
        self.inner.with_shard_read(0, f)
    }
}

impl<SK: MultisetSketch> SketchReader for SharedSketch<SK> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        self.inner.estimate(key)
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        self.inner.estimate_batch_into(keys, out);
    }

    fn total_count(&self) -> u64 {
        self.inner.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.inner.storage_bits()
    }

    fn occupancy(&self) -> f64 {
        SketchReader::occupancy(&*self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi::MiSbf;
    use crate::ms::MsSbf;

    #[test]
    fn concurrent_inserts_account_everything() {
        let shared = SharedSketch::new(MsSbf::new(1 << 14, 5, 1));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = shared.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.insert(&(t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(shared.total_count(), 4000);
        for t in 0..4u64 {
            assert!(shared.estimate(&(t * 10_000)) >= 1);
        }
    }

    #[test]
    fn readers_run_alongside_writers() {
        let shared = SharedSketch::new(MsSbf::new(4096, 5, 2));
        shared.insert_by(&7u64, 3);
        std::thread::scope(|scope| {
            let w = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    w.insert(&7u64);
                }
            });
            let r = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    assert!(r.estimate(&7u64) >= 3);
                }
            });
        });
        assert!(shared.estimate(&7u64) >= 503);
    }

    #[test]
    fn with_read_gives_bulk_access() {
        let shared = SharedSketch::new(MsSbf::new(1024, 4, 3));
        shared.insert_by(&1u64, 5);
        let total: u64 = shared.with_read(|s| (0u64..10).map(|k| s.estimate(&k)).sum());
        assert!(total >= 5);
    }

    #[test]
    fn sharded_handle_batches_and_snapshots() {
        let shared = SharedSketch::with_shards(4, |_| MiSbf::new(8192, 5, 6));
        let keys: Vec<u64> = (0..2000).map(|i| i % 250).collect();
        std::thread::scope(|scope| {
            for chunk in keys.chunks(500) {
                let h = shared.clone();
                scope.spawn(move || h.insert_batch(chunk));
            }
        });
        assert_eq!(shared.total_count(), 2000);
        let merged = shared.snapshot();
        for key in 0u64..250 {
            assert!(merged.estimate(&key) >= 8, "undercount for {key}");
        }
    }

    #[test]
    #[should_panic(expected = "single shard")]
    fn with_read_rejects_multiple_shards() {
        let shared = SharedSketch::with_shards(2, |_| MsSbf::new(256, 4, 1));
        shared.with_read(|s| s.total_count());
    }
}
