//! A thread-safe wrapper for ingesting streams from multiple producers.
//!
//! The paper's streaming scenario (§1.1.4) has data arriving faster than a
//! single consumer comfortably handles; [`SharedSketch`] wraps any
//! [`MultisetSketch`] in an `Arc<RwLock<…>>` so several ingest threads can
//! feed one filter while query threads read it. Writes take the exclusive
//! lock (SBF inserts touch `k` scattered counters, so finer-grained locking
//! would buy little without sharding); reads share.

use std::sync::Arc;

use parking_lot::RwLock;
use sbf_hash::Key;

use crate::sketch::MultisetSketch;
use crate::store::RemoveError;

/// A cheaply-cloneable, thread-safe handle to a sketch.
#[derive(Debug, Default)]
pub struct SharedSketch<SK> {
    inner: Arc<RwLock<SK>>,
}

impl<SK> Clone for SharedSketch<SK> {
    fn clone(&self) -> Self {
        SharedSketch { inner: Arc::clone(&self.inner) }
    }
}

impl<SK: MultisetSketch> SharedSketch<SK> {
    /// Wraps a sketch.
    pub fn new(sketch: SK) -> Self {
        SharedSketch { inner: Arc::new(RwLock::new(sketch)) }
    }

    /// Adds `count` occurrences of `key`.
    pub fn insert_by<K: Key + ?Sized>(&self, key: &K, count: u64) {
        self.inner.write().insert_by(key, count);
    }

    /// Adds one occurrence of `key`.
    pub fn insert<K: Key + ?Sized>(&self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Removes `count` occurrences of `key`.
    pub fn remove_by<K: Key + ?Sized>(&self, key: &K, count: u64) -> Result<(), RemoveError> {
        self.inner.write().remove_by(key, count)
    }

    /// Removes one occurrence of `key`.
    pub fn remove<K: Key + ?Sized>(&self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Estimates the multiplicity of `key`.
    pub fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        self.inner.read().estimate(key)
    }

    /// Spectral threshold test.
    pub fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.inner.read().passes_threshold(key, threshold)
    }

    /// Total multiplicity represented.
    pub fn total_count(&self) -> u64 {
        self.inner.read().total_count()
    }

    /// Runs `f` with shared read access to the sketch (for bulk queries
    /// without per-call lock traffic).
    pub fn with_read<R>(&self, f: impl FnOnce(&SK) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;

    #[test]
    fn concurrent_inserts_account_everything() {
        let shared = SharedSketch::new(MsSbf::new(1 << 14, 5, 1));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = shared.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.insert(&(t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(shared.total_count(), 4000);
        for t in 0..4u64 {
            assert!(shared.estimate(&(t * 10_000)) >= 1);
        }
    }

    #[test]
    fn readers_run_alongside_writers() {
        let shared = SharedSketch::new(MsSbf::new(4096, 5, 2));
        shared.insert_by(&7u64, 3);
        std::thread::scope(|scope| {
            let w = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    w.insert(&7u64);
                }
            });
            let r = shared.clone();
            scope.spawn(move || {
                for _ in 0..500 {
                    assert!(r.estimate(&7u64) >= 3);
                }
            });
        });
        assert!(shared.estimate(&7u64) >= 503);
    }

    #[test]
    fn with_read_gives_bulk_access() {
        let shared = SharedSketch::new(MsSbf::new(1024, 4, 3));
        shared.insert_by(&1u64, 5);
        let total: u64 = shared.with_read(|s| (0u64..10).map(|k| s.estimate(&k)).sum());
        assert!(total >= 5);
    }
}
