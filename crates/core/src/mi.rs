//! Minimal Increase — the insert-only accuracy booster of §3.2.

use sbf_hash::{HashFamily, Key};

use crate::core_ops::{pipelined_batch, SbfCore};
use crate::metrics;
use crate::num;
use crate::params::{FromParams, SbfParams};
use crate::sketch::{MultisetSketch, SketchReader};
use crate::store::{CounterStore, PlainCounters, RemoveError};
use crate::DefaultFamily;

/// The Minimal Increase SBF: on insert, only counters equal to the current
/// minimum are raised, performing "the minimal number of increases needed
/// to maintain `m_x ≥ f_x`".
///
/// Claim 4: MI's error probability and error size never exceed Minimum
/// Selection's; Claim 5: on uniform data the error probability drops by a
/// factor of `k`. The price (§3.2, "Minimal Increase and deletions"): the
/// method cannot support deletions — removing items introduces *false
/// negatives*. [`MultisetSketch::remove_by`] therefore returns
/// [`RemoveError::Unsupported`] by default; the experiments that reproduce
/// the paper's Figure 8/9 breakdown call [`MiSbf::remove_unchecked`]
/// explicitly.
///
/// ```
/// use spectral_bloom::{MiSbf, MultisetSketch, SketchReader};
///
/// let mut mi = MiSbf::new(2048, 5, 1);
/// mi.insert_by(&"query", 41);
/// mi.insert(&"query");
/// assert_eq!(mi.estimate(&"query"), 42);
/// assert!(mi.remove(&"query").is_err(), "MI refuses deletions");
/// ```
#[derive(Debug, Clone)]
pub struct MiSbf<F: HashFamily = DefaultFamily, S: CounterStore = PlainCounters> {
    core: SbfCore<F, S>,
    allow_deletions: bool,
}

impl MiSbf<DefaultFamily, PlainCounters> {
    /// An MI filter with `m` counters, `k` hash functions. Prefer
    /// [`FromParams::from_params`] when sizing from a capacity/error target.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        Self::from_family(DefaultFamily::new(m, k, seed))
    }
}

impl FromParams for MiSbf<DefaultFamily, PlainCounters> {
    fn from_params(params: &SbfParams, seed: u64) -> Self {
        let (m, k) = params.dimensions();
        Self::new(m, k, seed)
    }
}

impl<F: HashFamily, S: CounterStore> MiSbf<F, S> {
    /// Builds over an explicit hash family.
    pub fn from_family(family: F) -> Self {
        MiSbf {
            core: SbfCore::from_family(family),
            allow_deletions: false,
        }
    }

    /// Opts in to (unsound) deletions, reproducing the paper's negative
    /// result: after deletions MI "becomes practically unusable" with
    /// false-negative errors 1–2 orders of magnitude above RM.
    pub fn with_unchecked_deletions(mut self) -> Self {
        self.allow_deletions = true;
        self
    }

    /// The underlying core.
    pub fn core(&self) -> &SbfCore<F, S> {
        &self.core
    }

    /// Unites another MI filter into this one by counter addition (§5).
    ///
    /// The sum is not the filter MI itself would have built over the
    /// combined stream (MI's floor rule is order-dependent), but every
    /// counter still dominates each key's combined true count, so
    /// estimates stay one-sided upper bounds — this is what lets
    /// [`crate::ShardedSketch`] union MI shards.
    pub fn union_assign<S2: CounterStore>(&mut self, other: &MiSbf<F, S2>)
    where
        F: PartialEq,
    {
        self.core.union_assign(&other.core);
    }

    /// Deletes by decrementing all counters, clamping at zero — the
    /// operation the paper warns about. Available regardless of the
    /// `allow_deletions` flag so experiments can show the damage.
    pub fn remove_unchecked<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        self.core.decrement_all_saturating(key, count);
    }
}

impl<F: HashFamily, S: CounterStore> SketchReader for MiSbf<F, S> {
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64 {
        let est = self.core.key_counters(key).min();
        metrics::on(|m| {
            m.estimates.inc();
            m.estimate_values.observe(est);
        });
        est
    }

    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        self.core.min_batch_into(keys, out);
        metrics::on(|m| {
            m.estimates.add(num::to_u64(keys.len()));
            for &est in out.iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn estimate_batch_picked_into<K: Key>(&self, keys: &[K], picks: &[u32], out: &mut Vec<u64>) {
        out.reserve(picks.len());
        let before = out.len();
        pipelined_batch!(
            picks,
            hash = |j, slot| self.core.key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.core.prefetch_idx(idx),
            apply = |_i, idx| out.push(self.core.min_of_idx(idx))
        );
        metrics::on(|m| {
            m.estimates.add(num::to_u64(picks.len()));
            for &est in out[before..].iter() {
                m.estimate_values.observe(est);
            }
        });
    }

    fn total_count(&self) -> u64 {
        self.core.total_count()
    }

    fn storage_bits(&self) -> usize {
        self.core.store().storage_bits()
    }

    fn occupancy(&self) -> f64 {
        self.core.occupancy()
    }
}

impl<F: HashFamily, S: CounterStore> MultisetSketch for MiSbf<F, S> {
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) {
        metrics::on(|m| m.inserts.inc());
        // §3.2: "increase the smallest counter(s) by r, and update every
        // other counter to the maximum of its old value and m_x + r".
        let idx = self.core.key_indexes(key);
        let mx = self.core.key_counters_idx(&idx).min();
        self.core.raise_to_floor_idx(&idx, mx + count);
        self.core.add_to_total(count);
    }

    fn insert_batch<K: Key>(&mut self, keys: &[K]) {
        metrics::on(|m| m.inserts.add(num::to_u64(keys.len())));
        // MI's floor rule is order-dependent; the pipeline only hashes and
        // prefetches ahead, each floor update still sees every earlier one.
        pipelined_batch!(
            keys,
            hash = |key, slot| self.core.key_indexes_into(key, slot),
            prefetch = |idx| self.core.prefetch_idx_write(idx),
            apply = |_i, idx| {
                let mx = self.core.key_counters_idx(idx).min();
                self.core.raise_to_floor_idx(idx, mx + 1);
                self.core.add_to_total(1);
            }
        );
    }

    fn insert_batch_picked<K: Key>(&mut self, keys: &[K], picks: &[u32]) {
        metrics::on(|m| m.inserts.add(num::to_u64(picks.len())));
        pipelined_batch!(
            picks,
            hash = |j, slot| self.core.key_indexes_into(&keys[num::to_usize(*j)], slot),
            prefetch = |idx| self.core.prefetch_idx_write(idx),
            apply = |_i, idx| {
                let mx = self.core.key_counters_idx(idx).min();
                self.core.raise_to_floor_idx(idx, mx + 1);
                self.core.add_to_total(1);
            }
        );
    }

    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError> {
        if !self.allow_deletions {
            return Err(RemoveError::Unsupported);
        }
        metrics::on(|m| m.removes.inc());
        self.remove_unchecked(key, count);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;

    #[test]
    fn one_sided_without_deletions() {
        let mut mi = MiSbf::new(2048, 5, 1);
        for key in 0u64..300 {
            for _ in 0..(key % 7 + 1) {
                mi.insert(&key);
            }
        }
        for key in 0u64..300 {
            assert!(mi.estimate(&key) > key % 7, "false negative for {key}");
        }
    }

    #[test]
    fn batch_insert_equals_iterated_insert() {
        let mut a = MiSbf::new(512, 5, 2);
        let mut b = MiSbf::new(512, 5, 2);
        let keys = [3u64, 9, 3, 27, 81, 3, 9];
        for &k in &keys {
            a.insert(&k);
        }
        b.insert_by(&3u64, 3);
        b.insert_by(&9u64, 2);
        b.insert_by(&27u64, 1);
        b.insert_by(&81u64, 1);
        // Batch order differs from interleaved order, so counters may not be
        // bit-identical; but estimates of inserted keys must still dominate
        // the true counts, and on an otherwise-empty filter they are equal.
        assert_eq!(a.estimate(&3u64), 3);
        assert_eq!(b.estimate(&3u64), 3);
        assert_eq!(b.estimate(&9u64), 2);
    }

    #[test]
    fn never_worse_than_ms_on_same_stream() {
        // Claim 4: per-key error of MI ≤ error of MS.
        let mut ms = MsSbf::new(700, 5, 3);
        let mut mi = MiSbf::new(700, 5, 3);
        // Dense load to force collisions.
        let stream: Vec<u64> = (0..5000).map(|i| (i * 17) % 400).collect();
        for &x in &stream {
            use crate::sketch::MultisetSketch as _;
            ms.insert(&x);
            mi.insert(&x);
        }
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for (&x, &f) in &truth {
            let e_ms = ms.estimate(&x) - f;
            let e_mi = mi.estimate(&x).saturating_sub(f);
            assert!(e_mi <= e_ms, "key {x}: MI error {e_mi} > MS error {e_ms}");
        }
    }

    #[test]
    fn remove_is_refused_by_default() {
        let mut mi = MiSbf::new(128, 4, 4);
        mi.insert(&1u64);
        // The refusal is `Unsupported`, not an `Underflow` with a
        // fabricated counter index a caller could mistakenly index with.
        assert_eq!(mi.remove(&1u64), Err(RemoveError::Unsupported));
        assert_eq!(mi.estimate(&1u64), 1, "refused remove must not mutate");
    }

    #[test]
    fn unchecked_deletions_can_create_false_negatives() {
        // Construct the §3.2 failure: y shares counters with x; inserting x
        // via MI leaves some of y's counters low, so deleting y drags x's
        // counters below f_x.
        let mut mi = MiSbf::new(8, 1, 5).with_unchecked_deletions();
        // With k = 1 and m = 8 collisions are certain among 20 keys.
        let mut colliding = None;
        let idx0 = mi.core().family().indexes(&0u64)[0];
        for cand in 1u64..40 {
            if mi.core().family().indexes(&cand)[0] == idx0 {
                colliding = Some(cand);
                break;
            }
        }
        let y = colliding.expect("collision must exist in 8 slots");
        mi.insert_by(&0u64, 5);
        mi.insert_by(&y, 2); // MI: counter already ≥ 5+2? min is 5, floor 7
        mi.remove_by(&y, 2).unwrap();
        // Counter is now 5 + 2 − 2 = 5 only if MI raised it; the point is the
        // estimate may drop below the true count in adversarial orders.
        // Reverse order demonstrates the drop:
        let mut mi2 = MiSbf::new(8, 1, 5).with_unchecked_deletions();
        mi2.insert_by(&y, 2);
        mi2.insert_by(&0u64, 5); // floor = 2 + 5 = 7 (shared counter)
        mi2.remove_by(&y, 2).unwrap(); // counter 7 → 5: still fine
        mi2.remove_by(&y, 2).unwrap(); // y over-deleted: counter 5 → 3 < 5
        assert!(mi2.estimate(&0u64) < 5, "expected a false negative");
    }
}
