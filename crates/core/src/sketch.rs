//! The `MultisetSketch` abstraction shared by all SBF algorithms.

use sbf_hash::Key;

use crate::store::RemoveError;

/// A sketch answering multiplicity queries over a dynamic multiset.
///
/// Every SBF variant implements this, so applications — iceberg queries,
/// range trees, Bloomjoins, bifocal sampling — are written once and run
/// under any estimation policy. The contract mirrors the paper's claims:
///
/// * **One-sided for MS/RM**: `estimate(x) ≥ f_x` always holds for the
///   Minimum Selection and Recurring Minimum families; Minimal Increase
///   preserves it only while no removals occur (§3.2).
/// * `remove` of a key truly present `count` times always succeeds for the
///   MS/RM families.
pub trait MultisetSketch {
    /// Adds `count` occurrences of `key`.
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64);

    /// Adds one occurrence of `key`.
    fn insert<K: Key + ?Sized>(&mut self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Removes `count` occurrences of `key`.
    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError>;

    /// Removes one occurrence of `key`.
    fn remove<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Estimates the multiplicity `f̂_key`.
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64;

    /// Membership test: `f̂ > 0` (identical to a plain Bloom filter, §2.2).
    fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test: `f̂ ≥ threshold`, false positives only (for
    /// the one-sided algorithms).
    fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.estimate(key) >= threshold
    }

    /// Total multiplicity currently represented.
    fn total_count(&self) -> u64;

    /// Storage footprint in bits.
    fn storage_bits(&self) -> usize;
}
