//! The query/update abstractions shared by all SBF algorithms:
//! [`SketchReader`] for shared-reference queries, [`MultisetSketch`] for
//! the full update contract — both in single-item and batched form.

use sbf_hash::Key;

use crate::num;
use crate::store::RemoveError;

/// A removal inside a batch failed.
///
/// Batched removals apply items in order and stop at the first failure:
/// items before [`BatchRemoveError::index`] are fully applied, the failing
/// item and everything after it are untouched — exactly the state an
/// item-at-a-time loop that `?`s on the first error would leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRemoveError {
    /// Position (within the batch) of the key whose removal failed.
    pub index: usize,
    /// Why that removal failed.
    pub error: RemoveError,
}

impl std::fmt::Display for BatchRemoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch removal failed at item {}: {}",
            self.index, self.error
        )
    }
}

impl std::error::Error for BatchRemoveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Read-only multiplicity queries by `&self`.
///
/// This is the half of the sketch contract that concurrent backends can
/// honour without exclusive access: [`crate::AtomicMsSbf`],
/// [`crate::SharedSketch`] and [`crate::ShardedSketch`] implement it
/// alongside the four single-threaded algorithms, so query-side code —
/// iceberg scans, join candidate filtering — is written once over any
/// backend.
///
/// The accuracy contract mirrors the paper's claims: estimates are
/// one-sided (`estimate(x) ≥ f_x`) for the Minimum Selection and Recurring
/// Minimum families; Minimal Increase preserves this only while no removals
/// occur (§3.2).
///
/// # Batched queries
///
/// [`SketchReader::estimate_batch_into`] answers many keys in one call and
/// returns **bit-identical** results to per-key [`SketchReader::estimate`]
/// — backends override it only to go faster (software-pipelined hashing
/// with counter prefetch, one lock acquisition per shard), never to change
/// answers.
pub trait SketchReader {
    /// Estimates the multiplicity `f̂_key`.
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64;

    /// Estimates every key of `keys`, writing the results into `out`
    /// (cleared first; `out[i]` answers `keys[i]`).
    ///
    /// Results are exactly those of calling [`SketchReader::estimate`] per
    /// key. Passing a reused buffer keeps the steady-state allocation count
    /// at zero.
    fn estimate_batch_into<K: Key>(&self, keys: &[K], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(keys.len());
        for key in keys {
            out.push(self.estimate(key));
        }
    }

    /// Convenience form of [`SketchReader::estimate_batch_into`] returning
    /// a fresh `Vec`.
    fn estimate_batch<K: Key>(&self, keys: &[K]) -> Vec<u64> {
        let mut out = Vec::new();
        self.estimate_batch_into(keys, &mut out);
        out
    }

    /// Estimates the keys selected by `picks` (indices into `keys`), in
    /// pick order, **appending** one result per pick to `out` (not clearing
    /// it — callers accumulate across several picked sub-batches).
    ///
    /// This is the indirection [`crate::ShardedSketch`] batches through: it
    /// partitions a batch into per-shard pick lists once and hands each
    /// shard its picks, so the scratch buffers hold plain indices rather
    /// than borrowed keys. Results are exactly per-key
    /// [`SketchReader::estimate`] calls.
    fn estimate_batch_picked_into<K: Key>(&self, keys: &[K], picks: &[u32], out: &mut Vec<u64>) {
        out.reserve(picks.len());
        for &j in picks {
            out.push(self.estimate(&keys[num::to_usize(j)]));
        }
    }

    /// Membership test: `f̂ > 0` (identical to a plain Bloom filter, §2.2).
    fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test: `f̂ ≥ threshold`, false positives only (for
    /// the one-sided algorithms).
    fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.estimate(key) >= threshold
    }

    /// Total multiplicity currently represented.
    fn total_count(&self) -> u64;

    /// Storage footprint in bits.
    fn storage_bits(&self) -> usize;

    /// Fraction of non-zero counters (the load signal telemetry publishes
    /// per shard; `0.0` for an empty sketch).
    fn occupancy(&self) -> f64;
}

/// A sketch answering multiplicity queries over a dynamic multiset, with
/// updates.
///
/// Every single-threaded SBF variant implements this, so applications —
/// iceberg queries, range trees, Bloomjoins, bifocal sampling — are written
/// once and run under any estimation policy. Query-only code should bound
/// on the [`SketchReader`] supertrait instead, which the concurrent
/// backends also implement. The update contract:
///
/// * `remove` of a key truly present `count` times always succeeds for the
///   MS/RM families; Minimal Increase refuses with
///   [`RemoveError::Unsupported`].
///
/// Prefer constructing implementations through
/// [`crate::params::FromParams`] (capacity/error-rate sizing in one place)
/// over the positional `new(m, k, seed)` constructors.
///
/// # Batched updates
///
/// [`MultisetSketch::insert_batch`] and [`MultisetSketch::remove_batch`]
/// apply the items **in order** and leave the sketch in exactly the state
/// the item-at-a-time loop would (removals stop at the first failure, see
/// [`BatchRemoveError`]). Backends override them for throughput only:
/// hashing item `i+D` and prefetching its counter lines while item `i` is
/// applied hides the cache-miss latency that dominates at production `m`.
pub trait MultisetSketch: SketchReader {
    /// Adds `count` occurrences of `key`.
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64);

    /// Adds one occurrence of `key`.
    fn insert<K: Key + ?Sized>(&mut self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Adds one occurrence of every key in `keys`, in order. Equivalent to
    /// — and bit-identical with — inserting each in turn.
    fn insert_batch<K: Key>(&mut self, keys: &[K]) {
        for key in keys {
            self.insert(key);
        }
    }

    /// Adds one occurrence of each key selected by `picks` (indices into
    /// `keys`), in pick order — the mutation-side counterpart of
    /// [`SketchReader::estimate_batch_picked_into`], used by
    /// [`crate::ShardedSketch`] to hand each shard its partition of a batch
    /// without materialising per-shard key slices.
    fn insert_batch_picked<K: Key>(&mut self, keys: &[K], picks: &[u32]) {
        for &j in picks {
            self.insert(&keys[num::to_usize(j)]);
        }
    }

    /// Removes `count` occurrences of `key`.
    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError>;

    /// Removes one occurrence of `key`.
    fn remove<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }

    /// Removes one occurrence of every key in `keys`, in order, stopping at
    /// the first failure (the applied prefix stays applied — the same state
    /// an item-at-a-time loop returning on first error leaves).
    fn remove_batch<K: Key>(&mut self, keys: &[K]) -> Result<(), BatchRemoveError> {
        for (index, key) in keys.iter().enumerate() {
            self.remove(key)
                .map_err(|error| BatchRemoveError { index, error })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;

    #[test]
    fn default_batch_methods_match_singles() {
        let mut a = MsSbf::new(1024, 4, 1);
        let mut b = MsSbf::new(1024, 4, 1);
        let keys: Vec<u64> = (0..200).map(|i| i % 40).collect();
        // Route through the *default* trait bodies to pin their contract.
        fn insert_default<S: MultisetSketch, K: Key>(s: &mut S, keys: &[K]) {
            for key in keys {
                s.insert(key);
            }
        }
        insert_default(&mut a, &keys);
        b.insert_batch(&keys);
        let probes: Vec<u64> = (0..60).collect();
        assert_eq!(a.estimate_batch(&probes), b.estimate_batch(&probes));
        assert_eq!(a.total_count(), b.total_count());
    }

    #[test]
    fn remove_batch_stops_at_first_failure() {
        let mut sbf = MsSbf::new(2048, 4, 2);
        sbf.insert_by(&1u64, 2);
        sbf.insert_by(&2u64, 1);
        // 1, 1 succeed; the third removal of 1 underflows; 2 is never touched.
        let err = sbf.remove_batch(&[1u64, 1, 1, 2]).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(matches!(err.error, RemoveError::Underflow { .. }));
        assert_eq!(sbf.estimate(&1u64), 0);
        assert_eq!(sbf.estimate(&2u64), 1, "items after the failure stay");
    }

    #[test]
    fn batch_remove_error_displays_and_sources() {
        let e = BatchRemoveError {
            index: 3,
            error: RemoveError::Unsupported,
        };
        assert!(e.to_string().contains("item 3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
