//! The query/update abstractions shared by all SBF algorithms:
//! [`SketchReader`] for shared-reference queries, [`MultisetSketch`] for
//! the full update contract.

use sbf_hash::Key;

use crate::store::RemoveError;

/// Read-only multiplicity queries by `&self`.
///
/// This is the half of the sketch contract that concurrent backends can
/// honour without exclusive access: [`crate::AtomicMsSbf`],
/// [`crate::SharedSketch`] and [`crate::ShardedSketch`] implement it
/// alongside the four single-threaded algorithms, so query-side code —
/// iceberg scans, join candidate filtering — is written once over any
/// backend.
///
/// The accuracy contract mirrors the paper's claims: estimates are
/// one-sided (`estimate(x) ≥ f_x`) for the Minimum Selection and Recurring
/// Minimum families; Minimal Increase preserves this only while no removals
/// occur (§3.2).
pub trait SketchReader {
    /// Estimates the multiplicity `f̂_key`.
    fn estimate<K: Key + ?Sized>(&self, key: &K) -> u64;

    /// Membership test: `f̂ > 0` (identical to a plain Bloom filter, §2.2).
    fn contains<K: Key + ?Sized>(&self, key: &K) -> bool {
        self.estimate(key) > 0
    }

    /// Spectral threshold test: `f̂ ≥ threshold`, false positives only (for
    /// the one-sided algorithms).
    fn passes_threshold<K: Key + ?Sized>(&self, key: &K, threshold: u64) -> bool {
        self.estimate(key) >= threshold
    }

    /// Total multiplicity currently represented.
    fn total_count(&self) -> u64;

    /// Storage footprint in bits.
    fn storage_bits(&self) -> usize;

    /// Fraction of non-zero counters (the load signal telemetry publishes
    /// per shard; `0.0` for an empty sketch).
    fn occupancy(&self) -> f64;
}

/// A sketch answering multiplicity queries over a dynamic multiset, with
/// updates.
///
/// Every single-threaded SBF variant implements this, so applications —
/// iceberg queries, range trees, Bloomjoins, bifocal sampling — are written
/// once and run under any estimation policy. Query-only code should bound
/// on the [`SketchReader`] supertrait instead, which the concurrent
/// backends also implement. The update contract:
///
/// * `remove` of a key truly present `count` times always succeeds for the
///   MS/RM families; Minimal Increase refuses with
///   [`RemoveError::Unsupported`].
///
/// Prefer constructing implementations through
/// [`crate::params::FromParams`] (capacity/error-rate sizing in one place)
/// over the positional `new(m, k, seed)` constructors.
pub trait MultisetSketch: SketchReader {
    /// Adds `count` occurrences of `key`.
    fn insert_by<K: Key + ?Sized>(&mut self, key: &K, count: u64);

    /// Adds one occurrence of `key`.
    fn insert<K: Key + ?Sized>(&mut self, key: &K) {
        self.insert_by(key, 1);
    }

    /// Removes `count` occurrences of `key`.
    fn remove_by<K: Key + ?Sized>(&mut self, key: &K, count: u64) -> Result<(), RemoveError>;

    /// Removes one occurrence of `key`.
    fn remove<K: Key + ?Sized>(&mut self, key: &K) -> Result<(), RemoveError> {
        self.remove_by(key, 1)
    }
}
