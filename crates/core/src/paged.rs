//! External-memory counter storage with I/O accounting (§2.2,
//! "External memory SBF").
//!
//! Bloom-family filters resist straightforward paging: a single lookup
//! touches up to `k` random positions, i.e. up to `k` disk pages. The
//! paper recalls Manber & Wu's remedy — hash each key to a *block* first
//! and confine the `k` functions to that block — and asserts the accuracy
//! loss is negligible for large blocks.
//!
//! [`PagedCounters`] simulates that storage tier: counters live in
//! fixed-size pages behind a single-page buffer, and every buffer miss is
//! counted as one I/O. Pair it with a flat hash family and a lookup costs
//! ~`k` I/Os; pair it with [`sbf_hash::BlockedFamily`] whose block size
//! equals the page size and every operation costs exactly one. The
//! `repro paged` report and the integration tests quantify the trade.

use std::cell::Cell;

use crate::metrics;
use crate::store::{CounterStore, RemoveError};

/// I/O counters for the simulated storage tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page loads caused by reads or writes (buffer misses).
    pub page_faults: u64,
    /// Total page touches (hits + misses).
    pub accesses: u64,
}

/// Counters partitioned into fixed-size pages behind a one-page buffer.
///
/// The buffer models the paper's external-memory setting at its most
/// punishing (no cache beyond the current page); relative I/O counts
/// between flat and blocked hashing are what matter, and a bigger cache
/// would only scale both down.
#[derive(Debug, Clone)]
pub struct PagedCounters {
    counters: Vec<u64>,
    page_size: usize,
    resident: Cell<Option<usize>>,
    faults: Cell<u64>,
    accesses: Cell<u64>,
}

impl PagedCounters {
    /// `m` zero counters in pages of `page_size` counters each.
    pub fn with_page_size(m: usize, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PagedCounters {
            counters: vec![0; m],
            page_size,
            resident: Cell::new(None),
            faults: Cell::new(0),
            accesses: Cell::new(0),
        }
    }

    /// Counters per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.counters.len().div_ceil(self.page_size)
    }

    /// The I/O ledger.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            page_faults: self.faults.get(),
            accesses: self.accesses.get(),
        }
    }

    /// Resets the I/O ledger (e.g. after a build phase, before measuring
    /// queries).
    pub fn reset_io(&self) {
        self.faults.set(0);
        self.accesses.set(0);
        self.resident.set(None);
    }

    #[inline]
    fn touch(&self, i: usize) {
        let page = i / self.page_size;
        self.accesses.set(self.accesses.get() + 1);
        let fault = self.resident.get() != Some(page);
        if fault {
            self.resident.set(Some(page));
            self.faults.set(self.faults.get() + 1);
        }
        metrics::on(|m| {
            m.page_accesses.inc();
            if fault {
                m.page_faults.inc();
            }
        });
    }
}

impl CounterStore for PagedCounters {
    fn with_len(m: usize) -> Self {
        // Default page: 512 counters (a 4 KiB page of u64s).
        Self::with_page_size(m, 512)
    }

    fn len(&self) -> usize {
        self.counters.len()
    }

    fn get(&self, i: usize) -> u64 {
        self.touch(i);
        self.counters[i]
    }

    fn set(&mut self, i: usize, v: u64) {
        self.touch(i);
        self.counters[i] = v;
    }

    fn decrement(&mut self, i: usize, by: u64) -> Result<(), RemoveError> {
        self.touch(i);
        let v = self.counters[i];
        if by > v {
            return Err(RemoveError::Underflow { index: i });
        }
        self.counters[i] = v - by;
        Ok(())
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;
    use crate::sketch::{MultisetSketch, SketchReader};
    use sbf_hash::{BlockedFamily, MixFamily};

    #[test]
    fn faults_counted_per_page_switch() {
        let mut p = PagedCounters::with_page_size(1000, 100);
        p.set(0, 1);
        p.set(5, 1); // same page: no new fault
        p.set(100, 1); // new page
        p.set(7, 1); // back: fault again (single-page buffer)
        let io = p.io_stats();
        assert_eq!(io.accesses, 4);
        assert_eq!(io.page_faults, 3);
    }

    #[test]
    fn reset_clears_ledger() {
        let mut p = PagedCounters::with_page_size(100, 10);
        p.set(0, 1);
        p.reset_io();
        assert_eq!(p.io_stats(), IoStats::default());
    }

    #[test]
    fn blocked_hashing_cuts_io_to_one_fault_per_op() {
        let m = 1 << 14;
        let page = 512;
        let n_ops = 2000u64;

        // Flat: k = 5 scattered probes per op.
        let flat_fam = MixFamily::new(m, 5, 7);
        let mut flat: MsSbf<MixFamily, PagedCounters> =
            MsSbf::with_parts(flat_fam, PagedCounters::with_page_size(m, page));
        for key in 0..n_ops {
            flat.insert(&key);
        }
        let flat_faults = flat.core().store().io_stats().page_faults;

        // Blocked: block size = page size → one fault per op.
        let blocked_fam = BlockedFamily::new(MixFamily::new(page, 5, 7), m / page, 7);
        let mut blocked: MsSbf<BlockedFamily<MixFamily>, PagedCounters> =
            MsSbf::with_parts(blocked_fam, PagedCounters::with_page_size(m, page));
        for key in 0..n_ops {
            blocked.insert(&key);
        }
        let blocked_faults = blocked.core().store().io_stats().page_faults;

        // At most one page per blocked insert (consecutive keys landing in
        // the same block reuse the buffer, so slightly fewer).
        assert!(
            blocked_faults <= n_ops,
            "blocked faults {blocked_faults} exceed one per op"
        );
        assert!(blocked_faults >= n_ops * 9 / 10);
        assert!(
            flat_faults > 4 * n_ops,
            "flat hashing should fault ≈ k times per op: {flat_faults}"
        );
    }

    #[test]
    fn estimates_unaffected_by_paging() {
        let m = 4096;
        let fam = MixFamily::new(m, 5, 9);
        let mut paged: MsSbf<MixFamily, PagedCounters> =
            MsSbf::with_parts(fam.clone(), PagedCounters::with_page_size(m, 256));
        let mut plain: MsSbf<MixFamily, crate::PlainCounters> = MsSbf::from_family(fam);
        for key in 0u64..500 {
            paged.insert_by(&key, key % 7 + 1);
            plain.insert_by(&key, key % 7 + 1);
        }
        for key in 0u64..500 {
            assert_eq!(paged.estimate(&key), plain.estimate(&key));
        }
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_rejected() {
        let _ = PagedCounters::with_page_size(10, 0);
    }
}
