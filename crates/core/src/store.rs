//! Counter storage backends.
//!
//! The accuracy experiments of the paper treat the SBF as an abstract
//! vector of counters; Section 4 then shows how to store that vector in
//! `N + o(N) + O(m)` bits. Both views live here behind one trait:
//!
//! * [`PlainCounters`] — one `u64` per counter. Fast, simple, and what the
//!   accuracy sweeps use (the paper's experiments in §6.1–§6.2 likewise
//!   measure estimation error independently of the encoding).
//! * [`CompressedCounters`] — the dynamic String-Array-Index representation
//!   of §4.4, at near-minimal bits with slack for growth.
//! * [`CompactCounters`] — the §4.5 Elias-coded representation made
//!   dynamic; smallest of all, at a bounded sequential-decode access cost.

use sbf_sai::{CompactConfig, DynamicCompactArray, DynamicConfig, DynamicCounterArray};

use crate::metrics;

/// Error from a removal the sketch cannot perform.
///
/// Distinguishes the two failure modes the paper's algorithms exhibit: a
/// counter that would go negative (MS/RM refuse such removals atomically),
/// and an algorithm that does not support deletions at all (Minimal
/// Increase, §3.2 — deleting would introduce false negatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveError {
    /// The removal would drive the counter at `index` below zero.
    Underflow {
        /// Index of the counter that would underflow.
        index: usize,
    },
    /// The sketch's algorithm cannot delete soundly (Minimal Increase).
    Unsupported,
}

impl std::fmt::Display for RemoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoveError::Underflow { index } => {
                write!(f, "removal would drive counter {index} below zero")
            }
            RemoveError::Unsupported => {
                write!(f, "this sketch algorithm does not support deletions")
            }
        }
    }
}

impl std::error::Error for RemoveError {}

/// A fixed-length vector of `u64` counters.
pub trait CounterStore {
    /// Creates a store of `m` zero counters.
    fn with_len(m: usize) -> Self;

    /// Number of counters.
    fn len(&self) -> usize;

    /// Whether the store has no counters.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads counter `i`.
    fn get(&self, i: usize) -> u64;

    /// Overwrites counter `i`.
    fn set(&mut self, i: usize, v: u64);

    /// Hints that counter `i` will be read or written shortly.
    ///
    /// The batched hot path calls this for item `i+D`'s counters while item
    /// `i` is being applied, hiding cache-miss latency behind useful work.
    /// Purely advisory: the default is a no-op, which is also the right
    /// answer for encoded stores ([`CompressedCounters`],
    /// [`CompactCounters`]) whose counter position in memory is not an
    /// affine function of `i`.
    #[inline]
    fn prefetch(&self, _i: usize) {}

    /// Write-intent form of [`CounterStore::prefetch`]: hints that counter
    /// `i` will be *stored to* shortly, so the line should be acquired in
    /// exclusive state (skipping the read-for-ownership upgrade a plain
    /// read hint would leave behind). Defaults to a no-op for the same
    /// reasons as `prefetch`.
    #[inline]
    fn prefetch_write(&self, _i: usize) {}

    /// Adds `by` to counter `i`, saturating at `u64::MAX`.
    ///
    /// Saturating (rather than panicking) semantics are deliberate: the
    /// ingest path runs behind server locks, and a hostile or merely
    /// long-running stream must not be able to panic a thread mid-insert.
    /// Saturation preserves the paper's one-sided contract — a pinned
    /// counter can only *over*-estimate — and is unreachable in practice
    /// (2⁶⁴ increments). Debug builds still flag it loudly, and telemetry
    /// counts each clamp in `sbf_counter_saturations_total`.
    fn increment(&mut self, i: usize, by: u64) {
        let v = self.get(i);
        let (next, overflowed) = v.overflowing_add(by);
        if overflowed {
            metrics::on(|m| m.saturations.inc());
            debug_assert!(false, "counter {i} overflow");
            self.set(i, u64::MAX);
        } else {
            self.set(i, next);
        }
    }

    /// Subtracts `by` from counter `i`, failing on underflow.
    fn decrement(&mut self, i: usize, by: u64) -> Result<(), RemoveError> {
        let v = self.get(i);
        if by > v {
            return Err(RemoveError::Underflow { index: i });
        }
        self.set(i, v - by);
        Ok(())
    }

    /// Subtracts `by`, clamping at zero (used by Minimal Increase under
    /// deletions, which the paper shows produces false negatives — the
    /// clamp keeps the counters well-defined while reproducing that
    /// behaviour).
    fn decrement_saturating(&mut self, i: usize, by: u64) {
        let v = self.get(i);
        self.set(i, v.saturating_sub(by));
    }

    /// Storage footprint in bits (for the paper's size comparisons).
    fn storage_bits(&self) -> usize;

    /// The counters as one contiguous `u64` slice, when the store has that
    /// layout. The batched estimate uses this to dispatch its SIMD
    /// gather-min kernel; encoded stores (whose counter positions are not
    /// an affine function of the index) return `None` and take the scalar
    /// path. Must view the same values `get` reports.
    #[inline]
    fn as_u64_slice(&self) -> Option<&[u64]> {
        None
    }
}

/// One machine word per counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainCounters {
    counters: Vec<u64>,
}

impl PlainCounters {
    /// Direct access to the raw counters (used by union/multiply).
    pub fn as_slice(&self) -> &[u64] {
        &self.counters
    }

    /// Mutable access to the raw counters.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.counters
    }
}

impl CounterStore for PlainCounters {
    fn with_len(m: usize) -> Self {
        PlainCounters {
            counters: vec![0; m],
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        self.counters[i]
    }

    #[inline]
    fn set(&mut self, i: usize, v: u64) {
        self.counters[i] = v;
    }

    #[inline]
    fn prefetch(&self, i: usize) {
        sbf_hash::prefetch_slice(&self.counters, i);
    }

    #[inline]
    fn prefetch_write(&self, i: usize) {
        sbf_hash::prefetch_slice_write(&self.counters, i);
    }

    #[inline]
    fn increment(&mut self, i: usize, by: u64) {
        let v = self.counters[i];
        let (next, overflowed) = v.overflowing_add(by);
        if overflowed {
            metrics::on(|m| m.saturations.inc());
            debug_assert!(false, "counter {i} overflow");
            self.counters[i] = u64::MAX;
        } else {
            self.counters[i] = next;
        }
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 64
    }

    #[inline]
    fn as_u64_slice(&self) -> Option<&[u64]> {
        Some(&self.counters)
    }
}

/// The §4 compressed representation: counters at `⌈log C⌉` bits with slack,
/// amortized O(1) updates.
#[derive(Debug, Clone)]
pub struct CompressedCounters {
    inner: DynamicCounterArray,
}

impl CompressedCounters {
    /// Creates with an explicit dynamic-array configuration.
    pub fn with_config(m: usize, cfg: DynamicConfig) -> Self {
        CompressedCounters {
            inner: DynamicCounterArray::with_config(m, cfg),
        }
    }

    /// The underlying dynamic array (for maintenance statistics).
    pub fn inner(&self) -> &DynamicCounterArray {
        &self.inner
    }
}

impl CounterStore for CompressedCounters {
    fn with_len(m: usize) -> Self {
        CompressedCounters {
            inner: DynamicCounterArray::new(m),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, i: usize) -> u64 {
        self.inner.get(i)
    }

    fn set(&mut self, i: usize, v: u64) {
        self.inner.set(i, v);
    }

    fn decrement(&mut self, i: usize, by: u64) -> Result<(), RemoveError> {
        self.inner
            .decrement(i, by)
            .map_err(|_| RemoveError::Underflow { index: i })
    }

    fn storage_bits(&self) -> usize {
        self.inner.total_bits()
    }
}

/// The §4.5 dynamic compact representation: Elias-δ-coded counters with
/// per-group slack and **no per-item bookkeeping** — the smallest mutable
/// backend, at ≤ `group_size` codeword decodes per access.
#[derive(Debug, Clone)]
pub struct CompactCounters {
    inner: DynamicCompactArray,
}

impl CompactCounters {
    /// Creates with an explicit configuration.
    pub fn with_config(m: usize, cfg: CompactConfig) -> Self {
        CompactCounters {
            inner: DynamicCompactArray::with_config(sbf_encoding::EliasDelta, m, cfg),
        }
    }

    /// The underlying array (for maintenance statistics).
    pub fn inner(&self) -> &DynamicCompactArray {
        &self.inner
    }
}

impl CounterStore for CompactCounters {
    fn with_len(m: usize) -> Self {
        CompactCounters {
            inner: DynamicCompactArray::new(m),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, i: usize) -> u64 {
        self.inner.get(i)
    }

    fn set(&mut self, i: usize, v: u64) {
        self.inner.set(i, v);
    }

    fn decrement(&mut self, i: usize, by: u64) -> Result<(), RemoveError> {
        self.inner
            .decrement(i, by)
            .map_err(|_| RemoveError::Underflow { index: i })
    }

    fn storage_bits(&self) -> usize {
        self.inner.total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: CounterStore>() {
        let mut s = S::with_len(100);
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert_eq!(s.get(i), 0);
        }
        s.increment(7, 5);
        s.increment(7, 5);
        assert_eq!(s.get(7), 10);
        s.decrement(7, 3).unwrap();
        assert_eq!(s.get(7), 7);
        assert!(s.decrement(7, 8).is_err());
        assert_eq!(s.get(7), 7, "failed decrement must not mutate");
        s.decrement_saturating(7, 100);
        assert_eq!(s.get(7), 0);
        s.set(99, u64::MAX / 2);
        assert_eq!(s.get(99), u64::MAX / 2);
        assert!(s.storage_bits() > 0);
    }

    #[test]
    fn plain_counters_contract() {
        exercise::<PlainCounters>();
    }

    #[test]
    fn compressed_counters_contract() {
        exercise::<CompressedCounters>();
    }

    #[test]
    fn compact_counters_contract() {
        exercise::<CompactCounters>();
    }

    #[test]
    fn compact_is_smallest_backend_on_sparse_data() {
        let mut plain = PlainCounters::with_len(10_000);
        let mut compressed = CompressedCounters::with_len(10_000);
        let mut compact = CompactCounters::with_len(10_000);
        for i in (0..10_000).step_by(40) {
            plain.increment(i, 5);
            compressed.increment(i, 5);
            compact.increment(i, 5);
        }
        assert!(compact.storage_bits() < compressed.storage_bits());
        assert!(compressed.storage_bits() < plain.storage_bits());
    }

    #[test]
    fn plain_and_compressed_agree_under_identical_ops() {
        let mut a = PlainCounters::with_len(64);
        let mut b = CompressedCounters::with_len(64);
        let mut x = 42u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (x >> 33) as usize % 64;
            let by = x % 50;
            a.increment(i, by);
            b.increment(i, by);
        }
        for i in 0..64 {
            assert_eq!(a.get(i), b.get(i), "counter {i}");
        }
        // Compressed must be far smaller than 64 bits/counter here.
        assert!(b.storage_bits() < a.storage_bits());
    }

    #[test]
    fn compressed_reports_smaller_storage_for_sparse_data() {
        let mut c = CompressedCounters::with_len(10_000);
        for i in (0..10_000).step_by(100) {
            c.increment(i, 3);
        }
        // ~1 bit per counter + bookkeeping: far below the plain 640k bits.
        assert!(c.storage_bits() < PlainCounters::with_len(10_000).storage_bits());
    }
}
