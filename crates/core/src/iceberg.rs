//! Ad-hoc iceberg queries (§5.2).
//!
//! Classic iceberg machinery (\[FSGM+98\], \[EV02\]) requires the threshold
//! before the data is scanned. An SBF holds the full spectrum, so the
//! threshold can arrive *at query time* — lower it and re-ask without
//! rescanning the data. Two modes:
//!
//! * [`ad_hoc_iceberg`] — one pass over the candidate keys against an
//!   already-built sketch; the output is a superset of the true result
//!   (false positives only, per Claim 1), with recall 1.
//! * [`multiscan_iceberg`] — the paper's MULTISCAN-SHARED-flavoured variant:
//!   several scans through progressively smaller *lossy* SBF stages, each
//!   stage only counting items that passed all earlier stages. Needs the
//!   threshold up front (the trade-off §5.2 discusses) but uses a fraction
//!   of the memory.

use sbf_hash::Key;
use std::collections::HashSet;

use crate::ms::MsSbf;
use crate::num;
use crate::sketch::{MultisetSketch, SketchReader};

/// Scans `candidates` against a built sketch and returns the distinct keys
/// whose estimated multiplicity reaches `threshold`.
///
/// Guarantees: every key with true frequency `≥ threshold` is returned
/// (no false negatives, for one-sided sketches); keys below threshold may
/// appear with probability bounded by the iceberg error analysis of §5.2 —
/// strictly *below* the raw Bloom error, since an error must also be large
/// enough to cross the threshold.
///
/// Bounded on [`SketchReader`], so the scan runs equally over the
/// single-threaded sketches and the concurrent backends
/// ([`crate::AtomicMsSbf`], [`crate::ShardedSketch`],
/// [`crate::SharedSketch`]) without snapshotting first.
pub fn ad_hoc_iceberg<SK, K, I>(sketch: &SK, candidates: I, threshold: u64) -> Vec<u64>
where
    SK: SketchReader,
    K: Key,
    I: IntoIterator<Item = K>,
{
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for key in candidates {
        let canon = key.canonical();
        if seen.insert(canon) && sketch.passes_threshold(&key, threshold) {
            out.push(canon);
        }
    }
    out
}

/// Stage sizing for [`multiscan_iceberg`].
#[derive(Debug, Clone)]
pub struct MultiscanConfig {
    /// `(m, k)` of each progressive stage, largest first. Stages are meant
    /// to be *lossy* (m far below the distinct count), as in §5.2's "around
    /// 1% of n" remark.
    pub stages: Vec<(usize, usize)>,
    /// Hash seed.
    pub seed: u64,
}

impl MultiscanConfig {
    /// A default two-stage configuration scaled to `n` distinct keys:
    /// stage sizes 10% and 5% of `n` (lossy by design).
    pub fn lossy_for(n: usize, seed: u64) -> Self {
        MultiscanConfig {
            stages: vec![((n / 10).max(8), 3), ((n / 20).max(8), 3)],
            seed,
        }
    }
}

/// Multi-scan progressive filtering: pass `i + 1` counts only items whose
/// counters in every earlier stage reached `threshold`. Returns candidate
/// keys surviving all stages (a superset of the true heavy hitters).
///
/// The data is scanned `stages.len()` times plus one reporting pass, like
/// the paper's MULTISCAN-SHARED; total memory is the sum of the stage
/// sizes, typically a small fraction of one full SBF.
pub fn multiscan_iceberg(data: &[u64], threshold: u64, config: &MultiscanConfig) -> Vec<u64> {
    assert!(!config.stages.is_empty(), "need at least one stage");
    let mut stages: Vec<MsSbf> = config
        .stages
        .iter()
        .enumerate()
        .map(|(i, &(m, k))| MsSbf::new(m, k, config.seed ^ num::to_u64(i) << 32))
        .collect();

    for (si, _) in config.stages.iter().enumerate() {
        for &x in data {
            let passed_earlier = stages[..si]
                .iter()
                .all(|s| s.passes_threshold(&x, threshold));
            if passed_earlier {
                stages[si].insert(&x);
            }
        }
    }

    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &x in data {
        if seen.insert(x) && stages.iter().all(|s| s.passes_threshold(&x, threshold)) {
            out.push(x);
        }
    }
    out
}

/// Adaptive multiscan (§5.2's on-the-fly refinement): "we can calculate
/// the average count over the buckets of the current SBF, and if it
/// exceeds the threshold we know that the filtering will be very weak,
/// and therefore we might want to enlarge the next filter".
///
/// Starting from `initial_m`, each subsequent stage doubles when the
/// previous stage's mean counter value reached the threshold (weak
/// filtering ahead) and halves when it fell below a tenth of it (the
/// filter is already selective). Returns the surviving candidates and the
/// `(m, mean_count)` trace of the stages actually built.
pub fn adaptive_multiscan_iceberg(
    data: &[u64],
    threshold: u64,
    initial_m: usize,
    k: usize,
    seed: u64,
    max_stages: usize,
) -> (Vec<u64>, Vec<(usize, f64)>) {
    assert!(max_stages >= 1, "need at least one stage");
    assert!(initial_m >= 8, "initial stage too small");
    let mut stages: Vec<MsSbf> = Vec::new();
    let mut trace = Vec::new();
    let mut next_m = initial_m;
    for si in 0..max_stages {
        let mut stage = MsSbf::new(next_m, k, seed ^ num::to_u64(si) << 32);
        for &x in data {
            let passed = stages.iter().all(|s| s.passes_threshold(&x, threshold));
            if passed {
                stage.insert(&x);
            }
        }
        // Mean counter value = inserted mass × k / m.
        let mean = num::to_f64(stage.total_count()) * num::to_f64(k) / num::to_f64(next_m);
        trace.push((next_m, mean));
        stages.push(stage);
        if mean >= num::to_f64(threshold) {
            next_m = next_m.saturating_mul(2);
        } else if mean < num::to_f64(threshold) / 10.0 {
            next_m = (next_m / 2).max(8);
        }
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &x in data {
        if seen.insert(x) && stages.iter().all(|s| s.passes_threshold(&x, threshold)) {
            out.push(x);
        }
    }
    (out, trace)
}

/// Streaming iceberg monitor (§5.2's "triggers" scenario): flags each key
/// the moment its estimated multiplicity crosses the threshold, while the
/// stream flows. One-sided like the underlying sketch — everything truly
/// heavy is flagged; a small false-positive fraction may join it.
#[derive(Debug, Clone)]
pub struct StreamingIceberg<SK: MultisetSketch> {
    sketch: SK,
    threshold: u64,
    flagged: HashSet<u64>,
}

impl<SK: MultisetSketch> StreamingIceberg<SK> {
    /// Wraps a sketch with a crossing threshold.
    pub fn new(sketch: SK, threshold: u64) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        StreamingIceberg {
            sketch,
            threshold,
            flagged: HashSet::new(),
        }
    }

    /// Ingests one occurrence; returns `true` exactly when this occurrence
    /// pushed the key's estimate across the threshold for the first time.
    pub fn offer<K: Key + ?Sized>(&mut self, key: &K) -> bool {
        self.sketch.insert(key);
        let canon = key.canonical();
        if self.flagged.contains(&canon) {
            return false;
        }
        if self.sketch.passes_threshold(key, self.threshold) {
            self.flagged.insert(canon);
            return true;
        }
        false
    }

    /// Re-arms with a new threshold (the sketch keeps the full spectrum, so
    /// lowering the threshold requires no rescan — keys already over the
    /// new bar are flagged immediately on their next occurrence).
    pub fn set_threshold(&mut self, threshold: u64) {
        assert!(threshold >= 1);
        self.threshold = threshold;
        self.flagged.retain(|_| false);
    }

    /// Keys flagged so far (canonical form).
    pub fn flagged(&self) -> impl Iterator<Item = u64> + '_ {
        self.flagged.iter().copied()
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &SK {
        &self.sketch
    }
}

/// A top-k heavy-hitter tracker over an SBF (the hot-list usage of §1.1.2:
/// "identify popular search queries").
///
/// Keeps a candidate set of `k` keys with the highest sketch estimates.
/// Because the sketch is one-sided and candidates are re-estimated on
/// every touch, every key whose true frequency exceeds the `k`-th largest
/// estimate is guaranteed to be in the candidate set once seen.
#[derive(Debug, Clone)]
pub struct TopKTracker<SK: MultisetSketch> {
    sketch: SK,
    capacity: usize,
    candidates: std::collections::HashMap<u64, u64>,
}

impl<SK: MultisetSketch> TopKTracker<SK> {
    /// Tracks the `capacity` hottest keys through `sketch`.
    pub fn new(sketch: SK, capacity: usize) -> Self {
        assert!(capacity >= 1, "need room for at least one candidate");
        TopKTracker {
            sketch,
            capacity,
            candidates: std::collections::HashMap::new(),
        }
    }

    /// Ingests one occurrence of `key`.
    pub fn offer<K: Key + ?Sized>(&mut self, key: &K) {
        self.sketch.insert(key);
        let canon = key.canonical();
        let est = self.sketch.estimate(key);
        if let Some(e) = self.candidates.get_mut(&canon) {
            *e = est;
            return;
        }
        if self.candidates.len() < self.capacity {
            self.candidates.insert(canon, est);
            return;
        }
        // Evict the weakest candidate if this key now beats it.
        let (&weakest, &weakest_est) = self
            .candidates
            .iter()
            .min_by_key(|&(_, &e)| e)
            .unwrap_or_else(|| unreachable!("capacity >= 1"));
        if est > weakest_est {
            self.candidates.remove(&weakest);
            self.candidates.insert(canon, est);
        }
    }

    /// The current top keys, hottest first, as `(canonical key, estimate)`.
    pub fn top(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.candidates.iter().map(|(&k, &e)| (k, e)).collect();
        v.sort_by_key(|&(key, est)| (std::cmp::Reverse(est), key));
        v
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &SK {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsSbf;
    use std::collections::HashMap;

    /// A stream with a few heavy keys above `t` and many light ones.
    fn heavy_tail_stream() -> (Vec<u64>, HashMap<u64, u64>) {
        let mut data = Vec::new();
        for key in 0u64..20 {
            for _ in 0..100 {
                data.push(key); // heavy: f = 100
            }
        }
        for key in 100u64..2000 {
            data.push(key); // light: f = 1
        }
        let mut truth = HashMap::new();
        for &x in &data {
            *truth.entry(x).or_insert(0u64) += 1;
        }
        (data, truth)
    }

    #[test]
    fn ad_hoc_iceberg_has_full_recall() {
        let (data, truth) = heavy_tail_stream();
        let mut sbf = MsSbf::new(16_384, 5, 1);
        for &x in &data {
            sbf.insert(&x);
        }
        let result = ad_hoc_iceberg(&sbf, data.iter().copied(), 50);
        let result_set: HashSet<u64> = result.iter().copied().collect();
        for (&key, &f) in &truth {
            if f >= 50 {
                assert!(result_set.contains(&key), "missed heavy key {key}");
            }
        }
    }

    #[test]
    fn threshold_can_change_without_rebuilding() {
        // The paper's selling point: same sketch, new threshold, no rescan
        // of raw data needed to rebuild a structure.
        let (data, truth) = heavy_tail_stream();
        let mut sbf = MsSbf::new(16_384, 5, 2);
        for &x in &data {
            sbf.insert(&x);
        }
        let at_100 = ad_hoc_iceberg(&sbf, data.iter().copied(), 100);
        let at_2 = ad_hoc_iceberg(&sbf, data.iter().copied(), 2);
        assert!(at_100.len() < at_2.len());
        assert!(at_100.len() >= truth.values().filter(|&&f| f >= 100).count());
    }

    #[test]
    fn false_positive_fraction_is_small() {
        let (data, truth) = heavy_tail_stream();
        let mut sbf = MsSbf::new(16_384, 5, 3);
        for &x in &data {
            sbf.insert(&x);
        }
        let result = ad_hoc_iceberg(&sbf, data.iter().copied(), 50);
        let fp = result.iter().filter(|k| truth[k] < 50).count();
        assert!(
            fp * 20 <= result.len().max(20),
            "{fp} false positives in {}",
            result.len()
        );
    }

    #[test]
    fn multiscan_keeps_recall_with_tiny_stages() {
        let (data, truth) = heavy_tail_stream();
        let config = MultiscanConfig {
            stages: vec![(256, 3), (128, 3)],
            seed: 4,
        };
        let result = multiscan_iceberg(&data, 50, &config);
        let result_set: HashSet<u64> = result.iter().copied().collect();
        for (&key, &f) in &truth {
            if f >= 50 {
                assert!(
                    result_set.contains(&key),
                    "multiscan missed heavy key {key}"
                );
            }
        }
        // Lossy stages admit false positives, but should still filter out
        // the vast majority of the 1900 light keys.
        assert!(
            result.len() < 500,
            "result barely filtered: {}",
            result.len()
        );
    }

    #[test]
    fn streaming_iceberg_flags_on_crossing() {
        let mut mon = StreamingIceberg::new(MsSbf::new(4096, 5, 7), 3);
        assert!(!mon.offer(&"x"));
        assert!(!mon.offer(&"x"));
        assert!(mon.offer(&"x"), "third occurrence crosses T = 3");
        assert!(!mon.offer(&"x"), "flagged only once");
        assert_eq!(mon.flagged().count(), 1);
    }

    #[test]
    fn streaming_iceberg_full_recall_on_heavy_stream() {
        let (data, truth) = heavy_tail_stream();
        let mut mon = StreamingIceberg::new(MsSbf::new(16_384, 5, 8), 50);
        for &x in &data {
            mon.offer(&x);
        }
        let flagged: HashSet<u64> = mon.flagged().collect();
        for (&key, &f) in &truth {
            if f >= 50 {
                assert!(flagged.contains(&key), "missed heavy key {key}");
            }
        }
    }

    #[test]
    fn top_k_finds_the_hot_keys() {
        let mut tracker = TopKTracker::new(crate::MiSbf::new(8192, 5, 9), 5);
        // Keys 0..5 hot (200 each), 100..1100 cold (1 each), interleaved.
        for round in 0..200u64 {
            for hot in 0u64..5 {
                tracker.offer(&hot);
            }
            for cold in 0..5u64 {
                tracker.offer(&(100 + round * 5 + cold));
            }
        }
        let top: Vec<u64> = tracker.top().iter().map(|&(k, _)| k).collect();
        for hot in 0u64..5 {
            assert!(top.contains(&hot), "hot key {hot} missing from {top:?}");
        }
        // Estimates are one-sided and near-exact at this load.
        for &(_, est) in &tracker.top() {
            assert!(est >= 200);
        }
    }

    #[test]
    fn top_k_capacity_is_respected() {
        let mut tracker = TopKTracker::new(MsSbf::new(1024, 4, 10), 3);
        for key in 0u64..50 {
            tracker.offer(&key);
        }
        assert!(tracker.top().len() <= 3);
    }

    #[test]
    fn adaptive_multiscan_keeps_recall_and_adapts() {
        let (data, truth) = heavy_tail_stream();
        let (out, trace) = adaptive_multiscan_iceberg(&data, 50, 64, 3, 7, 3);
        let out_set: HashSet<u64> = out.iter().copied().collect();
        for (&key, &f) in &truth {
            if f >= 50 {
                assert!(out_set.contains(&key), "adaptive multiscan missed {key}");
            }
        }
        assert_eq!(trace.len(), 3);
        // Stage 0 is overloaded (mean count ≥ T) on this stream, so the
        // scheme must have grown a later stage.
        assert!(trace[0].1 >= 50.0, "stage 0 mean {}", trace[0].1);
        assert!(
            trace[1].0 > trace[0].0,
            "stage 1 should be enlarged: {trace:?}"
        );
    }

    #[test]
    fn adaptive_multiscan_shrinks_when_selective() {
        // Very light stream: the first stage filters almost everything, so
        // later stages shrink.
        let data: Vec<u64> = (0..500u64).collect(); // every key once, T=5
        let (out, trace) = adaptive_multiscan_iceberg(&data, 5, 4096, 3, 8, 3);
        assert!(out.len() <= 5, "nothing passes T=5: {out:?}");
        assert!(
            trace[1].0 < trace[0].0,
            "stage sizes should shrink: {trace:?}"
        );
    }

    #[test]
    fn empty_data_yields_empty_result() {
        let sbf = MsSbf::new(64, 3, 5);
        assert!(ad_hoc_iceberg(&sbf, std::iter::empty::<u64>(), 1).is_empty());
        let config = MultiscanConfig::lossy_for(100, 6);
        assert!(multiscan_iceberg(&[], 1, &config).is_empty());
    }
}
