//! The crate's telemetry handle: named metrics in the process-global
//! [`sbf_telemetry`] registry, touched by the hot paths only when telemetry
//! is enabled.
//!
//! # Overhead model
//!
//! Every instrumented operation guards its metric updates with
//! [`sbf_telemetry::enabled`] — one relaxed atomic load and a branch the
//! predictor learns immediately. With telemetry disabled (the default) no
//! metric is ever allocated or touched; with it enabled, each update is one
//! relaxed `fetch_add` on a dedicated cache line.
//!
//! # Metric names
//!
//! | name | kind | measures |
//! |---|---|---|
//! | `sbf_inserts_total` | counter | `insert_by` calls on any sketch |
//! | `sbf_removes_total` | counter | `remove_by` calls on any sketch |
//! | `sbf_estimates_total` | counter | `estimate` calls on any sketch |
//! | `sbf_estimate_values` | histogram | distribution of returned estimates |
//! | `sbf_atomic_cas_retries_total` | counter | failed CAS attempts in [`crate::AtomicCounters`] |
//! | `sbf_counter_saturations_total` | counter | counter increments clamped at `u64::MAX` |
//! | `sbf_rm_inserts_total` | counter | Recurring Minimum inserts |
//! | `sbf_rm_secondary_spills_total` | counter | RM inserts that touched the secondary SBF |
//! | `sbf_page_faults_total` | counter | buffer misses in [`crate::PagedCounters`] |
//! | `sbf_page_accesses_total` | counter | page touches in [`crate::PagedCounters`] |
//! | `sbf_sharded_ops_total` | counter | mutations routed through [`crate::ShardedSketch`] |
//! | `sbf_sharded_snapshot_rebuilds_total` | counter | full §5 shard unions performed |
//! | `sbf_sharded_snapshot_cache_hits_total` | counter | snapshots served from the cached union |
//!
//! [`crate::ShardedSketch::publish_metrics`] additionally writes per-shard
//! gauges `sbf_shard_occupancy_ratio{shard="i"}`,
//! `sbf_shard_total_count{shard="i"}` and `sbf_shard_ops{shard="i"}`.

use crate::sync::{Arc, OnceLock};

use sbf_telemetry::{Counter, Histogram};

/// Handles to every metric this crate publishes (see the module table).
#[derive(Debug)]
pub struct CoreMetrics {
    /// `sbf_inserts_total`.
    pub inserts: Arc<Counter>,
    /// `sbf_removes_total`.
    pub removes: Arc<Counter>,
    /// `sbf_estimates_total`.
    pub estimates: Arc<Counter>,
    /// `sbf_estimate_values`.
    pub estimate_values: Arc<Histogram>,
    /// `sbf_atomic_cas_retries_total`.
    pub cas_retries: Arc<Counter>,
    /// `sbf_counter_saturations_total`.
    pub saturations: Arc<Counter>,
    /// `sbf_rm_inserts_total`.
    pub rm_inserts: Arc<Counter>,
    /// `sbf_rm_secondary_spills_total`.
    pub rm_secondary_spills: Arc<Counter>,
    /// `sbf_page_faults_total`.
    pub page_faults: Arc<Counter>,
    /// `sbf_page_accesses_total`.
    pub page_accesses: Arc<Counter>,
    /// `sbf_sharded_ops_total`.
    pub sharded_ops: Arc<Counter>,
    /// `sbf_sharded_snapshot_rebuilds_total`.
    pub snapshot_rebuilds: Arc<Counter>,
    /// `sbf_sharded_snapshot_cache_hits_total`.
    pub snapshot_cache_hits: Arc<Counter>,
}

static CORE: OnceLock<CoreMetrics> = OnceLock::new();

/// The crate's metric handles, registered in [`sbf_telemetry::global`] on
/// first call. Calling this pre-registers every metric name, so an
/// exposition dump shows the full schema even before any event fires.
pub fn core_metrics() -> &'static CoreMetrics {
    CORE.get_or_init(|| {
        let reg = sbf_telemetry::global();
        CoreMetrics {
            inserts: reg.counter("sbf_inserts_total"),
            removes: reg.counter("sbf_removes_total"),
            estimates: reg.counter("sbf_estimates_total"),
            estimate_values: reg.histogram("sbf_estimate_values"),
            cas_retries: reg.counter("sbf_atomic_cas_retries_total"),
            saturations: reg.counter("sbf_counter_saturations_total"),
            rm_inserts: reg.counter("sbf_rm_inserts_total"),
            rm_secondary_spills: reg.counter("sbf_rm_secondary_spills_total"),
            page_faults: reg.counter("sbf_page_faults_total"),
            page_accesses: reg.counter("sbf_page_accesses_total"),
            sharded_ops: reg.counter("sbf_sharded_ops_total"),
            snapshot_rebuilds: reg.counter("sbf_sharded_snapshot_rebuilds_total"),
            snapshot_cache_hits: reg.counter("sbf_sharded_snapshot_cache_hits_total"),
        }
    })
}

/// Runs `f` against the metric handles iff telemetry is enabled — the
/// zero-cost-when-disabled guard every hot path goes through.
#[inline]
pub(crate) fn on(f: impl FnOnce(&CoreMetrics)) {
    if sbf_telemetry::enabled() {
        f(core_metrics());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_registered_once() {
        let a = core_metrics() as *const CoreMetrics;
        let b = core_metrics() as *const CoreMetrics;
        assert_eq!(a, b);
        // The names exist in the global registry.
        let snap = sbf_telemetry::global().snapshot();
        assert!(snap.get("sbf_inserts_total").is_some());
        assert!(snap.get("sbf_counter_saturations_total").is_some());
    }

    #[test]
    fn on_is_a_noop_while_disabled() {
        // Tests in this workspace run with telemetry disabled unless a test
        // flips it; `on` must then not touch (or even create) handles.
        if !sbf_telemetry::enabled() {
            let before = core_metrics().inserts.get();
            on(|m| m.inserts.add(1_000_000));
            assert_eq!(core_metrics().inserts.get(), before);
        }
    }
}
