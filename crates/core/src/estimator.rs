//! The unbiased probabilistic estimator of §3.1 and its variance boosting.
//!
//! Lemma 3: with `N` the total multiplicity in the filter,
//! `f̄_x = (v̄_x − kN/m) / (1 − k/m)` is an unbiased estimator of `f_x`
//! (`v̄_x` is the mean of `x`'s `k` counters). The paper is explicit that
//! this estimator is a poor choice for individual queries — high variance,
//! and it introduces false negatives by "fixing" counters that were exact —
//! but valuable for *aggregates*, where the zero-mean errors cancel.
//!
//! §3.1.1 boosts confidence by the classic median-of-means device: split
//! the `k` counters into `k₂` groups of `k₁`, average within groups and
//! take the median of the group estimates.

use sbf_hash::{HashFamily, Key};

use crate::core_ops::SbfCore;
use crate::num;
use crate::store::CounterStore;

/// The Lemma 3 unbiased estimate of `f_key` from any SBF core.
///
/// May be negative (the estimator trades one-sidedness for zero bias).
pub fn unbiased_estimate<F, S, K>(core: &SbfCore<F, S>, key: &K) -> f64
where
    F: HashFamily,
    S: CounterStore,
    K: Key + ?Sized,
{
    let m = num::to_f64(core.m());
    let k = num::to_f64(core.k());
    let n_total = num::to_f64(core.total_count());
    let mean = core.key_counters(key).mean();
    if (1.0 - k / m).abs() < f64::EPSILON {
        return mean; // degenerate k = m; no de-biasing possible
    }
    (mean - k * n_total / m) / (1.0 - k / m)
}

/// Median-of-means variant (§3.1.1): the `k` counters are split into
/// `groups` contiguous groups; each group's mean is de-biased as in
/// Lemma 3, and the median of the group estimates is returned.
///
/// `groups` must be in `1..=k`. With `groups = 1` this equals
/// [`unbiased_estimate`].
pub fn median_of_means_estimate<F, S, K>(core: &SbfCore<F, S>, key: &K, groups: usize) -> f64
where
    F: HashFamily,
    S: CounterStore,
    K: Key + ?Sized,
{
    let k = core.k();
    assert!(groups >= 1 && groups <= k, "groups must be in 1..=k");
    let m = num::to_f64(core.m());
    let n_total = num::to_f64(core.total_count());
    let kc = core.key_counters(key);
    let values = kc.values();
    // A key whose hash functions collide has fewer than `k` *distinct*
    // counters (the core deduplicates them); split what actually exists.
    let kd = values.len();
    let groups = groups.min(kd);
    let per = kd / groups;
    let mut estimates: Vec<f64> = Vec::with_capacity(groups);
    for g in 0..groups {
        let lo = g * per;
        let hi = if g == groups - 1 { kd } else { lo + per };
        let mean: f64 =
            values[lo..hi].iter().map(|&v| num::to_f64(v)).sum::<f64>() / num::to_f64(hi - lo);
        let kf = num::to_f64(core.k());
        let est = if (1.0 - kf / m).abs() < f64::EPSILON {
            mean
        } else {
            (mean - kf * n_total / m) / (1.0 - kf / m)
        };
        estimates.push(est);
    }
    estimates.sort_by(f64::total_cmp);
    let mid = estimates.len() / 2;
    if estimates.len() % 2 == 1 {
        estimates[mid]
    } else {
        (estimates[mid - 1] + estimates[mid]) / 2.0
    }
}

/// The §3.1 hybrid: use the Recurring Minimum signal to decide *when* the
/// unbiased estimator is worth its false-negative risk.
///
/// "The Recurring Minimum method allows us to recognize potential
/// problematic cases (i.e. counters that are erroneous), in which cases we
/// might activate the unbiased estimator to produce an estimate. In all
/// other cases we do not use the estimator, and thus refrain from
/// generating false-negative errors."
///
/// Returns the plain minimum for recurring-minimum keys (almost surely
/// exact) and the de-biased estimate — clamped to `[0, m_x]`, since the
/// minimum is a sound upper bound — for single-minimum keys.
pub fn rm_combined_estimate<F, S, K>(core: &SbfCore<F, S>, key: &K) -> f64
where
    F: HashFamily,
    S: CounterStore,
    K: Key + ?Sized,
{
    let kc = core.key_counters(key);
    if kc.has_recurring_min() {
        return num::to_f64(kc.min());
    }
    unbiased_estimate(core, key).clamp(0.0, num::to_f64(kc.min()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PlainCounters;
    use sbf_hash::MixFamily;

    type Core = SbfCore<MixFamily, PlainCounters>;

    fn loaded_core(m: usize, k: usize, seed: u64, n_keys: u64, f: impl Fn(u64) -> u64) -> Core {
        let mut c = Core::from_family(MixFamily::new(m, k, seed));
        for key in 0..n_keys {
            c.increment_all(&key, f(key));
        }
        c
    }

    #[test]
    fn unbiased_on_average_across_keys() {
        // Uniform frequencies: the mean signed error across many keys should
        // be near zero, unlike the MS estimator whose error is one-sided.
        let f = 5u64;
        let core = loaded_core(2000, 5, 1, 1000, |_| f);
        let mut signed = 0.0;
        let mut ms_signed = 0.0;
        for key in 0u64..1000 {
            signed += unbiased_estimate(&core, &key) - f as f64;
            ms_signed += core.key_counters(&key).min() as f64 - f as f64;
        }
        let bias = signed / 1000.0;
        let ms_bias = ms_signed / 1000.0;
        assert!(bias.abs() < 0.6, "unbiased estimator drifts: {bias}");
        assert!(ms_bias > bias.abs(), "MS bias {ms_bias} should dominate");
    }

    #[test]
    fn produces_false_negatives_by_design() {
        // §3.1: "All counters whose error rate is below the average error
        // will turn into false-negatives."
        let core = loaded_core(1000, 5, 2, 800, |k| if k == 0 { 1000 } else { 1 });
        let fn_count = (1u64..800)
            .filter(|k| unbiased_estimate(&core, k) < 1.0)
            .count();
        assert!(fn_count > 0, "skewed data should push small items negative");
    }

    #[test]
    fn aggregate_sum_is_accurate() {
        let core = loaded_core(3000, 5, 3, 1500, |k| k % 10 + 1);
        let truth: f64 = (0u64..1500).map(|k| (k % 10 + 1) as f64).sum();
        let est: f64 = (0u64..1500).map(|k| unbiased_estimate(&core, &k)).sum();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.05, "aggregate relative error {rel}");
    }

    #[test]
    fn median_of_means_reduces_spread() {
        let core = loaded_core(1200, 6, 4, 1000, |_| 3);
        let spread = |est: &dyn Fn(&Core, &u64) -> f64| -> f64 {
            let vals: Vec<f64> = (0u64..1000).map(|k| est(&core, &k)).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        let s1 = spread(&|c, k| unbiased_estimate(c, k));
        let s3 = spread(&|c, k| median_of_means_estimate(c, k, 3));
        // The median is more robust; it should not be wildly worse, and the
        // two must be finite and sane.
        assert!(s1.is_finite() && s3.is_finite());
        assert!(s3 <= s1 * 1.5, "median-of-means spread {s3} vs mean {s1}");
    }

    #[test]
    fn rm_combined_beats_both_parents_on_skewed_data() {
        // Skewed load: MS over-estimates the tail, the raw unbiased
        // estimator drags exact keys negative; the hybrid avoids both.
        let core = loaded_core(900, 5, 11, 700, |k| if k < 10 { 500 } else { 2 });
        let truth = |k: u64| if k < 10 { 500.0 } else { 2.0 };
        let mut err_ms = 0.0;
        let mut err_unbiased = 0.0;
        let mut err_hybrid = 0.0;
        for key in 0u64..700 {
            let t = truth(key);
            err_ms += (core.key_counters(&key).min() as f64 - t).abs();
            err_unbiased += (unbiased_estimate(&core, &key) - t).abs();
            err_hybrid += (rm_combined_estimate(&core, &key) - t).abs();
        }
        assert!(err_hybrid <= err_ms, "hybrid {err_hybrid} vs MS {err_ms}");
        assert!(
            err_hybrid <= err_unbiased,
            "hybrid {err_hybrid} vs unbiased {err_unbiased}"
        );
    }

    #[test]
    fn rm_combined_never_exceeds_the_minimum() {
        let core = loaded_core(500, 5, 12, 400, |k| k % 6);
        for key in 0u64..400 {
            let est = rm_combined_estimate(&core, &key);
            assert!(est <= core.key_counters(&key).min() as f64 + 1e-9);
            assert!(est >= 0.0);
        }
    }

    #[test]
    fn groups_one_equals_plain_estimator() {
        let core = loaded_core(500, 5, 5, 300, |k| k % 4);
        for key in 0u64..50 {
            let a = unbiased_estimate(&core, &key);
            let b = median_of_means_estimate(&core, &key, 1);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "groups must be")]
    fn too_many_groups_rejected() {
        let core = loaded_core(100, 3, 6, 10, |_| 1);
        let _ = median_of_means_estimate(&core, &1u64, 4);
    }
}
