//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no route to a crates registry, so the real
//! proptest cannot be vendored; this shim implements the subset of its API
//! that the workspace's property tests actually use, under the same paths:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * integer-range / tuple / `Just` / `any::<T>()` strategies,
//! * `proptest::collection::vec` (aliased as `prop::collection::vec`),
//! * `prop::bool::ANY`,
//! * weighted [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from real proptest in two deliberate ways: generation
//! is deterministic (seeded per test name, so failures reproduce), and
//! there is **no shrinking** — a failing case panics with the ordinary
//! assert message. Both are acceptable for CI-style regression testing,
//! which is how this workspace uses property tests.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a deterministic RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy (prefer `any::<T>()`).
        pub const fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Weighted choice among boxed strategies of one value type.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds from `(weight, strategy)` arms. Weights must not all be 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total_weight;
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of permissible collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    /// Uniformly random booleans.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> = crate::strategy::Any::new();
}

pub mod test_runner {
    //! The runner driving each `proptest!`-generated test.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 — deterministic, seeded from the test's name so runs are
    /// reproducible without a persistence file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string (the test name).
        pub fn from_name(name: &str) -> Self {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in name.bytes() {
                state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runs the configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner for the named test.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            TestRunner {
                rng: TestRng::from_name(name),
                config,
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests import.

    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` alias used by `prop::collection::vec` etc.
    pub use crate as prop;

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::new()
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_test(x in 0u64..100, (a, b) in (0usize..4, prop::bool::ANY)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for __case in 0..runner.cases() {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), runner.rng()),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure; the
/// shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Ends the test early when an assumption fails. Real proptest redraws the
/// case; the shim cannot, so it conservatively stops (never fails a test
/// spuriously, at the cost of fewer effective cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Weighted (`w => strategy`) or unweighted choice among strategies sharing
/// a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_tuple_strategies(
            ops in prop::collection::vec((0usize..8, prop::bool::ANY), 1..20)
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (i, b) in ops {
                prop_assert!(i < 8);
                let _: bool = b;
            }
        }

        #[test]
        fn oneof_respects_arms(v in prop_oneof![
            5 => 0u64..4,
            1 => Just(99u64),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
