//! Dynamic maintenance for the compact (§4.5) representation.
//!
//! §4.5 closes with: *"The same approach that is described in Section 4.4
//! can be used to allow dynamic maintenance of the structure."* This module
//! is that combination: counters are stored under a prefix-free codec
//! (Elias δ by default) in per-group regions with slack, exactly like
//! [`crate::DynamicCounterArray`] — but with **no per-item bookkeeping at
//! all**. An access decodes sequentially from the group start (≤
//! `group_size` codewords); an update re-encodes the group's suffix in
//! place, borrowing slack from neighbors or rebuilding when a region
//! overflows.
//!
//! This is the most compact mutable backend in the workspace: total
//! storage is the Elias-coded payload + slack + three words per group. The
//! `static_vs_compact_lookup` ablation bench measures what the missing
//! index costs in access time.

use sbf_bitvec::{BitReader, BitVec, BitWriter};
use sbf_encoding::{Codec, EliasDelta};

use crate::dynamic::Underflow;

/// Tuning for [`DynamicCompactArray`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactConfig {
    /// Items per group (decode cost per access is ≤ this).
    pub group_size: usize,
    /// Slack bits per group region.
    pub slack_bits_per_group: usize,
}

impl Default for CompactConfig {
    fn default() -> Self {
        // Larger groups than the width-based array: the per-group words are
        // this structure's only fixed cost, so amortizing them over 32
        // items keeps total overhead near one bit per idle counter.
        CompactConfig {
            group_size: 32,
            slack_bits_per_group: 32,
        }
    }
}

/// Maintenance statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Full rebuilds.
    pub rebuilds: usize,
    /// Cross-group slack borrows.
    pub region_shifts: u64,
}

/// A mutable, prefix-free-coded counter array with per-group slack.
#[derive(Debug, Clone)]
pub struct DynamicCompactArray<C: Codec = EliasDelta> {
    codec: C,
    base: BitVec,
    cfg: CompactConfig,
    m: usize,
    starts: Vec<usize>,
    caps: Vec<usize>,
    used: Vec<usize>,
    stats: CompactStats,
}

impl DynamicCompactArray<EliasDelta> {
    /// `m` zero counters under Elias δ and the default configuration.
    pub fn new(m: usize) -> Self {
        Self::with_config(EliasDelta, m, CompactConfig::default())
    }
}

impl<C: Codec> DynamicCompactArray<C> {
    /// `m` zero counters under `codec` and `cfg`.
    pub fn with_config(codec: C, m: usize, cfg: CompactConfig) -> Self {
        assert!(cfg.group_size > 0, "group_size must be positive");
        let mut arr = DynamicCompactArray {
            codec,
            base: BitVec::new(),
            cfg,
            m,
            starts: Vec::new(),
            caps: Vec::new(),
            used: Vec::new(),
            stats: CompactStats::default(),
        };
        let zeros = vec![0u64; m];
        arr.layout(&zeros, cfg.slack_bits_per_group);
        arr
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the array holds no counters.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> CompactStats {
        self.stats
    }

    fn n_groups(&self) -> usize {
        self.m.div_ceil(self.cfg.group_size)
    }

    fn group_range(&self, g: usize) -> (usize, usize) {
        let lo = g * self.cfg.group_size;
        let hi = ((g + 1) * self.cfg.group_size).min(self.m);
        (lo, hi)
    }

    fn layout(&mut self, counters: &[u64], slack: usize) {
        let n_groups = counters.len().div_ceil(self.cfg.group_size);
        self.starts.clear();
        self.caps.clear();
        self.used.clear();
        let mut writer = BitWriter::new();
        let mut group_bits = Vec::with_capacity(n_groups);
        // First encode everything to learn each group's payload size.
        for g in 0..n_groups {
            let lo = g * self.cfg.group_size;
            let hi = ((g + 1) * self.cfg.group_size).min(counters.len());
            let before = writer.len();
            for &c in &counters[lo..hi] {
                self.codec.encode(c, &mut writer);
            }
            group_bits.push(writer.len() - before);
        }
        let payload = writer.finish();
        let total: usize = group_bits.iter().map(|b| b + slack).sum();
        let mut base = BitVec::zeros(total);
        let mut src = 0usize;
        let mut dst = 0usize;
        for &bits in &group_bits {
            self.starts.push(dst);
            self.used.push(bits);
            self.caps.push(bits + slack);
            // Copy this group's payload into its region.
            let mut done = 0;
            while done < bits {
                let chunk = (bits - done).min(64);
                let v = payload.read_bits(src + done, chunk);
                base.write_bits(dst + done, chunk, v);
                done += chunk;
            }
            src += bits;
            dst += bits + slack;
        }
        self.base = base;
    }

    /// Decodes all counters of group `g`.
    fn decode_group(&self, g: usize) -> Vec<u64> {
        let (lo, hi) = self.group_range(g);
        let mut reader =
            BitReader::with_range(&self.base, self.starts[g], self.starts[g] + self.used[g]);
        (lo..hi)
            .map(|_| {
                self.codec
                    .decode(&mut reader)
                    .unwrap_or_else(|| unreachable!("group payload intact"))
            })
            .collect()
    }

    /// Reads counter `i`: sequential decode of ≤ `group_size` codewords.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.m, "counter {i} out of range {}", self.m);
        let g = i / self.cfg.group_size;
        let (lo, _) = self.group_range(g);
        let mut reader =
            BitReader::with_range(&self.base, self.starts[g], self.starts[g] + self.used[g]);
        for _ in lo..i {
            self.codec
                .decode(&mut reader)
                .unwrap_or_else(|| unreachable!("group payload intact"));
        }
        self.codec
            .decode(&mut reader)
            .unwrap_or_else(|| unreachable!("group payload intact"))
    }

    /// All values.
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.n_groups())
            .flat_map(|g| self.decode_group(g))
            .collect()
    }

    /// Writes counter `i` to `v`, re-encoding its group.
    pub fn set(&mut self, i: usize, v: u64) {
        assert!(i < self.m, "counter {i} out of range {}", self.m);
        loop {
            let g = i / self.cfg.group_size;
            let (lo, _) = self.group_range(g);
            let mut values = self.decode_group(g);
            if values[i - lo] == v {
                return;
            }
            values[i - lo] = v;
            let mut w = BitWriter::new();
            for &c in &values {
                self.codec.encode(c, &mut w);
            }
            let payload = w.finish();
            if payload.len() <= self.caps[g] {
                let mut done = 0;
                while done < payload.len() {
                    let chunk = (payload.len() - done).min(64);
                    let bits = payload.read_bits(done, chunk);
                    self.base.write_bits(self.starts[g] + done, chunk, bits);
                    done += chunk;
                }
                self.used[g] = payload.len();
                return;
            }
            let need = payload.len() - self.caps[g];
            if self.try_slide(g, need) {
                continue;
            }
            // Refresh the whole array with enough fresh slack.
            let mut counters = self.to_vec();
            counters[i] = v;
            let slack = self.cfg.slack_bits_per_group.max(need);
            self.layout(&counters, slack);
            self.stats.rebuilds += 1;
            return;
        }
    }

    /// Adds `by`; panics on overflow.
    pub fn increment(&mut self, i: usize, by: u64) {
        let Some(v) = self.get(i).checked_add(by) else {
            panic!("counter overflow")
        };
        self.set(i, v);
    }

    /// Subtracts `by`, failing cleanly on underflow.
    pub fn decrement(&mut self, i: usize, by: u64) -> Result<(), Underflow> {
        let v = self.get(i);
        if by > v {
            return Err(Underflow {
                index: i,
                value: v,
                by,
            });
        }
        self.set(i, v - by);
        Ok(())
    }

    /// Borrows `need` bits of slack from the nearest group to the right
    /// (bounded search, as in the §4.4 array).
    fn try_slide(&mut self, g: usize, need: usize) -> bool {
        let limit = (g + 1 + 32).min(self.n_groups());
        let mut h = g + 1;
        while h < limit {
            if self.caps[h] - self.used[h] >= need {
                break;
            }
            h += 1;
        }
        if h >= limit {
            return false;
        }
        let src = self.starts[g + 1];
        let count = self.starts[h] + self.used[h] - src;
        self.base.copy_within(src, src + need, count);
        for s in self.starts.iter_mut().take(h + 1).skip(g + 1) {
            *s += need;
        }
        self.caps[g] += need;
        self.caps[h] -= need;
        self.stats.region_shifts += 1;
        true
    }

    /// Total bits: payload + slack + three words per group. No per-item
    /// term at all — the difference from [`crate::DynamicCounterArray`].
    pub fn total_bits(&self) -> usize {
        self.base.len() + self.starts.len() * 3 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_then_roundtrip() {
        let mut arr = DynamicCompactArray::new(500);
        for i in 0..500 {
            assert_eq!(arr.get(i), 0);
        }
        for i in 0..500 {
            arr.set(i, (i as u64) * 37 % 10_000);
        }
        for i in 0..500 {
            assert_eq!(arr.get(i), (i as u64) * 37 % 10_000, "counter {i}");
        }
    }

    #[test]
    fn growth_through_slack_and_rebuilds() {
        let mut arr = DynamicCompactArray::with_config(
            EliasDelta,
            64,
            CompactConfig {
                group_size: 8,
                slack_bits_per_group: 4,
            },
        );
        for step in 0..30u64 {
            arr.increment(9, 1 << step.min(40));
        }
        let expected: u64 = (0..30u64).map(|s| 1u64 << s.min(40)).sum();
        assert_eq!(arr.get(9), expected);
        let st = arr.stats();
        assert!(
            st.rebuilds > 0 || st.region_shifts > 0,
            "growth must exercise maintenance: {st:?}"
        );
    }

    #[test]
    fn decrement_and_underflow() {
        let mut arr = DynamicCompactArray::new(10);
        arr.increment(3, 50);
        arr.decrement(3, 20).unwrap();
        assert_eq!(arr.get(3), 30);
        assert!(arr.decrement(3, 31).is_err());
        assert_eq!(arr.get(3), 30);
    }

    #[test]
    fn smaller_than_width_based_dynamic_array() {
        // Mostly-idle counters: Elias δ pays 1 bit per zero and no per-item
        // width byte, so the compact form wins clearly once the per-group
        // words amortize (group_size 64).
        let mut compact = DynamicCompactArray::with_config(
            EliasDelta,
            20_000,
            CompactConfig {
                group_size: 64,
                slack_bits_per_group: 32,
            },
        );
        let mut widthful = crate::DynamicCounterArray::new(20_000);
        for i in (0..20_000).step_by(50) {
            compact.set(i, 12);
            widthful.set(i, 12);
        }
        assert_eq!(compact.to_vec(), widthful.to_vec());
        assert!(
            compact.total_bits() * 2 < widthful.total_bits(),
            "compact {} vs widthful {}",
            compact.total_bits(),
            widthful.total_bits()
        );
    }

    #[test]
    fn empty_array() {
        let arr = DynamicCompactArray::new(0);
        assert!(arr.is_empty());
        assert_eq!(arr.to_vec(), Vec::<u64>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_vec_model(
            m in 1usize..60,
            ops in prop::collection::vec((0usize..60, 0u64..(1 << 30)), 1..150),
            gs in 1usize..10,
            slack in 0usize..12,
        ) {
            let cfg = CompactConfig { group_size: gs, slack_bits_per_group: slack };
            let mut arr = DynamicCompactArray::with_config(EliasDelta, m, cfg);
            let mut model = vec![0u64; m];
            for (i, v) in ops {
                let i = i % m;
                arr.set(i, v);
                model[i] = v;
                prop_assert_eq!(arr.get(i), v);
            }
            prop_assert_eq!(arr.to_vec(), model);
        }
    }
}
