//! A read-only counter array backed by the static String-Array Index.

use sbf_bitvec::BitVec;
use sbf_encoding::counter_width;

use crate::serialize::{Reader, SerializeError, Writer};
use crate::size::SizeBreakdown;
use crate::static_index::StringArrayIndex;

/// `m` counters packed at `⌈log C⌉` bits each (1-bit minimum), with a
/// [`StringArrayIndex`] for O(1) access — the static SBF base array of
/// Theorem 6.
#[derive(Debug, Clone)]
pub struct StaticCounterArray {
    base: BitVec,
    index: StringArrayIndex,
}

impl StaticCounterArray {
    /// Packs `counters` and builds the index. `O(N)` time.
    pub fn from_counters(counters: &[u64]) -> Self {
        let lengths: Vec<usize> = counters.iter().map(|&c| counter_width(c)).collect();
        Self::assemble(counters, StringArrayIndex::build(&lengths))
    }

    /// Packs `counters` behind the §4.6 storage-reduced index with
    /// reduction exponent `c` (Theorem 9).
    pub fn from_counters_reduced(counters: &[u64], c: u32) -> Self {
        let lengths: Vec<usize> = counters.iter().map(|&v| counter_width(v)).collect();
        Self::assemble(counters, StringArrayIndex::build_reduced(&lengths, c))
    }

    fn assemble(counters: &[u64], index: StringArrayIndex) -> Self {
        let mut base = BitVec::zeros(index.n_bits());
        let mut pos = 0usize;
        for &v in counters {
            let w = counter_width(v);
            base.write_bits(pos, w, v);
            pos += w;
        }
        StaticCounterArray { base, index }
    }

    /// Serializes base array + index into one continuous buffer (§4.7.1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bitvec(&self.base);
        let idx = self.index.to_bytes();
        w.usize(idx.len());
        let mut buf = w.finish();
        buf.extend_from_slice(&idx);
        buf
    }

    /// Reconstructs from [`Self::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, SerializeError> {
        let mut r = Reader::new(buf);
        let base = r.bitvec()?;
        let idx_len = r.usize_checked(buf.len())?;
        let consumed = buf.len() - idx_len;
        // The index occupies exactly the tail.
        let index = StringArrayIndex::from_bytes(&buf[consumed..])?;
        if index.n_bits() != base.len() {
            return Err(SerializeError::Malformed);
        }
        Ok(StaticCounterArray { base, index })
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the array holds no counters.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Reads counter `i` in O(1).
    pub fn get(&self, i: usize) -> u64 {
        let r = self.index.locate(i);
        self.base.read_bits(r.start, r.end - r.start)
    }

    /// The index (for parameter/size introspection).
    pub fn index(&self) -> &StringArrayIndex {
        &self.index
    }

    /// Full storage breakdown, base array included.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        let mut sz = self.index.size_breakdown();
        sz.base_bits = self.base.len();
        sz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrips_varied_counters() {
        let counters: Vec<u64> = (0..3000)
            .map(|i| match i % 7 {
                0 => 0,
                1 => 1,
                2 => 2,
                3 => 100,
                4 => 65_535,
                5 => 1 << 40,
                _ => 3,
            })
            .collect();
        let arr = StaticCounterArray::from_counters(&counters);
        assert_eq!(arr.len(), counters.len());
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(arr.get(i), c, "counter {i}");
        }
    }

    #[test]
    fn zero_counters_take_one_bit_each() {
        let arr = StaticCounterArray::from_counters(&vec![0u64; 512]);
        let sz = arr.size_breakdown();
        assert_eq!(sz.base_bits, 512);
        for i in 0..512 {
            assert_eq!(arr.get(i), 0);
        }
    }

    #[test]
    fn base_bits_match_paper_n() {
        // N = Σ ⌈log C⌉ with the 1-bit floor.
        let counters = [0u64, 1, 2, 3, 4, 255, 256];
        let arr = StaticCounterArray::from_counters(&counters);
        let n: usize = counters
            .iter()
            .map(|&c| sbf_encoding::counter_width(c))
            .sum();
        assert_eq!(arr.size_breakdown().base_bits, n);
    }

    #[test]
    fn reduced_variant_roundtrips_and_shrinks() {
        let counters: Vec<u64> = (0..20_000).map(|i| (i * 31) % 500).collect();
        let classic = StaticCounterArray::from_counters(&counters);
        let reduced = StaticCounterArray::from_counters_reduced(&counters, 2);
        for i in (0..counters.len()).step_by(373) {
            assert_eq!(reduced.get(i), counters[i], "counter {i}");
        }
        assert!(
            reduced.size_breakdown().index_bits() < classic.size_breakdown().index_bits(),
            "reduced index must be smaller"
        );
    }

    #[test]
    fn continuous_block_roundtrip() {
        // §4.7.1: one buffer out, identical structure in.
        let counters: Vec<u64> = (0..5000).map(|i| (i * 17) % 300).collect();
        let arr = StaticCounterArray::from_counters(&counters);
        let buf = arr.to_bytes();
        let back = StaticCounterArray::from_bytes(&buf).expect("self-produced buffer");
        assert_eq!(back.len(), arr.len());
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(back.get(i), c, "counter {i}");
        }
        assert_eq!(
            back.size_breakdown().base_bits,
            arr.size_breakdown().base_bits
        );
    }

    #[test]
    fn corrupt_blocks_are_rejected_not_panicked() {
        let arr = StaticCounterArray::from_counters(&[1, 2, 3, 400]);
        let buf = arr.to_bytes();
        for cut in [0, 1, 8, buf.len() / 2, buf.len() - 1] {
            assert!(
                StaticCounterArray::from_bytes(&buf[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(StaticCounterArray::from_bytes(&bad).is_err());
    }

    #[test]
    fn empty_array() {
        let arr = StaticCounterArray::from_counters(&[]);
        assert!(arr.is_empty());
        assert_eq!(arr.size_breakdown().base_bits, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn from_bytes_never_panics_on_fuzz(bytes in prop::collection::vec(any::<u8>(), 0..500)) {
            let _ = StaticCounterArray::from_bytes(&bytes);
        }

        #[test]
        fn get_matches_source_prop(counters in prop::collection::vec(0u64..u64::MAX, 0..300)) {
            let arr = StaticCounterArray::from_counters(&counters);
            for (i, &c) in counters.iter().enumerate() {
                prop_assert_eq!(arr.get(i), c);
            }
        }
    }
}
