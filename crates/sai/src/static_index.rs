//! The static String-Array Index (§4.3 of the paper).
//!
//! Three levels of offset information over the concatenation `S` of `m`
//! variable-length strings totalling `N` bits:
//!
//! 1. **`C¹`** — a coarse vector with the absolute start of every group of
//!    `⌈log N⌉` items (`m/log N` offsets of `log N` bits ⇒ ~`m` bits).
//! 2. Per group: if the group is *large* (> `log³N` bits) a **complete
//!    offset vector** of per-item absolute offsets (affordable because the
//!    group is large); otherwise a **level-2 coarse vector** with the
//!    relative start of every chunk of `⌈log log N⌉` items.
//! 3. Per chunk of a chunked group: if the chunk is *large*
//!    (> `(log log N)³` bits) an **offset vector** of per-item relative
//!    offsets; if its length pattern recurs, an entry in the **global
//!    lookup table**, keyed by the chunk's sequence of item lengths
//!    (`L(S'')` in the paper), mapping `(pattern, q)` to the `q`-th item's
//!    offset inside the chunk; otherwise (small chunk, one-off pattern) an
//!    **inline length vector**, decoded by a bounded prefix-sum scan.
//!
//! Indicator vectors with rank directories (the `F`-vector trick of
//! §4.7.2) translate group/chunk ordinals into positions inside the
//! packed component arrays, so the whole index lives in flat, contiguous
//! storage — the "continuous memory" implementation of §4.7.1.

use sbf_bitvec::{BitVec, PackedVec, RankSelect};
use sbf_encoding::bit_len;

use crate::serialize::{Reader, SerializeError, Writer};
use crate::size::SizeBreakdown;

/// Derived parameters of a [`StringArrayIndex`]; all group/threshold
/// choices follow §4.3 (with floors so degenerate sizes stay well-formed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexParams {
    /// Total bits `N` of the concatenated strings.
    pub n_bits: usize,
    /// Number of strings `m`.
    pub m: usize,
    /// `⌈log₂ N⌉`, floored at 2.
    pub lg: usize,
    /// `⌈log₂ lg⌉`, floored at 1.
    pub llg: usize,
    /// Items per level-1 group (`lg` classic; `lg^{1+c}` reduced).
    pub g1: usize,
    /// Items per level-2 chunk (`llg` classic; `llg^{1+c}` reduced).
    pub g2: usize,
    /// Chunk slots per chunked group (`⌈g1/g2⌉`).
    pub chunks_per_group: usize,
    /// Groups larger than this (bits) get complete offset vectors
    /// (`lg³` classic; `(3+6c)·lg^{1+c}·llg^{1+c}` reduced).
    pub big_group_bits: usize,
    /// Chunks larger than this (bits) get offset vectors
    /// (`llg³` classic; `(3+6c)·llg^{2+2c}` reduced).
    pub big_chunk_bits: usize,
}

impl IndexParams {
    /// Computes parameters for `m` strings totalling `n_bits`.
    pub fn compute(n_bits: usize, m: usize) -> Self {
        let lg = bit_len(n_bits as u64).max(2);
        let llg = bit_len(lg as u64).max(1);
        let g1 = lg;
        let g2 = llg;
        IndexParams {
            n_bits,
            m,
            lg,
            llg,
            g1,
            g2,
            chunks_per_group: g1.div_ceil(g2),
            big_group_bits: lg * lg * lg,
            big_chunk_bits: llg * llg * llg,
        }
    }

    /// Parameters for the §4.6 storage-reduced index (Theorem 9).
    ///
    /// With reduction exponent `c ≥ 0` the level-1 groups grow to
    /// `(log N)^{1+c}` items and level-2 chunks to `(log log N)^{1+c}`,
    /// with the complete-vector thresholds loosened per Claim 10 to
    /// `(3+6c)·(log N)^{1+c}·(log log N)^{1+c}` bits for groups and
    /// `(3+6c)·(log log N)^{2+2c}` for chunks — shrinking the whole index
    /// to `o(N/(log log N)^c) + O(m/(log log N)^c)` bits at the cost of a
    /// constant-factor longer third-level structure walk. `c = 0` gives a
    /// slightly tighter variant of the classic layout.
    pub fn compute_reduced(n_bits: usize, m: usize, c: u32) -> Self {
        let lg = bit_len(n_bits as u64).max(2);
        let llg = bit_len(lg as u64).max(1);
        let pow = |base: usize, e: u32| -> usize { base.saturating_pow(e).max(1) };
        let g1 = pow(lg, 1 + c).min(m.max(1));
        let g2 = pow(llg, 1 + c).min(g1);
        let factor = 3 + 6 * c as usize;
        IndexParams {
            n_bits,
            m,
            lg,
            llg,
            g1,
            g2,
            chunks_per_group: g1.div_ceil(g2),
            big_group_bits: factor
                .saturating_mul(pow(lg, 1 + c))
                .saturating_mul(pow(llg, 1 + c)),
            big_chunk_bits: factor.saturating_mul(pow(llg, 2 + 2 * c)),
        }
    }

    /// Number of level-1 groups.
    pub fn n_groups(&self) -> usize {
        self.m.div_ceil(self.g1)
    }
}

/// The global lookup table shared by all small chunks.
///
/// One entry per distinct length-pattern; an entry stores the `g2 + 1`
/// prefix offsets of the pattern (so both the offset and the length of any
/// item inside such a chunk come from one probe).
#[derive(Debug, Clone)]
struct LookupTable {
    /// Flattened offsets, `g2 + 1` per pattern.
    offsets: PackedVec,
    entries_per_pattern: usize,
    n_patterns: usize,
}

impl LookupTable {
    fn offset(&self, pattern: usize, q: usize) -> usize {
        debug_assert!(q < self.entries_per_pattern);
        self.offsets.get(pattern * self.entries_per_pattern + q) as usize
    }

    fn bits(&self) -> usize {
        self.offsets.bits()
    }
}

/// Static String-Array Index: O(1) [`Self::locate`] over the concatenation
/// of `m` variable-length strings.
///
/// Built once from the item lengths; the strings themselves live wherever
/// the caller keeps them (see [`crate::StaticCounterArray`] for the
/// counters instantiation).
///
/// ```
/// use sbf_sai::StringArrayIndex;
///
/// let idx = StringArrayIndex::build(&[3, 0, 7, 1]);
/// assert_eq!(idx.locate(0), 0..3);
/// assert_eq!(idx.locate(1), 3..3);      // zero-length strings are fine
/// assert_eq!(idx.locate(2), 3..10);
/// assert_eq!(idx.n_bits(), 11);
/// ```
#[derive(Debug, Clone)]
pub struct StringArrayIndex {
    params: IndexParams,
    /// Absolute start of each group.
    c1: PackedVec,
    /// 1 = group has a complete offset vector.
    group_flags: RankSelect,
    /// Concatenated complete vectors (absolute offsets), `g1` per group.
    complete: PackedVec,
    /// Concatenated level-2 coarse vectors (chunk starts relative to group
    /// start), `chunks_per_group` per chunked group.
    coarse2: PackedVec,
    /// 1 = chunk is *big* (> `big_chunk_bits`) and has an explicit offset
    /// vector (indexed per chunk slot of chunked groups).
    big_chunk_flags: RankSelect,
    /// Among the small chunks: 1 = answered by the lookup table (its length
    /// pattern recurs), 0 = answered by an inline length vector.
    table_flags: RankSelect,
    /// Concatenated level-3 offset vectors (item starts relative to chunk
    /// start), `g2` per big chunk.
    l3: PackedVec,
    /// Concatenated length vectors for small unique-pattern chunks, `g2`
    /// entries each; an item's offset is the prefix sum of at most `g2`
    /// lengths (a constant-bounded scan, as in the §4.5 alternative).
    l4: PackedVec,
    /// Pattern ids for table chunks.
    pattern_ids: PackedVec,
    table: LookupTable,
}

impl StringArrayIndex {
    /// Builds the index from item lengths (bits). `O(m)` time.
    pub fn build(lengths: &[usize]) -> Self {
        let m = lengths.len();
        // Prefix offsets: off[i] = start of item i; off[m] = N.
        let mut off = Vec::with_capacity(m + 1);
        let mut acc = 0usize;
        off.push(0);
        for &l in lengths {
            let Some(next) = acc.checked_add(l) else {
                panic!("total bit length overflows usize")
            };
            acc = next;
            off.push(acc);
        }
        let n_bits = acc;
        let params = IndexParams::compute(n_bits, m);
        Self::build_with_params(params, &off)
    }

    /// Builds the §4.6 storage-reduced variant with reduction exponent `c`
    /// (Theorem 9). Same O(1) access algorithm over coarser levels; the
    /// index shrinks roughly geometrically in `c`.
    pub fn build_reduced(lengths: &[usize], c: u32) -> Self {
        let m = lengths.len();
        let mut off = Vec::with_capacity(m + 1);
        let mut acc = 0usize;
        off.push(0);
        for &l in lengths {
            let Some(next) = acc.checked_add(l) else {
                panic!("total bit length overflows usize")
            };
            acc = next;
            off.push(acc);
        }
        let params = IndexParams::compute_reduced(acc, m, c);
        Self::build_with_params(params, &off)
    }

    /// Builds with explicit parameters (used by tests to force degenerate
    /// thresholds); `off` is the `m + 1` prefix-offset array.
    pub(crate) fn build_with_params(params: IndexParams, off: &[usize]) -> Self {
        let m = params.m;
        debug_assert_eq!(off.len(), m + 1);
        let n_groups = params.n_groups();

        let mut c1_vals = Vec::with_capacity(n_groups);
        let mut gflags = BitVec::with_capacity(n_groups);
        let mut complete_vals = Vec::new();
        let mut coarse2_vals = Vec::new();
        let mut cflags = BitVec::new();
        let mut l3_vals = Vec::new();
        let mut pattern_vals = Vec::new();

        // Pattern interning for the lookup table.
        let mut pattern_map: std::collections::HashMap<Vec<u32>, usize> =
            std::collections::HashMap::new();
        let mut patterns: Vec<Vec<u32>> = Vec::new();

        // Pass 1 over chunks of chunked groups: collect each chunk's length
        // pattern and how often every pattern occurs. Only *recurring*
        // patterns earn a lookup-table entry — a single-use pattern would
        // cost more as a table row + id than as a plain offset vector
        // (one of the §4.7 engineering notes: "several of the structures
        // could be eliminated or altered due to practical considerations").
        struct ChunkInfo {
            c_lo: usize,
            c_hi: usize,
            rel_start: u64,
            /// `None` marks a big chunk (forced offset vector).
            pat: Option<Vec<u32>>,
        }
        let mut chunks: Vec<ChunkInfo> = Vec::new();
        let mut pattern_counts: std::collections::HashMap<Vec<u32>, usize> =
            std::collections::HashMap::new();

        for j in 0..n_groups {
            let g_lo = j * params.g1;
            let g_hi = ((j + 1) * params.g1).min(m);
            let g_start = off[g_lo];
            let g_bits = off[g_hi] - g_start;
            c1_vals.push(g_start as u64);
            let is_complete = g_bits > params.big_group_bits;
            gflags.push(is_complete);
            if is_complete {
                // Absolute per-item offsets, padded to g1 entries.
                for r in 0..params.g1 {
                    let i = (g_lo + r).min(g_hi);
                    complete_vals.push(off[i] as u64);
                }
            } else {
                for c in 0..params.chunks_per_group {
                    let c_lo = (g_lo + c * params.g2).min(g_hi);
                    let c_hi = (g_lo + (c + 1) * params.g2).min(g_hi);
                    let c_start = off[c_lo];
                    let c_bits = off[c_hi] - c_start;
                    let big = c_bits > params.big_chunk_bits;
                    let pat = if big {
                        None
                    } else {
                        let p: Vec<u32> =
                            (c_lo..c_hi).map(|i| (off[i + 1] - off[i]) as u32).collect();
                        *pattern_counts.entry(p.clone()).or_insert(0) += 1;
                        Some(p)
                    };
                    chunks.push(ChunkInfo {
                        c_lo,
                        c_hi,
                        rel_start: (c_start - g_start) as u64,
                        pat,
                    });
                }
            }
        }

        // Pass 2: big chunks get offset vectors; small chunks whose length
        // pattern recurs intern it in the table; small chunks with a
        // one-off pattern store their lengths inline (cheaper than offsets
        // because lengths are bounded by the chunk extent, and accessed by
        // a prefix-sum scan of at most g2 entries).
        let mut l4_vals: Vec<u64> = Vec::new();
        let mut tflags = BitVec::new();
        for chunk in &chunks {
            coarse2_vals.push(chunk.rel_start);
            match &chunk.pat {
                None => {
                    cflags.push(true);
                    let c_start = off[chunk.c_lo];
                    for q in 0..params.g2 {
                        let i = (chunk.c_lo + q).min(chunk.c_hi);
                        l3_vals.push((off[i] - c_start) as u64);
                    }
                }
                Some(pat) => {
                    cflags.push(false);
                    if pattern_counts[pat] >= 2 {
                        tflags.push(true);
                        let next = patterns.len();
                        let pid = *pattern_map.entry(pat.clone()).or_insert_with(|| {
                            patterns.push(pat.clone());
                            next
                        });
                        pattern_vals.push(pid as u64);
                    } else {
                        tflags.push(false);
                        for q in 0..params.g2 {
                            l4_vals.push(u64::from(pat.get(q).copied().unwrap_or(0)));
                        }
                    }
                }
            }
        }

        // Pack everything at its final width. Offsets inside groups/chunks
        // are bounded by the thresholds (`lg³`, `llg³`), but the *observed*
        // maxima are usually far smaller, so entries are sized from the
        // data (the §4.7.2 engineering latitude; lookups are unaffected
        // because widths are stored once per component).
        let abs_w = bit_len(params.n_bits as u64).max(1);
        let grp_w = bit_len(
            coarse2_vals
                .iter()
                .chain(&l3_vals)
                .copied()
                .max()
                .unwrap_or(0),
        )
        .max(1);
        let len_w = bit_len(l4_vals.iter().copied().max().unwrap_or(0)).max(1);
        let pat_w = bit_len(patterns.len().saturating_sub(1) as u64).max(1);
        let tbl_w = bit_len(
            patterns
                .iter()
                .map(|p| p.iter().map(|&l| u64::from(l)).sum::<u64>())
                .max()
                .unwrap_or(0),
        )
        .max(1);

        let mut table_offsets = PackedVec::with_capacity(tbl_w, patterns.len() * (params.g2 + 1));
        for pat in &patterns {
            let mut acc = 0u64;
            // g2 + 1 prefix offsets; short patterns pad with the end offset.
            for q in 0..=params.g2 {
                table_offsets.push(acc);
                if q < pat.len() {
                    acc += u64::from(pat[q]);
                }
            }
        }

        StringArrayIndex {
            params,
            c1: PackedVec::from_slice(abs_w, &c1_vals),
            group_flags: RankSelect::new(gflags),
            complete: PackedVec::from_slice(abs_w, &complete_vals),
            coarse2: PackedVec::from_slice(grp_w, &coarse2_vals),
            big_chunk_flags: RankSelect::new(cflags),
            table_flags: RankSelect::new(tflags),
            l3: PackedVec::from_slice(grp_w, &l3_vals),
            l4: PackedVec::from_slice(len_w, &l4_vals),
            pattern_ids: PackedVec::from_slice(pat_w, &pattern_vals),
            table: LookupTable {
                offsets: table_offsets,
                entries_per_pattern: params.g2 + 1,
                n_patterns: patterns.len(),
            },
        }
    }

    /// Flattens the whole index into one continuous buffer (§4.7.1), ready
    /// to ship between nodes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(0x5A1_0001); // magic + version
        let p = &self.params;
        for v in [
            p.n_bits,
            p.m,
            p.lg,
            p.llg,
            p.g1,
            p.g2,
            p.chunks_per_group,
            p.big_group_bits,
            p.big_chunk_bits,
        ] {
            w.usize(v);
        }
        w.packed(&self.c1);
        w.bitvec(self.group_flags.bits());
        w.packed(&self.complete);
        w.packed(&self.coarse2);
        w.bitvec(self.big_chunk_flags.bits());
        w.bitvec(self.table_flags.bits());
        w.packed(&self.l3);
        w.packed(&self.l4);
        w.packed(&self.pattern_ids);
        w.usize(self.table.entries_per_pattern);
        w.usize(self.table.n_patterns);
        w.packed(&self.table.offsets);
        w.finish()
    }

    /// Reconstructs an index from [`Self::to_bytes`] output. The rank
    /// directories are rebuilt locally (cheaper than shipping them).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, SerializeError> {
        let mut r = Reader::new(buf);
        if r.u64()? != 0x5A1_0001 {
            return Err(SerializeError::Malformed);
        }
        let cap = 1usize << 40;
        let params = IndexParams {
            n_bits: r.usize_checked(cap)?,
            m: r.usize_checked(cap)?,
            lg: r.usize_checked(64)?,
            llg: r.usize_checked(64)?,
            g1: r.usize_checked(cap)?,
            g2: r.usize_checked(cap)?,
            chunks_per_group: r.usize_checked(cap)?,
            big_group_bits: r.usize_checked(usize::MAX - 1)?,
            big_chunk_bits: r.usize_checked(usize::MAX - 1)?,
        };
        let c1 = r.packed()?;
        let group_flags = RankSelect::new(r.bitvec()?);
        let complete = r.packed()?;
        let coarse2 = r.packed()?;
        let big_chunk_flags = RankSelect::new(r.bitvec()?);
        let table_flags = RankSelect::new(r.bitvec()?);
        let l3 = r.packed()?;
        let l4 = r.packed()?;
        let pattern_ids = r.packed()?;
        let entries_per_pattern = r.usize_checked(cap)?;
        let n_patterns = r.usize_checked(cap)?;
        let offsets = r.packed()?;
        r.done()?;
        if offsets.len() != entries_per_pattern.saturating_mul(n_patterns) {
            return Err(SerializeError::Malformed);
        }
        Ok(StringArrayIndex {
            params,
            c1,
            group_flags,
            complete,
            coarse2,
            big_chunk_flags,
            table_flags,
            l3,
            l4,
            pattern_ids,
            table: LookupTable {
                offsets,
                entries_per_pattern,
                n_patterns,
            },
        })
    }

    /// The derived parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// Number of strings indexed.
    pub fn len(&self) -> usize {
        self.params.m
    }

    /// Whether the index covers no strings.
    pub fn is_empty(&self) -> bool {
        self.params.m == 0
    }

    /// Total bits `N` of the indexed strings.
    pub fn n_bits(&self) -> usize {
        self.params.n_bits
    }

    /// Number of distinct length-patterns interned in the lookup table.
    pub fn n_patterns(&self) -> usize {
        self.table.n_patterns
    }

    /// Absolute start position of item `i`; `start(m) = N`.
    pub fn start(&self, i: usize) -> usize {
        assert!(
            i <= self.params.m,
            "item {i} out of range {}",
            self.params.m
        );
        if i == self.params.m {
            return self.params.n_bits;
        }
        let p = &self.params;
        let j = i / p.g1;
        let r = i % p.g1;
        let g_start = self.c1.get(j) as usize;
        if self.group_flags.bits().get(j) {
            let gi = self.group_flags.rank1(j);
            self.complete.get(gi * p.g1 + r) as usize
        } else {
            let gi = self.group_flags.rank0(j);
            let c = r / p.g2;
            let q = r % p.g2;
            let cg = gi * p.chunks_per_group + c;
            let chunk_start = g_start + self.coarse2.get(cg) as usize;
            if self.big_chunk_flags.bits().get(cg) {
                let ci = self.big_chunk_flags.rank1(cg);
                chunk_start + self.l3.get(ci * p.g2 + q) as usize
            } else {
                let small = self.big_chunk_flags.rank0(cg);
                if self.table_flags.bits().get(small) {
                    let ti = self.table_flags.rank1(small);
                    let pid = self.pattern_ids.get(ti) as usize;
                    chunk_start + self.table.offset(pid, q)
                } else {
                    // Inline length vector: prefix-sum at most g2 lengths.
                    let base = self.table_flags.rank0(small) * p.g2;
                    let mut offset = 0usize;
                    for j in 0..q {
                        offset += self.l4.get(base + j) as usize;
                    }
                    chunk_start + offset
                }
            }
        }
    }

    /// The bit range `start .. end` of item `i` in the concatenation.
    pub fn locate(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.params.m, "item {i} out of range {}", self.params.m);
        self.start(i)..self.start(i + 1)
    }

    /// Storage breakdown (index components only; `base_bits` is zero here —
    /// the owning array fills it in).
    pub fn size_breakdown(&self) -> SizeBreakdown {
        SizeBreakdown {
            base_bits: 0,
            c1_bits: self.c1.bits(),
            l2_bits: self.complete.bits() + self.coarse2.bits(),
            l3_bits: self.l3.bits() + self.l4.bits(),
            table_bits: self.pattern_ids.bits() + self.table.bits(),
            flags_bits: self.group_flags.bits().len()
                + self.group_flags.directory_bits()
                + self.big_chunk_flags.bits().len()
                + self.big_chunk_flags.directory_bits()
                + self.table_flags.bits().len()
                + self.table_flags.directory_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_against_prefix_sums(lengths: &[usize]) {
        let idx = StringArrayIndex::build(lengths);
        let mut start = 0usize;
        for (i, &l) in lengths.iter().enumerate() {
            let r = idx.locate(i);
            assert_eq!(r.start, start, "item {i} start");
            assert_eq!(r.end - r.start, l, "item {i} length");
            start += l;
        }
        assert_eq!(idx.start(lengths.len()), start, "sentinel start");
        assert_eq!(idx.n_bits(), start);
    }

    #[test]
    fn uniform_small_lengths() {
        check_against_prefix_sums(&vec![1usize; 1000]);
        check_against_prefix_sums(&vec![7usize; 333]);
    }

    #[test]
    fn mixed_lengths_with_zeroes() {
        let lengths: Vec<usize> = (0..500)
            .map(|i| match i % 5 {
                0 => 0,
                1 => 1,
                2 => 13,
                3 => 64,
                _ => 3,
            })
            .collect();
        check_against_prefix_sums(&lengths);
    }

    #[test]
    fn skewed_lengths_force_complete_groups() {
        // A few enormous strings make their groups exceed lg³ bits, so the
        // complete-offset-vector path is exercised.
        let mut lengths = vec![2usize; 2000];
        for i in (0..2000).step_by(97) {
            lengths[i] = 5000;
        }
        check_against_prefix_sums(&lengths);
        let idx = StringArrayIndex::build(&lengths);
        assert!(
            idx.group_flags_count() > 0,
            "expected at least one complete group"
        );
    }

    #[test]
    fn all_huge_strings() {
        check_against_prefix_sums(&vec![10_000usize; 64]);
    }

    #[test]
    fn tiny_inputs() {
        check_against_prefix_sums(&[]);
        check_against_prefix_sums(&[0]);
        check_against_prefix_sums(&[5]);
        check_against_prefix_sums(&[0, 0, 0]);
        check_against_prefix_sums(&[1, 2]);
    }

    #[test]
    fn ragged_last_group_is_handled() {
        // m chosen so the final group is partially filled at every level.
        for m in [1usize, 9, 10, 11, 31, 63, 64, 65, 100, 1001] {
            let lengths: Vec<usize> = (0..m).map(|i| (i % 9) + 1).collect();
            check_against_prefix_sums(&lengths);
        }
    }

    #[test]
    fn pattern_table_deduplicates() {
        // 10_000 identical 1-bit counters should intern very few patterns.
        let idx = StringArrayIndex::build(&vec![1usize; 10_000]);
        assert!(idx.n_patterns() <= 4, "got {} patterns", idx.n_patterns());
    }

    #[test]
    fn size_breakdown_is_sublinear_for_uniform_data() {
        // o(N) + O(m): for 100k 8-bit items (N = 800k bits) the index should
        // be well under N bits.
        let lengths = vec![8usize; 100_000];
        let idx = StringArrayIndex::build(&lengths);
        let sz = idx.size_breakdown();
        assert!(
            sz.index_bits() < 800_000,
            "index too large: {} bits",
            sz.index_bits()
        );
        // And every component is accounted.
        assert_eq!(
            sz.index_bits(),
            sz.c1_bits + sz.l2_bits + sz.l3_bits + sz.table_bits + sz.flags_bits
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        let idx = StringArrayIndex::build(&[1, 2, 3]);
        let _ = idx.locate(3);
    }

    impl StringArrayIndex {
        fn group_flags_count(&self) -> usize {
            self.group_flags.count_ones()
        }
    }

    #[test]
    fn reduced_variant_is_correct_for_all_c() {
        let lengths: Vec<usize> = (0..4000).map(|i| (i % 11) + (i % 3) * 20).collect();
        for c in 0..=3u32 {
            let idx = StringArrayIndex::build_reduced(&lengths, c);
            let mut start = 0usize;
            for (i, &l) in lengths.iter().enumerate() {
                let r = idx.locate(i);
                assert_eq!(r.start, start, "c={c} item {i}");
                assert_eq!(r.end - r.start, l, "c={c} item {i} len");
                start += l;
            }
        }
    }

    #[test]
    fn reduced_variant_shrinks_with_c() {
        // Theorem 9: the index shrinks as the reduction exponent grows.
        let lengths = vec![6usize; 200_000];
        let sizes: Vec<usize> = (0..=2u32)
            .map(|c| {
                StringArrayIndex::build_reduced(&lengths, c)
                    .size_breakdown()
                    .index_bits()
            })
            .collect();
        assert!(
            sizes[1] < sizes[0],
            "c=1 ({}) !< c=0 ({})",
            sizes[1],
            sizes[0]
        );
        assert!(
            sizes[2] < sizes[1],
            "c=2 ({}) !< c=1 ({})",
            sizes[2],
            sizes[1]
        );
        // And the reduction is substantial, not cosmetic.
        assert!(
            sizes[2] * 2 < sizes[0],
            "c=2 should at least halve the index"
        );
    }

    #[test]
    fn reduced_handles_degenerate_inputs() {
        for c in 0..=3u32 {
            let idx = StringArrayIndex::build_reduced(&[], c);
            assert!(idx.is_empty());
            let idx = StringArrayIndex::build_reduced(&[0, 5, 0], c);
            assert_eq!(idx.locate(1), 0..5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn locate_matches_prefix_sums_prop(
            lengths in prop::collection::vec(0usize..200, 0..400)
        ) {
            check_against_prefix_sums(&lengths);
        }

        #[test]
        fn locate_matches_prefix_sums_heavy_tail(
            lengths in prop::collection::vec(
                prop_oneof![
                    9 => 0usize..4,
                    1 => 1000usize..20_000,
                ],
                0..200,
            )
        ) {
            check_against_prefix_sums(&lengths);
        }
    }
}
