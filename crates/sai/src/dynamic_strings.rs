//! The general variable-length access problem (§4.1), dynamic (§4.4) —
//! for *arbitrary* bit strings, not just counters.
//!
//! [`crate::DynamicCounterArray`] specializes the paper's scheme to
//! counters (width = `⌈log C⌉`). This structure drops the specialization:
//! each of the `m` slots holds an arbitrary bit string that can be
//! replaced by one of any other length. Growth pushes toward per-group
//! slack exactly as in §4.4; shrink reclaims bits into the group's slack
//! immediately (no waste tracking needed — strings carry explicit
//! lengths).

use sbf_bitvec::BitVec;

/// A mutable array of `m` arbitrary-length bit strings.
#[derive(Debug, Clone)]
pub struct DynamicStringArray {
    base: BitVec,
    group_size: usize,
    slack: usize,
    m: usize,
    starts: Vec<usize>,
    caps: Vec<usize>,
    used: Vec<usize>,
    /// Per-item bit length.
    lengths: Vec<u32>,
    rebuilds: usize,
}

impl DynamicStringArray {
    /// `m` empty strings; groups of `group_size` items with `slack` spare
    /// bits each.
    pub fn new(m: usize, group_size: usize, slack: usize) -> Self {
        assert!(group_size > 0, "group_size must be positive");
        let n_groups = m.div_ceil(group_size);
        let mut starts = Vec::with_capacity(n_groups);
        let mut caps = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            starts.push(g * slack);
            caps.push(slack);
        }
        DynamicStringArray {
            base: BitVec::zeros(n_groups * slack),
            group_size,
            slack,
            m,
            starts,
            caps,
            used: vec![0; n_groups],
            lengths: vec![0; m],
            rebuilds: 0,
        }
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the array holds no strings.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Bit length of string `i`.
    pub fn length_of(&self, i: usize) -> usize {
        self.lengths[i] as usize
    }

    /// Full rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Total storage (base array + per-item lengths + group words).
    pub fn total_bits(&self) -> usize {
        self.base.len() + self.lengths.len() * 32 + self.starts.len() * 3 * 64
    }

    fn n_groups(&self) -> usize {
        self.m.div_ceil(self.group_size)
    }

    fn rel_of(&self, i: usize) -> usize {
        let lo = (i / self.group_size) * self.group_size;
        self.lengths[lo..i].iter().map(|&l| l as usize).sum()
    }

    /// Reads string `i` as a fresh [`BitVec`].
    pub fn get(&self, i: usize) -> BitVec {
        assert!(i < self.m, "item {i} out of range {}", self.m);
        let g = i / self.group_size;
        let pos = self.starts[g] + self.rel_of(i);
        let len = self.lengths[i] as usize;
        let mut out = BitVec::zeros(len);
        let mut done = 0;
        while done < len {
            let chunk = (len - done).min(64);
            out.write_bits(done, chunk, self.base.read_bits(pos + done, chunk));
            done += chunk;
        }
        out
    }

    /// Replaces string `i` with `bits`, growing or shrinking its slot.
    pub fn set(&mut self, i: usize, bits: &BitVec) {
        assert!(i < self.m, "item {i} out of range {}", self.m);
        let new_len = bits.len();
        assert!(new_len <= u32::MAX as usize, "string too long");
        loop {
            let g = i / self.group_size;
            let old_len = self.lengths[i] as usize;
            let rel = self.rel_of(i);
            let pos = self.starts[g] + rel;
            let tail = self.used[g] - (rel + old_len);
            if new_len <= old_len {
                // Shrink: write, pull the tail left, reclaim into slack.
                let d = old_len - new_len;
                self.write_string(pos, bits);
                if d > 0 {
                    self.base.copy_within(pos + old_len, pos + new_len, tail);
                    self.used[g] -= d;
                }
                self.lengths[i] = new_len as u32;
                return;
            }
            let d = new_len - old_len;
            if self.used[g] + d <= self.caps[g] {
                // Grow in place: push the tail right, then write.
                self.base.copy_within(pos + old_len, pos + new_len, tail);
                self.used[g] += d;
                self.lengths[i] = new_len as u32;
                self.write_string(pos, bits);
                return;
            }
            if self.try_slide(g, d) {
                continue;
            }
            self.rebuild_with(i, bits);
            return;
        }
    }

    fn write_string(&mut self, pos: usize, bits: &BitVec) {
        let mut done = 0;
        while done < bits.len() {
            let chunk = (bits.len() - done).min(64);
            self.base
                .write_bits(pos + done, chunk, bits.read_bits(done, chunk));
            done += chunk;
        }
    }

    fn try_slide(&mut self, g: usize, d: usize) -> bool {
        let limit = (g + 1 + 32).min(self.n_groups());
        let mut h = g + 1;
        while h < limit {
            if self.caps[h] - self.used[h] >= d {
                break;
            }
            h += 1;
        }
        if h >= limit {
            return false;
        }
        let src = self.starts[g + 1];
        let count = self.starts[h] + self.used[h] - src;
        self.base.copy_within(src, src + d, count);
        for s in self.starts.iter_mut().take(h + 1).skip(g + 1) {
            *s += d;
        }
        self.caps[g] += d;
        self.caps[h] -= d;
        true
    }

    fn rebuild_with(&mut self, i: usize, replacement: &BitVec) {
        let mut strings: Vec<BitVec> = (0..self.m).map(|j| self.get(j)).collect();
        strings[i] = replacement.clone();
        let slack = self.slack.max(replacement.len());
        let n_groups = self.n_groups();
        let mut starts = Vec::with_capacity(n_groups);
        let mut caps = Vec::with_capacity(n_groups);
        let mut used = Vec::with_capacity(n_groups);
        let mut total = 0usize;
        for g in 0..n_groups {
            let lo = g * self.group_size;
            let hi = ((g + 1) * self.group_size).min(self.m);
            let bits: usize = strings[lo..hi].iter().map(BitVec::len).sum();
            starts.push(total);
            used.push(bits);
            caps.push(bits + slack);
            total += bits + slack;
        }
        let mut base = BitVec::zeros(total);
        let mut pos;
        for (g, &g_start) in starts.iter().enumerate() {
            pos = g_start;
            let lo = g * self.group_size;
            let hi = ((g + 1) * self.group_size).min(self.m);
            for (j, s) in strings[lo..hi].iter().enumerate() {
                self.lengths[lo + j] = s.len() as u32;
                let mut done = 0;
                while done < s.len() {
                    let chunk = (s.len() - done).min(64);
                    base.write_bits(pos + done, chunk, s.read_bits(done, chunk));
                    done += chunk;
                }
                pos += s.len();
            }
        }
        self.base = base;
        self.starts = starts;
        self.caps = caps;
        self.used = used;
        self.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bv(bits: &[bool]) -> BitVec {
        BitVec::from_bools(bits)
    }

    #[test]
    fn set_get_various_lengths() {
        let mut arr = DynamicStringArray::new(50, 8, 16);
        let payloads: Vec<BitVec> = (0..50)
            .map(|i| {
                bv(&(0..(i * 3) % 70)
                    .map(|j| (i + j) % 3 == 0)
                    .collect::<Vec<_>>())
            })
            .collect();
        for (i, p) in payloads.iter().enumerate() {
            arr.set(i, p);
        }
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&arr.get(i), p, "string {i}");
            assert_eq!(arr.length_of(i), p.len());
        }
    }

    #[test]
    fn replace_with_longer_and_shorter() {
        let mut arr = DynamicStringArray::new(10, 4, 8);
        let long = bv(&[true; 200]);
        let short = bv(&[true, false, true]);
        arr.set(3, &long);
        assert_eq!(arr.get(3), long);
        arr.set(3, &short);
        assert_eq!(arr.get(3), short);
        arr.set(3, &long);
        assert_eq!(arr.get(3), long);
        // Neighbors untouched throughout.
        assert_eq!(arr.get(2).len(), 0);
        assert_eq!(arr.get(4).len(), 0);
    }

    #[test]
    fn growth_beyond_slack_rebuilds() {
        let mut arr = DynamicStringArray::new(64, 8, 2);
        for i in 0..64 {
            arr.set(i, &bv(&[i % 2 == 0; 100]));
        }
        assert!(arr.rebuilds() > 0, "tiny slack must force rebuilds");
        for i in 0..64 {
            assert_eq!(arr.get(i).len(), 100);
            assert_eq!(arr.get(i).get(0), i % 2 == 0);
        }
    }

    #[test]
    fn empty_strings_roundtrip() {
        let mut arr = DynamicStringArray::new(5, 2, 4);
        arr.set(0, &bv(&[true]));
        arr.set(1, &BitVec::new());
        arr.set(2, &bv(&[false, true]));
        assert_eq!(arr.get(1), BitVec::new());
        assert_eq!(arr.get(2), bv(&[false, true]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_vec_model(
            m in 1usize..40,
            ops in prop::collection::vec(
                (0usize..40, prop::collection::vec(any::<bool>(), 0..120)),
                1..100,
            ),
            gs in 1usize..8,
            slack in 0usize..20,
        ) {
            let mut arr = DynamicStringArray::new(m, gs, slack);
            let mut model: Vec<Vec<bool>> = vec![Vec::new(); m];
            for (i, payload) in ops {
                let i = i % m;
                let b = BitVec::from_bools(&payload);
                arr.set(i, &b);
                model[i] = payload;
                prop_assert_eq!(arr.get(i), b);
            }
            for (i, payload) in model.iter().enumerate() {
                prop_assert_eq!(arr.get(i), BitVec::from_bools(payload), "item {}", i);
            }
        }
    }
}
