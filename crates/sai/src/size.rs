//! Honest storage accounting for the counter-array representations.

/// Bit-level storage breakdown of a String-Array Index and its base array.
///
/// Reproduces the component split of the paper's Figure 14: the raw bit
/// array, the level-1 coarse offset vector `C¹`, the level-2 vectors
/// (complete and coarse together, as in the figure), the level-3 offset
/// vectors, and the global lookup table. `flags_bits` accounts for the
/// complete/chunked and offset-vector/table indicator vectors plus their
/// rank directories (the `F` vector machinery of §4.7.2), which the paper
/// folds into its totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// The base array: packed counters (and slack bits, if dynamic).
    pub base_bits: usize,
    /// Level-1 coarse offset vector `C¹`.
    pub c1_bits: usize,
    /// Level-2 offset vectors (complete per-item vectors and coarse
    /// per-chunk vectors).
    pub l2_bits: usize,
    /// Level-3 per-item offset vectors for large chunks.
    pub l3_bits: usize,
    /// The global lookup table: pattern ids, pattern keys and offset
    /// payloads.
    pub table_bits: usize,
    /// Indicator vectors and their rank directories.
    pub flags_bits: usize,
}

impl SizeBreakdown {
    /// Bits of index structure, excluding the base array.
    pub fn index_bits(&self) -> usize {
        self.c1_bits + self.l2_bits + self.l3_bits + self.table_bits + self.flags_bits
    }

    /// Total bits including the base array.
    pub fn total_bits(&self) -> usize {
        self.base_bits + self.index_bits()
    }

    /// Index overhead as a fraction of the base array (the paper reports
    /// the SAI at ≈1.5–2.5× the raw vector, i.e. overhead 0.5–1.5).
    pub fn overhead_ratio(&self) -> f64 {
        if self.base_bits == 0 {
            return 0.0;
        }
        self.index_bits() as f64 / self.base_bits as f64
    }
}

impl std::ops::Add for SizeBreakdown {
    type Output = SizeBreakdown;

    fn add(self, rhs: SizeBreakdown) -> SizeBreakdown {
        SizeBreakdown {
            base_bits: self.base_bits + rhs.base_bits,
            c1_bits: self.c1_bits + rhs.c1_bits,
            l2_bits: self.l2_bits + rhs.l2_bits,
            l3_bits: self.l3_bits + rhs.l3_bits,
            table_bits: self.table_bits + rhs.table_bits,
            flags_bits: self.flags_bits + rhs.flags_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = SizeBreakdown {
            base_bits: 100,
            c1_bits: 10,
            l2_bits: 20,
            l3_bits: 5,
            table_bits: 7,
            flags_bits: 3,
        };
        assert_eq!(s.index_bits(), 45);
        assert_eq!(s.total_bits(), 145);
        assert!((s.overhead_ratio() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn zero_base_has_zero_overhead() {
        assert_eq!(SizeBreakdown::default().overhead_ratio(), 0.0);
    }

    #[test]
    fn add_is_componentwise() {
        let a = SizeBreakdown {
            base_bits: 1,
            c1_bits: 2,
            l2_bits: 3,
            l3_bits: 4,
            table_bits: 5,
            flags_bits: 6,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.total_bits(), 2 * a.total_bits());
    }
}
