//! The classic select-reduction solution to the variable-length access
//! problem (§4.2), used as a reference implementation.
//!
//! *"Create a bit vector V of the same size N, in which all bits are zero
//! except those that are positioned at the beginning of substrings in S...
//! When looking for the beginning of the ith substring in S, we simply have
//! to perform select(V, i)."*
//!
//! Two wrinkles the paper glosses over, handled here: zero-length strings
//! would collide their start markers, so `V` gets one marker slot per item
//! by marking positions in a vector of length `N + m` where item `i`'s
//! marker sits at `start(i) + i`; and lengths come from the gap to the next
//! marker. This keeps the reduction exact for arbitrary inputs while
//! preserving its `select`-driven character.

use sbf_bitvec::{BitVec, RankSelect};
use sbf_encoding::counter_width;

/// Counter array answered via `select` over a start-marker vector.
#[derive(Debug, Clone)]
pub struct SelectCounterArray {
    base: BitVec,
    markers: RankSelect,
    m: usize,
}

impl SelectCounterArray {
    /// Builds from counters; `O(N + m)`.
    pub fn from_counters(counters: &[u64]) -> Self {
        let m = counters.len();
        let widths: Vec<usize> = counters.iter().map(|&c| counter_width(c)).collect();
        let n: usize = widths.iter().sum();
        let mut base = BitVec::zeros(n);
        let mut marks = BitVec::zeros(n + m + 1);
        let mut pos = 0usize;
        for (i, (&c, &w)) in counters.iter().zip(&widths).enumerate() {
            base.write_bits(pos, w, c);
            marks.set(pos + i, true);
            pos += w;
        }
        marks.set(pos + m, true); // sentinel marker at N + m
        SelectCounterArray {
            base,
            markers: RankSelect::new(marks),
            m,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the array holds no counters.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Start bit of item `i` in the base array (`start(m) = N`).
    pub fn start(&self, i: usize) -> usize {
        assert!(i <= self.m, "item {i} out of range {}", self.m);
        self.markers
            .select1(i)
            .unwrap_or_else(|| unreachable!("marker accounting broken"))
            - i
    }

    /// Reads counter `i` via two `select` probes.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.m, "item {i} out of range {}", self.m);
        let s = self.start(i);
        let e = self.start(i + 1);
        self.base.read_bits(s, e - s)
    }

    /// Bits used by the marker vector and its directory (the `o(N)` cost of
    /// the reduction).
    pub fn marker_bits(&self) -> usize {
        self.markers.bits().len() + self.markers.directory_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrips() {
        let counters: Vec<u64> = (0..1000).map(|i| (i * i) % 10_000).collect();
        let arr = SelectCounterArray::from_counters(&counters);
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(arr.get(i), c, "counter {i}");
        }
    }

    #[test]
    fn zeros_and_ones() {
        let counters = vec![0u64, 1, 0, 1, 0];
        let arr = SelectCounterArray::from_counters(&counters);
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(arr.get(i), c);
        }
    }

    #[test]
    fn empty() {
        let arr = SelectCounterArray::from_counters(&[]);
        assert_eq!(arr.len(), 0);
        assert_eq!(arr.start(0), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_counters_prop(counters in prop::collection::vec(0u64..(1 << 48), 0..200)) {
            let arr = SelectCounterArray::from_counters(&counters);
            for (i, &c) in counters.iter().enumerate() {
                prop_assert_eq!(arr.get(i), c);
            }
        }
    }
}
