//! The "alternative approach" of §4.5: coarse index levels plus
//! sequentially-decodable prefix-free counters.
//!
//! *"The data structure can be made more compact, while sacrificing lookup
//! performance, by using the C¹ and C² indexes and not building any further
//! structures. Once the problem is reduced to log log N items, we allow a
//! serial scan of the sub-group."*
//!
//! Counters are stored under any prefix-free [`Codec`] (Elias δ by default,
//! or a [`sbf_encoding::StepsCode`] for "almost-set" data); an access costs
//! one C¹ probe, one C² probe, and at most `g₂ − 1` sequential decodes —
//! `O(log log N)` on average, for `N + o(m)` bits of storage.

use sbf_bitvec::{BitReader, BitVec, PackedVec};
use sbf_encoding::{bit_len, Codec, EliasDelta};

use crate::static_index::IndexParams;

/// A compact, scan-decoded counter array (static).
#[derive(Debug, Clone)]
pub struct CompactCounterArray<C: Codec = EliasDelta> {
    codec: C,
    payload: BitVec,
    /// Absolute start of each group of `g1` items.
    c1: PackedVec,
    /// Start of each chunk of `g2` items, relative to its group.
    c2: PackedVec,
    params: IndexParams,
}

impl<C: Codec> CompactCounterArray<C> {
    /// Encodes `counters` under `codec` and builds the two coarse levels.
    pub fn from_counters_with(codec: C, counters: &[u64]) -> Self {
        let m = counters.len();
        // First pass: codeword lengths → total bits and offsets.
        let mut total = 0usize;
        let mut item_off = Vec::with_capacity(m + 1);
        item_off.push(0);
        for &c in counters {
            total += codec.encoded_len(c);
            item_off.push(total);
        }
        let params = IndexParams::compute(total, m);

        let mut w = sbf_bitvec::BitWriter::new();
        for &c in counters {
            codec.encode(c, &mut w);
        }
        let payload = w.finish();
        debug_assert_eq!(payload.len(), total);

        let abs_w = bit_len(total as u64).max(1);
        let n_groups = params.n_groups();
        let mut c1 = PackedVec::with_capacity(abs_w, n_groups);
        // Relative offsets within a group are < the group's bit extent; the
        // group extent is unbounded here (no complete-vector split), so use
        // the widest group to size entries.
        let mut max_rel = 0usize;
        for j in 0..n_groups {
            let lo = j * params.g1;
            let hi = ((j + 1) * params.g1).min(m);
            max_rel = max_rel.max(item_off[hi] - item_off[lo]);
        }
        let rel_w = bit_len(max_rel as u64).max(1);
        let mut c2 = PackedVec::with_capacity(rel_w, n_groups * params.chunks_per_group);
        for j in 0..n_groups {
            let g_lo = j * params.g1;
            let g_hi = ((j + 1) * params.g1).min(m);
            c1.push(item_off[g_lo] as u64);
            for c in 0..params.chunks_per_group {
                let c_lo = (g_lo + c * params.g2).min(g_hi);
                c2.push((item_off[c_lo] - item_off[g_lo]) as u64);
            }
        }

        CompactCounterArray {
            codec,
            payload,
            c1,
            c2,
            params,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.params.m
    }

    /// Whether the array holds no counters.
    pub fn is_empty(&self) -> bool {
        self.params.m == 0
    }

    /// Reads counter `i`: two index probes + `≤ g₂` sequential decodes.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.params.m, "item {i} out of range {}", self.params.m);
        let p = &self.params;
        let j = i / p.g1;
        let r = i % p.g1;
        let c = r / p.g2;
        let q = r % p.g2;
        let start = self.c1.get(j) as usize + self.c2.get(j * p.chunks_per_group + c) as usize;
        let mut reader = BitReader::with_range(&self.payload, start, self.payload.len());
        for _ in 0..q {
            self.codec
                .decode(&mut reader)
                .unwrap_or_else(|| unreachable!("payload truncated"));
        }
        self.codec
            .decode(&mut reader)
            .unwrap_or_else(|| unreachable!("payload truncated"))
    }

    /// Bits of encoded payload (the "N" of this representation).
    pub fn payload_bits(&self) -> usize {
        self.payload.len()
    }

    /// Bits of the two coarse index levels.
    pub fn index_bits(&self) -> usize {
        self.c1.bits() + self.c2.bits()
    }

    /// Total storage.
    pub fn total_bits(&self) -> usize {
        self.payload_bits() + self.index_bits()
    }
}

impl CompactCounterArray<EliasDelta> {
    /// Builds with the default Elias δ codec.
    pub fn from_counters(counters: &[u64]) -> Self {
        Self::from_counters_with(EliasDelta, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sbf_encoding::StepsCode;

    #[test]
    fn roundtrips_with_elias() {
        let counters: Vec<u64> = (0..2500).map(|i| (i * 31) % 1000).collect();
        let arr = CompactCounterArray::from_counters(&counters);
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(arr.get(i), c, "counter {i}");
        }
    }

    #[test]
    fn roundtrips_with_steps() {
        let counters: Vec<u64> = (0..1000).map(|i| u64::from(i % 3 == 0)).collect();
        let arr = CompactCounterArray::from_counters_with(StepsCode::paper_example(), &counters);
        for (i, &c) in counters.iter().enumerate() {
            assert_eq!(arr.get(i), c);
        }
    }

    #[test]
    fn steps_beats_elias_on_almost_sets() {
        // Half zeros, half ones — §4.5's motivating distribution.
        let counters: Vec<u64> = (0..10_000).map(|i| u64::from(i % 2 == 0)).collect();
        let steps = CompactCounterArray::from_counters_with(StepsCode::paper_example(), &counters);
        let elias = CompactCounterArray::from_counters(&counters);
        assert!(
            steps.payload_bits() < elias.payload_bits(),
            "steps {} !< elias {}",
            steps.payload_bits(),
            elias.payload_bits()
        );
    }

    #[test]
    fn index_is_small_relative_to_items() {
        let counters: Vec<u64> = (0..50_000).map(|i| i % 100).collect();
        let arr = CompactCounterArray::from_counters(&counters);
        // o(m) coarse levels: far fewer bits than one word per item.
        assert!(arr.index_bits() < 64 * counters.len() / 4);
    }

    #[test]
    fn empty_and_singleton() {
        let arr = CompactCounterArray::from_counters(&[]);
        assert!(arr.is_empty());
        let arr = CompactCounterArray::from_counters(&[42]);
        assert_eq!(arr.get(0), 42);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_counters_prop(counters in prop::collection::vec(0u64..(1 << 50), 0..300)) {
            let arr = CompactCounterArray::from_counters(&counters);
            for (i, &c) in counters.iter().enumerate() {
                prop_assert_eq!(arr.get(i), c);
            }
        }
    }
}
