//! The dynamic counter array of §4.4: slack bits, push-to-slack expansion,
//! amortized O(1) updates, periodic rebuilds.
//!
//! The paper's scheme: the base array carries `εm` slack bits; a counter
//! that outgrows its field "pushes the item next to it, which in turn
//! pushes the next item, until a slack is encountered" (expected distance
//! `O(1/ε)` by Lemma 8), and after enough churn "the base array is
//! refreshed by moving counters so that slacks are again placed in 1/ε
//! intervals". Deletions leave counters in place (their positions never
//! move) and a long deletion sequence triggers a compacting rebuild, for
//! amortized O(1) per operation.
//!
//! Implementation shape: items are partitioned into fixed *groups*; each
//! group owns a contiguous bit region with its slack at the end. Per item
//! only its allocated field *width* is kept (one byte); an item's offset
//! inside its group is the prefix sum of at most `group_size` widths — a
//! short, cache-friendly scan that keeps the bookkeeping at `O(m)` bits
//! (≈ 11 bits/item at the default group size), the `O(m)` term of
//! Theorem 6. An expansion first consumes the group's own slack; when the group is
//! full, whole group regions are slid toward the nearest group with spare
//! bits (the cross-group push); when no slack remains anywhere to the
//! right, the array is rebuilt with fresh slack.

use sbf_bitvec::BitVec;
use sbf_encoding::counter_width;

/// Tuning for [`DynamicCounterArray`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Items per group. Small groups mean shorter in-group shifts but more
    /// region bookkeeping.
    pub group_size: usize,
    /// Slack bits appended to each group region at (re)build time — the
    /// paper's `ε·m` budget, expressed per group. With `group_size = 32`
    /// and 16 slack bits this is the 0.5-bits-per-item slack ratio used in
    /// the paper's Figure 13 measurements.
    pub slack_bits_per_group: usize,
    /// Rebuild (compacting) when wasted bits exceed this fraction of the
    /// occupied bits. Waste accrues from deletions, which shrink values but
    /// not their allocated fields.
    pub waste_rebuild_fraction: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            group_size: 32,
            slack_bits_per_group: 16,
            waste_rebuild_fraction: 0.25,
        }
    }
}

/// Counters were asked to go below zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Underflow {
    /// The counter index.
    pub index: usize,
    /// Its value at the time of the failed decrement.
    pub value: u64,
    /// The amount that was to be subtracted.
    pub by: u64,
}

impl std::fmt::Display for Underflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "counter {} holds {} — cannot subtract {}",
            self.index, self.value, self.by
        )
    }
}

impl std::error::Error for Underflow {}

/// Maintenance statistics, exposed for the failure-injection tests and the
/// amortized-cost benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicStats {
    /// Full rebuilds of the base array.
    pub rebuilds: usize,
    /// Counter-field expansions (width growth events).
    pub expansions: u64,
    /// Cross-group region slides (a push that had to leave its own group).
    pub region_shifts: u64,
    /// Total groups traversed by cross-group slides (push distance).
    pub shift_distance: u64,
}

/// A mutable array of `m` counters stored in near-minimal width with slack.
///
/// ```
/// use sbf_sai::DynamicCounterArray;
///
/// let mut arr = DynamicCounterArray::new(1000);
/// arr.increment(7, 1_000_000);          // field grows in place
/// arr.decrement(7, 1).unwrap();
/// assert_eq!(arr.get(7), 999_999);
/// assert!(arr.base_bits() < 1000 * 8, "≈1 bit per idle counter");
/// ```
#[derive(Debug, Clone)]
pub struct DynamicCounterArray {
    base: BitVec,
    cfg: DynamicConfig,
    m: usize,
    /// Absolute bit start of each group region; regions are contiguous:
    /// `starts[g+1] == starts[g] + caps[g]`.
    starts: Vec<usize>,
    /// Region capacities in bits.
    caps: Vec<usize>,
    /// Occupied bits per region (counter fields, no slack).
    used: Vec<usize>,
    /// Per-item allocated field width; offsets are prefix sums within the
    /// group.
    widths: Vec<u8>,
    /// Σ over items of (allocated width − minimal width).
    waste: usize,
    /// Σ of `used` (maintained incrementally; rebuild-trigger arithmetic
    /// must not rescan all groups on the hot path).
    occupied: usize,
    stats: DynamicStats,
}

impl DynamicCounterArray {
    /// `m` zero counters under the default configuration.
    pub fn new(m: usize) -> Self {
        Self::with_config(m, DynamicConfig::default())
    }

    /// `m` zero counters under `cfg`.
    pub fn with_config(m: usize, cfg: DynamicConfig) -> Self {
        assert!(cfg.group_size > 0, "group_size must be positive");
        let zeros = vec![0u64; m];
        Self::from_counters_with(&zeros, cfg)
    }

    /// Builds from existing counter values (default configuration).
    pub fn from_counters(counters: &[u64]) -> Self {
        Self::from_counters_with(counters, DynamicConfig::default())
    }

    /// Builds from existing counter values under `cfg`.
    pub fn from_counters_with(counters: &[u64], cfg: DynamicConfig) -> Self {
        assert!(cfg.group_size > 0, "group_size must be positive");
        let m = counters.len();
        let mut arr = DynamicCounterArray {
            base: BitVec::new(),
            cfg,
            m,
            starts: Vec::new(),
            caps: Vec::new(),
            used: Vec::new(),
            widths: vec![0; m],
            waste: 0,
            occupied: 0,
            stats: DynamicStats::default(),
        };
        arr.layout(counters, cfg.slack_bits_per_group);
        arr
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the array holds no counters.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Maintenance statistics so far.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> DynamicConfig {
        self.cfg
    }

    fn n_groups(&self) -> usize {
        self.m.div_ceil(self.cfg.group_size)
    }

    /// Lays the counters out afresh with `slack` bits of headroom per group.
    fn layout(&mut self, counters: &[u64], slack: usize) {
        let gs = self.cfg.group_size;
        let n_groups = counters.len().div_ceil(gs);
        self.starts.clear();
        self.caps.clear();
        self.used.clear();
        let mut total = 0usize;
        for g in 0..n_groups {
            let lo = g * gs;
            let hi = ((g + 1) * gs).min(counters.len());
            let mut bits = 0usize;
            for (i, &c) in counters.iter().enumerate().take(hi).skip(lo) {
                let w = counter_width(c);
                self.widths[i] = w as u8;
                bits += w;
            }
            self.starts.push(total);
            self.used.push(bits);
            self.caps.push(bits + slack);
            total += bits + slack;
        }
        self.occupied = self.used.iter().sum();
        self.base = BitVec::zeros(total);
        let mut pos = 0usize;
        for (i, &c) in counters.iter().enumerate() {
            let g = i / gs;
            if i % gs == 0 {
                pos = self.starts[g];
            }
            self.base.write_bits(pos, self.widths[i] as usize, c);
            pos += self.widths[i] as usize;
        }
        self.waste = 0;
    }

    /// Bit offset of item `i` inside its group region: a prefix-sum scan
    /// over at most `group_size` byte-sized widths.
    #[inline]
    fn rel_of(&self, i: usize) -> usize {
        let g_lo = (i / self.cfg.group_size) * self.cfg.group_size;
        self.widths[g_lo..i].iter().map(|&w| w as usize).sum()
    }

    /// Reads counter `i` (O(group_size), a constant).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.m, "counter {i} out of range {}", self.m);
        let g = i / self.cfg.group_size;
        self.base
            .read_bits(self.starts[g] + self.rel_of(i), self.widths[i] as usize)
    }

    /// All current values (used by rebuilds, reports and tests).
    pub fn to_vec(&self) -> Vec<u64> {
        (0..self.m).map(|i| self.get(i)).collect()
    }

    /// Writes counter `i` to `v`, expanding or recording waste as needed.
    pub fn set(&mut self, i: usize, v: u64) {
        assert!(i < self.m, "counter {i} out of range {}", self.m);
        let new_w = counter_width(v);
        loop {
            let g = i / self.cfg.group_size;
            let old_v = self.get(i);
            if old_v == v {
                return;
            }
            let cur_w = self.widths[i] as usize;
            let cur_waste = cur_w - counter_width(old_v);
            if new_w <= cur_w {
                // In-place write inside the existing field; positions never
                // move on shrink (§4.4: "delete operations ... do not affect
                // their positions").
                self.base
                    .write_bits(self.starts[g] + self.rel_of(i), cur_w, v);
                let grew = (cur_w - new_w) > cur_waste;
                self.waste = self.waste - cur_waste + (cur_w - new_w);
                if grew {
                    self.maybe_compact();
                }
                return;
            }
            let d = new_w - cur_w;
            if self.used[g] + d <= self.caps[g] {
                // In-group expansion: shift the tail of the region right.
                self.stats.expansions += 1;
                let rel = self.rel_of(i);
                let pos = self.starts[g] + rel;
                let tail_src = pos + cur_w;
                let tail_len = self.used[g] - (rel + cur_w);
                self.base.copy_within(tail_src, tail_src + d, tail_len);
                self.used[g] += d;
                self.occupied += d;
                self.widths[i] = new_w as u8;
                self.base.write_bits(pos, new_w, v);
                self.waste -= cur_waste;
                return;
            }
            if self.try_slide(g, d) {
                continue; // room borrowed from a neighbor's slack
            }
            // §4.4: "the base array is refreshed by moving counters so that
            // slacks are again placed in 1/ε intervals". Sizing the fresh
            // slack at ≥ new_w guarantees the retry succeeds in-group.
            let counters = self.to_vec();
            self.layout(&counters, self.cfg.slack_bits_per_group.max(new_w));
            self.stats.rebuilds += 1;
        }
    }

    /// Adds `by` to counter `i`. Panics on `u64` overflow.
    pub fn increment(&mut self, i: usize, by: u64) {
        let Some(v) = self.get(i).checked_add(by) else {
            panic!("counter overflow")
        };
        self.set(i, v);
    }

    /// Subtracts `by` from counter `i`, failing cleanly on underflow.
    pub fn decrement(&mut self, i: usize, by: u64) -> Result<(), Underflow> {
        let v = self.get(i);
        if by > v {
            return Err(Underflow {
                index: i,
                value: v,
                by,
            });
        }
        self.set(i, v - by);
        Ok(())
    }

    /// Farthest neighbor (in groups) a push may reach before we prefer a
    /// full refresh. Lemma 8 puts the *expected* distance at O(1/ε); the
    /// bound keeps the worst-case slide cost flat when local slack runs
    /// dry near the end of a fill cycle.
    const MAX_SLIDE_GROUPS: usize = 32;

    /// Tries to borrow `d` bits of slack from the nearest group to the
    /// right, sliding the regions in between (the cross-group push of
    /// §4.4). Returns `false` when no group within reach has the slack.
    fn try_slide(&mut self, g: usize, d: usize) -> bool {
        let limit = (g + 1 + Self::MAX_SLIDE_GROUPS).min(self.n_groups());
        let mut h = g + 1;
        while h < limit {
            if self.caps[h] - self.used[h] >= d {
                break;
            }
            h += 1;
        }
        if h >= limit {
            return false;
        }
        // Slide the occupied stretch of regions g+1..=h right by d. The
        // stretch includes dead slack between regions; moving it is harmless
        // and keeps this a single bounded memmove.
        let src = self.starts[g + 1];
        let count = self.starts[h] + self.used[h] - src;
        self.base.copy_within(src, src + d, count);
        for s in self.starts.iter_mut().take(h + 1).skip(g + 1) {
            *s += d;
        }
        self.caps[g] += d;
        self.caps[h] -= d;
        self.stats.region_shifts += 1;
        self.stats.shift_distance += (h - g) as u64;
        true
    }

    fn maybe_compact(&mut self) {
        let threshold = (self.occupied as f64 * self.cfg.waste_rebuild_fraction) as usize;
        if self.waste > threshold.max(64) {
            let counters = self.to_vec();
            self.layout(&counters, self.cfg.slack_bits_per_group);
            self.stats.rebuilds += 1;
        }
    }

    /// Bits in the base array (counters + slack) — the paper's `N + ε′m`.
    pub fn base_bits(&self) -> usize {
        self.base.len()
    }

    /// Bits of per-item and per-group bookkeeping (the `O(m)` term):
    /// one byte of width per item and three words per group.
    pub fn bookkeeping_bits(&self) -> usize {
        self.widths.len() * 8 + self.starts.len() * 3 * 64
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> usize {
        self.base_bits() + self.bookkeeping_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic LCG for the Lemma 8 measurement.
    pub(crate) struct TestRng(u64);
    impl TestRng {
        pub(crate) fn new(seed: u64) -> Self {
            TestRng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
        }
        pub(crate) fn below(&mut self, bound: usize) -> usize {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as usize) % bound
        }
    }

    #[test]
    fn starts_at_zero() {
        let arr = DynamicCounterArray::new(100);
        for i in 0..100 {
            assert_eq!(arr.get(i), 0);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut arr = DynamicCounterArray::new(200);
        for i in 0..200 {
            arr.set(i, (i as u64) * 977);
        }
        for i in 0..200 {
            assert_eq!(arr.get(i), (i as u64) * 977, "counter {i}");
        }
    }

    #[test]
    fn increments_grow_fields_across_slack() {
        let mut arr = DynamicCounterArray::with_config(
            64,
            DynamicConfig {
                group_size: 8,
                slack_bits_per_group: 2,
                waste_rebuild_fraction: 0.25,
            },
        );
        // Hammer one counter so its field must expand repeatedly, spilling
        // over its group's 2 slack bits into neighbors and rebuilds.
        for step in 0..40 {
            arr.increment(5, 1 << step.min(30));
        }
        let expected: u64 = (0..40).map(|s: u64| 1u64 << s.min(30)).sum();
        assert_eq!(arr.get(5), expected);
        // Everyone else untouched.
        for i in (0..64).filter(|&i| i != 5) {
            assert_eq!(arr.get(i), 0);
        }
        assert!(arr.stats().expansions > 0);
    }

    #[test]
    fn cross_group_push_moves_regions() {
        let cfg = DynamicConfig {
            group_size: 4,
            slack_bits_per_group: 1,
            waste_rebuild_fraction: 0.25,
        };
        let mut arr = DynamicCounterArray::with_config(32, cfg);
        // Fill group 0 beyond its slack while later groups stay slim.
        arr.set(0, u64::MAX >> 1);
        arr.set(1, u64::MAX >> 1);
        assert_eq!(arr.get(0), u64::MAX >> 1);
        assert_eq!(arr.get(1), u64::MAX >> 1);
        let s = arr.stats();
        assert!(
            s.region_shifts > 0 || s.rebuilds > 0,
            "expected slack borrowing: {s:?}"
        );
        for i in 2..32 {
            assert_eq!(arr.get(i), 0);
        }
    }

    #[test]
    fn decrement_and_underflow() {
        let mut arr = DynamicCounterArray::new(10);
        arr.increment(3, 100);
        assert!(arr.decrement(3, 60).is_ok());
        assert_eq!(arr.get(3), 40);
        let err = arr.decrement(3, 41).unwrap_err();
        assert_eq!(
            err,
            Underflow {
                index: 3,
                value: 40,
                by: 41
            }
        );
        assert_eq!(arr.get(3), 40, "failed decrement must not change the value");
    }

    #[test]
    fn deletion_churn_triggers_compaction() {
        let cfg = DynamicConfig {
            group_size: 16,
            slack_bits_per_group: 8,
            waste_rebuild_fraction: 0.1,
        };
        let mut arr = DynamicCounterArray::with_config(256, cfg);
        for i in 0..256 {
            arr.set(i, 1 << 20);
        }
        for i in 0..256 {
            arr.set(i, 1); // massive shrink → waste → compaction
        }
        assert!(arr.stats().rebuilds > 0, "expected a compacting rebuild");
        for i in 0..256 {
            assert_eq!(arr.get(i), 1);
        }
        // After compaction the base array is back near minimal size.
        assert!(
            arr.base_bits() < 256 * 4,
            "base still bloated: {} bits",
            arr.base_bits()
        );
    }

    #[test]
    fn from_counters_matches_source() {
        let vals: Vec<u64> = (0..500).map(|i| (i * i * 31) % 100_000).collect();
        let arr = DynamicCounterArray::from_counters(&vals);
        assert_eq!(arr.to_vec(), vals);
    }

    #[test]
    fn empty_array_is_fine() {
        let arr = DynamicCounterArray::new(0);
        assert!(arr.is_empty());
        assert_eq!(arr.base_bits(), 0);
    }

    #[test]
    fn sliding_pattern_interleaved_inserts_and_deletes() {
        let mut arr = DynamicCounterArray::new(64);
        let mut model = vec![0u64; 64];
        let mut x = 123_456_789u64;
        for step in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % 64;
            if step % 3 == 2 && model[i] > 0 {
                let by = 1 + (x % model[i]);
                arr.decrement(i, by).unwrap();
                model[i] -= by;
            } else {
                let by = 1 + (x % 1000);
                arr.increment(i, by);
                model[i] += by;
            }
        }
        assert_eq!(arr.to_vec(), model);
    }

    #[test]
    fn lemma8_push_distance_is_small_on_random_inserts() {
        // Lemma 8: with random item placement, the expected distance from
        // an expanding counter to the nearest slack is O(1/ε). Measured:
        // the average cross-group slide should span very few groups.
        let mut arr = DynamicCounterArray::with_config(
            10_000,
            DynamicConfig {
                group_size: 32,
                slack_bits_per_group: 16,
                waste_rebuild_fraction: 0.25,
            },
        );
        let mut rng = crate::dynamic::tests::TestRng::new(7);
        for _ in 0..100_000 {
            arr.increment(rng.below(10_000), 1);
        }
        let st = arr.stats();
        if st.region_shifts > 0 {
            let avg = st.shift_distance as f64 / st.region_shifts as f64;
            assert!(avg < 8.0, "average push distance {avg} groups");
        }
        // Amortization sanity: rebuilds stay rare relative to operations.
        assert!(
            st.rebuilds < 50,
            "{} rebuilds for 100k increments",
            st.rebuilds
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_ops_match_vec_model(
            m in 1usize..80,
            ops in prop::collection::vec((0usize..80, 0u64..(1 << 34)), 1..200),
            gs in 1usize..12,
            slack in 0usize..6,
        ) {
            let cfg = DynamicConfig { group_size: gs, slack_bits_per_group: slack, waste_rebuild_fraction: 0.25 };
            let mut arr = DynamicCounterArray::with_config(m, cfg);
            let mut model = vec![0u64; m];
            for (i, v) in ops {
                let i = i % m;
                arr.set(i, v);
                model[i] = v;
                prop_assert_eq!(arr.get(i), v);
            }
            prop_assert_eq!(arr.to_vec(), model);
        }
    }
}
