//! The **String-Array Index** (SAI) of the Spectral Bloom Filter paper
//! (Cohen & Matias, SIGMOD 2003, Section 4), plus the surrounding cast of
//! counter-array representations.
//!
//! # The variable-length access problem (§4.1)
//!
//! Given binary strings `s₁ … s_m` of arbitrary lengths concatenated into
//! `S = s₁s₂…s_m` of `N` bits, return the position (and extent) of `s_i`
//! for any `i` — in O(1) time and `o(N) + O(m)` extra bits.
//!
//! # What this crate provides
//!
//! | Type | Paper section | Contract |
//! |---|---|---|
//! | [`StringArrayIndex`] | §4.3 | static index over item lengths: O(1) [`StringArrayIndex::locate`], built in O(m) |
//! | [`StaticCounterArray`] | §4.3 | counters packed at `⌈log C⌉` bits + a `StringArrayIndex` |
//! | [`DynamicCounterArray`] | §4.4, §4.7 | mutable counters with slack bits, push-to-slack expansion, amortized O(1) updates, periodic rebuilds |
//! | [`CompactCounterArray`] | §4.5 | the "alternative approach": coarse levels only + prefix-free codes, O(log log N) sequential-scan access, `N + o(m)` bits |
//! | [`DynamicCompactArray`] | §4.5 (closing remark) | the compact form made *mutable*: per-group slack + re-encode-on-update, no per-item bookkeeping |
//! | [`DynamicStringArray`] | §4.1 + §4.4 | the *general* problem, mutable: arbitrary bit strings replaced at arbitrary lengths |
//! | [`SelectCounterArray`] | §4.2 | the classic select-reduction reference solution, used to cross-check the SAI |
//!
//! Size accounting is honest: every component reports its in-memory bit
//! count, and [`SizeBreakdown`] reproduces the storage figures (13–15) of
//! the paper's evaluation. The whole static structure serializes into one
//! continuous buffer for node-to-node shipping (§4.7.1, [`serialize`]).

// Library code must surface failures as `Result`/documented panics, never
// ad-hoc `unwrap`/`expect` (ISSUE 4 lint wall); tests keep idiomatic unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod compact_dynamic;
pub mod dynamic;
pub mod dynamic_strings;
pub mod select_ref;
pub mod serialize;
pub mod size;
pub mod static_array;
pub mod static_index;

pub use compact::CompactCounterArray;
pub use compact_dynamic::{CompactConfig, CompactStats, DynamicCompactArray};
pub use dynamic::{DynamicConfig, DynamicCounterArray};
pub use dynamic_strings::DynamicStringArray;
pub use select_ref::SelectCounterArray;
pub use serialize::SerializeError;
pub use size::SizeBreakdown;
pub use static_array::StaticCounterArray;
pub use static_index::{IndexParams, StringArrayIndex};
