//! Continuous-memory serialization of the static counter array (§4.7.1).
//!
//! "One of the popular uses of Bloom Filters is in distributed systems,
//! where the filter is often sent from one node to the other as a message
//! ... The goal is to create the data structure as one continuous block
//! and when it is needed to be sent, simply transmit the contents of the
//! memory block that includes all the information needed to fully
//! reproduce the string-array index."
//!
//! [`crate::StaticCounterArray::to_bytes`] flattens the base array and
//! every index component — `C¹`, the complete/coarse level-2 vectors, the
//! level-3 offset and length vectors, pattern ids, the lookup table, and
//! both flag vectors — into one self-describing buffer;
//! [`crate::StaticCounterArray::from_bytes`] reproduces a byte-identical
//! structure on the receiving node (the lookup table travels too; the
//! paper notes it "can be omitted ... and generated in the receiving
//! node", but shipping it trades a few bytes for zero rebuild work).

use sbf_bitvec::{BitVec, PackedVec};

/// Serialization-format errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerializeError {
    /// Buffer ended before its contents did.
    Truncated,
    /// Magic/version mismatch or an impossible field.
    Malformed,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Truncated => write!(f, "buffer truncated"),
            SerializeError::Malformed => write!(f, "malformed string-array-index block"),
        }
    }
}

impl std::error::Error for SerializeError {}

pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn bitvec(&mut self, bits: &BitVec) {
        self.usize(bits.len());
        for &w in bits.words() {
            self.u64(w);
        }
    }

    pub(crate) fn packed(&mut self, v: &PackedVec) {
        self.usize(v.width());
        self.usize(v.len());
        for i in 0..v.len() {
            // Entries re-packed on read; values are what matters.
            self.u64(v.get(i));
        }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SerializeError> {
        let end = self.pos.checked_add(8).ok_or(SerializeError::Malformed)?;
        if end > self.buf.len() {
            return Err(SerializeError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..end]);
        let v = u64::from_le_bytes(bytes);
        self.pos = end;
        Ok(v)
    }

    pub(crate) fn usize_checked(&mut self, cap: usize) -> Result<usize, SerializeError> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err(SerializeError::Malformed);
        }
        Ok(v as usize)
    }

    pub(crate) fn bitvec(&mut self) -> Result<BitVec, SerializeError> {
        // A bit length beyond 2^40 would mean a >128 GiB filter; reject.
        let len = self.usize_checked(1 << 40)?;
        let mut bits = BitVec::zeros(len);
        let words = len.div_ceil(64);
        for w in 0..words {
            let word = self.u64()?;
            let lo = w * 64;
            let width = 64.min(len - lo);
            let masked = if width == 64 {
                word
            } else {
                word & ((1u64 << width) - 1)
            };
            bits.write_bits(lo, width, masked);
        }
        Ok(bits)
    }

    pub(crate) fn packed(&mut self) -> Result<PackedVec, SerializeError> {
        let width = self.usize_checked(64)?;
        let len = self.usize_checked(1 << 36)?;
        let mut v = PackedVec::with_capacity(width, len);
        let cap = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        for _ in 0..len {
            let x = self.u64()?;
            if x > cap {
                return Err(SerializeError::Malformed);
            }
            v.push(x);
        }
        Ok(v)
    }

    pub(crate) fn done(&self) -> Result<(), SerializeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SerializeError::Malformed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u64(42);
        let bits = BitVec::from_bools(&[true, false, true, true]);
        w.bitvec(&bits);
        let packed = PackedVec::from_slice(7, &[1, 2, 3, 100]);
        w.packed(&packed);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.bitvec().unwrap(), bits);
        assert_eq!(r.packed().unwrap(), packed);
        r.done().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.bitvec(&BitVec::zeros(200));
        let buf = w.finish();
        for cut in [0, 7, 8, 15, buf.len() - 1] {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.bitvec().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overwide_packed_entry_is_malformed() {
        // width 3 but an entry of 9: hand-craft the buffer.
        let mut w = Writer::new();
        w.usize(3); // width
        w.usize(1); // len
        w.u64(9); // entry too wide
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.packed(), Err(SerializeError::Malformed));
    }
}
