//! Adversarial property tests for every decoder that faces bytes from the
//! network: the Elias-δ counter frame (`sbf_db::wire`), the filter
//! envelope, and the `sbfd` request/response framing (`sbf_server::proto`).
//!
//! The contract under test, for arbitrary hostile input:
//!
//! * decoding returns `Err` — it never panics, and
//! * no allocation is sized by an unvalidated header field, so a 16-byte
//!   frame claiming 2^60 counters dies in `O(1)` (`WireError::Oversized` /
//!   `Truncated`), and
//! * well-formed frames still roundtrip after the hardening.

use proptest::prelude::*;

use sbf_db::logrec::{append_record, LogScanner, TailStatus};
use sbf_db::wire::{
    decode_counters, decode_counters_capped, encode_counters, FilterEnvelope, FilterKind, WireError,
};
use sbf_server::{Request, Response};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed frames still decode to the exact counters.
    #[test]
    fn counter_frames_roundtrip(
        counters in prop::collection::vec(0u64..1 << 20, 0..256),
    ) {
        let frame = encode_counters(counters.iter().copied());
        prop_assert_eq!(decode_counters(&frame), Ok(counters.clone()));
        prop_assert_eq!(
            decode_counters_capped(&frame, counters.len()),
            Ok(counters)
        );
    }

    /// Truncating a valid frame anywhere yields `Err`, never a panic and
    /// never a partial success.
    #[test]
    fn truncated_counter_frames_error(
        counters in prop::collection::vec(0u64..1 << 16, 1..128),
        cut in 0usize..1000,
    ) {
        let frame = encode_counters(counters.iter().copied());
        let cut = cut % frame.len();
        prop_assert!(decode_counters(&frame[..cut]).is_err());
    }

    /// Flipping any single bit of a valid frame either still decodes (the
    /// flip landed in padding or produced another valid stream) or errors
    /// — it never panics, and a success never exceeds the cap.
    #[test]
    fn bit_flipped_counter_frames_never_panic(
        counters in prop::collection::vec(0u64..1 << 16, 1..64),
        flip in 0usize..100_000,
    ) {
        let mut frame = encode_counters(counters.iter().copied());
        let bit = flip % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        if let Ok(decoded) = decode_counters_capped(&frame, counters.len()) {
            prop_assert!(decoded.len() <= counters.len());
        }
    }

    /// Inflating the header's counter count beyond the cap is refused
    /// before allocation: a tiny frame claiming up to `u64::MAX` counters
    /// must come back `Oversized` (cap breach) in O(1).
    #[test]
    fn length_inflated_headers_are_refused(
        counters in prop::collection::vec(0u64..1 << 16, 1..64),
        claim in (1u64 << 32)..u64::MAX,
    ) {
        let mut frame = encode_counters(counters.iter().copied());
        frame[0..8].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(
            decode_counters_capped(&frame, 1 << 20),
            Err(WireError::Oversized)
        );
    }

    /// Inflating the bit-length field instead is caught by the
    /// bytes-present check: `Truncated`, not a huge buffer.
    #[test]
    fn bit_length_inflated_headers_are_refused(
        counters in prop::collection::vec(0u64..1 << 16, 1..64),
        claim in (1u64 << 32)..u64::MAX,
    ) {
        let mut frame = encode_counters(counters.iter().copied());
        frame[8..16].copy_from_slice(&claim.to_le_bytes());
        prop_assert_eq!(
            decode_counters_capped(&frame, 1 << 20),
            Err(WireError::Truncated)
        );
    }

    /// Completely random bytes never panic any wire decoder.
    #[test]
    fn random_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_counters_capped(&bytes, 1 << 16);
        let _ = FilterEnvelope::decode_capped(&bytes, 1 << 16);
        if let Some((&opcode, payload)) = bytes.split_first() {
            let _ = Request::decode(opcode, payload);
            let _ = Response::decode(opcode, payload);
        }
    }

    /// Envelope roundtrip survives the hardened decode path.
    #[test]
    fn envelopes_roundtrip_under_cap(
        counters in prop::collection::vec(0u64..1 << 12, 1..128),
        k in 1u32..16,
        seed in any::<u64>(),
    ) {
        let env = FilterEnvelope {
            kind: FilterKind::MinimumSelection,
            k,
            seed,
            counters: counters.clone(),
        };
        let bytes = env.encode();
        let back = FilterEnvelope::decode_capped(&bytes, counters.len()).unwrap();
        prop_assert_eq!(back.counters, counters);
        prop_assert_eq!(back.k, k);
        prop_assert_eq!(back.seed, seed);
        // One fewer than needed: the cap must bite.
        prop_assert_eq!(
            FilterEnvelope::decode_capped(&bytes, env.counters.len() - 1).err(),
            Some(WireError::Oversized)
        );
    }

    /// Request frames roundtrip for arbitrary keys and batches, and the
    /// decoded form equals the encoded one (no silent truncation).
    #[test]
    fn request_frames_roundtrip(
        key in prop::collection::vec(any::<u8>(), 0..64),
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 0..32),
        count in any::<u64>(),
    ) {
        for req in [
            Request::Insert { count, key: key.clone() },
            Request::Remove { count, key: key.clone() },
            Request::Estimate { key: key.clone() },
            Request::InsertBatch { keys: keys.clone() },
            Request::EstimateBatch { keys: keys.clone() },
            Request::Merge { envelope: key.clone() },
        ] {
            let bytes = req.encode().expect("well-formed requests encode");
            let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
            prop_assert_eq!(len, bytes.len() - 4);
            let back = Request::decode(bytes[4], &bytes[5..]);
            prop_assert_eq!(back, Ok(req));
        }
    }

    /// A batch header claiming more elements than the payload could hold
    /// is refused before the output vector is reserved.
    #[test]
    fn hostile_batch_counts_are_refused(
        claim in (1u32 << 16)..u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut payload = claim.to_le_bytes().to_vec();
        payload.extend_from_slice(&tail);
        // Opcode 0x05 = INSERT_BATCH, 0x06 = ESTIMATE_BATCH.
        for opcode in [0x05u8, 0x06] {
            prop_assert!(Request::decode(opcode, &payload).is_err());
        }
    }
}

// The WAL record codec faces bytes from *disk* after a crash: torn
// tails, flipped bits, duplicated suffixes. Same contract as the wire
// decoders — never panic, never allocate from an unvalidated length —
// plus the repair property recovery relies on: the scanner's
// `valid_len()` always marks a prefix that re-scans clean.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed logs roundtrip and end clean.
    #[test]
    fn log_records_roundtrip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..32),
    ) {
        let mut log = Vec::new();
        for p in &payloads {
            append_record(&mut log, p).unwrap();
        }
        let mut scan = LogScanner::new(&log);
        let back: Vec<Vec<u8>> = scan.by_ref().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(back, payloads);
        prop_assert_eq!(scan.tail(), TailStatus::Clean);
        prop_assert_eq!(scan.valid_len(), log.len());
    }

    /// A log truncated anywhere (a torn tail) yields some prefix of the
    /// records, and truncating at `valid_len()` repairs it: the repaired
    /// log re-scans clean with exactly the surviving records.
    #[test]
    fn torn_log_tails_truncate_to_a_clean_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..16),
        cut in 0usize..4096,
    ) {
        let mut log = Vec::new();
        for p in &payloads {
            append_record(&mut log, p).unwrap();
        }
        let cut = cut % (log.len() + 1);
        let mut scan = LogScanner::new(&log[..cut]);
        let survived: Vec<Vec<u8>> = scan.by_ref().map(<[u8]>::to_vec).collect();
        prop_assert!(survived.len() <= payloads.len());
        prop_assert_eq!(&payloads[..survived.len()], &survived[..]);
        let keep = scan.valid_len();
        prop_assert!(keep <= cut);
        // The repair recovery performs: drop everything past valid_len.
        let mut rescan = LogScanner::new(&log[..keep]);
        let repaired = rescan.by_ref().count();
        prop_assert_eq!(repaired, survived.len());
        prop_assert_eq!(rescan.tail(), TailStatus::Clean);
    }

    /// Any single flipped bit is caught (CRC, length check, or header
    /// damage) without a panic, and the valid prefix still re-scans
    /// clean — corruption never yields a record that was not written.
    #[test]
    fn bit_flipped_logs_never_panic_and_stay_repairable(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..16),
        flip in 0usize..100_000,
    ) {
        let mut log = Vec::new();
        for p in &payloads {
            append_record(&mut log, p).unwrap();
        }
        let bit = flip % (log.len() * 8);
        log[bit / 8] ^= 1 << (bit % 8);
        let mut scan = LogScanner::new(&log);
        let survived = scan.by_ref().count();
        prop_assert!(survived <= payloads.len());
        let keep = scan.valid_len();
        let mut rescan = LogScanner::new(&log[..keep]);
        prop_assert_eq!(rescan.by_ref().count(), survived);
        prop_assert_eq!(rescan.tail(), TailStatus::Clean);
    }

    /// A duplicated tail (the same records appended twice — e.g. a retry
    /// after an unacknowledged append) is simply more valid records:
    /// replay double-applies them, which only over-counts and keeps
    /// estimates one-sided.
    #[test]
    fn duplicated_log_tails_scan_as_extra_records(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..8),
    ) {
        let mut log = Vec::new();
        for p in &payloads {
            append_record(&mut log, p).unwrap();
        }
        let tail = log.clone();
        log.extend_from_slice(&tail[..]);
        let mut scan = LogScanner::new(&log);
        prop_assert_eq!(scan.by_ref().count(), payloads.len() * 2);
        prop_assert_eq!(scan.tail(), TailStatus::Clean);
    }

    /// Completely random bytes never panic the scanner, and whatever
    /// valid prefix it reports re-scans clean.
    #[test]
    fn random_bytes_never_panic_the_log_scanner(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut scan = LogScanner::new(&bytes);
        let n = scan.by_ref().count();
        let keep = scan.valid_len();
        prop_assert!(keep <= bytes.len());
        let mut rescan = LogScanner::new(&bytes[..keep]);
        prop_assert_eq!(rescan.by_ref().count(), n);
        prop_assert_eq!(rescan.tail(), TailStatus::Clean);
    }
}

/// Deterministic regression cases pinned outside the property loop.
#[test]
fn pinned_hostile_frames() {
    // The original allocation hole: 16 header bytes claiming 2^60
    // counters with no payload at all.
    let mut frame = Vec::new();
    frame.extend_from_slice(&(1u64 << 60).to_le_bytes());
    frame.extend_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode_counters(&frame), Err(WireError::Oversized));

    // Sub-header frames.
    for n in 0..16 {
        assert_eq!(
            decode_counters_capped(&vec![0xFF; n], 1 << 10),
            Err(WireError::Truncated)
        );
    }

    // m > bit_len: more counters than payload bits can possibly encode.
    let mut frame = Vec::new();
    frame.extend_from_slice(&100u64.to_le_bytes());
    frame.extend_from_slice(&10u64.to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]);
    assert_eq!(
        decode_counters_capped(&frame, 1 << 10),
        Err(WireError::Truncated)
    );
}
