//! Batch/single equivalence: every backend's `insert_batch` /
//! `estimate_batch` / `remove_batch` must be **bit-identical** to the
//! item-at-a-time loop — the pipelined implementations are allowed to go
//! faster, never to answer differently (ISSUE 3, satellite 3).
//!
//! The `simd_*` properties extend the contract across dispatch levels
//! (ISSUE 8): the same batch answered with the dispatch level forced to
//! scalar ([`sbf_hash::set_simd_level`]) and at the machine's full level
//! must agree bit for bit, and both must equal the single-item loop. On a
//! machine without SIMD the two legs collapse to the same code path and
//! the assertions hold trivially.

use std::sync::Mutex;

use proptest::prelude::*;

use spectral_bloom::{
    AtomicMsSbf, BlockedMsSbf, BloomFilter, CompactCounters, CompressedCounters, DefaultFamily,
    MiSbf, MsSbf, MultisetSketch, RmSbf, ShardedSketch, SketchReader,
};

/// Probe set: the inserted keys plus a band of keys that were never
/// inserted (batch and single must agree on zeros/false positives too).
fn probes(keys: &[u64]) -> Vec<u64> {
    let mut p = keys.to_vec();
    p.extend(10_000u64..10_064);
    p
}

/// Feeds `keys` into `a` one at a time and into `b` via `insert_batch`,
/// then checks that every probe estimates identically (batch query path on
/// `b`, single query path on `a`) and the totals match.
fn assert_insert_equiv<S: MultisetSketch>(a: &mut S, b: &mut S, keys: &[u64]) {
    for key in keys {
        a.insert(key);
    }
    b.insert_batch(keys);
    assert_queries_equiv(a, b, keys);
}

/// Checks single-path estimates on `a` against batch-path estimates on `b`.
fn assert_queries_equiv<S: SketchReader>(a: &S, b: &S, keys: &[u64]) {
    let probes = probes(keys);
    let singles: Vec<u64> = probes.iter().map(|k| a.estimate(k)).collect();
    let mut batched = Vec::new();
    b.estimate_batch_into(&probes, &mut batched);
    assert_eq!(singles, batched, "estimate_batch diverged from estimate");
    // And the cross-check: batch on `a` matches singles on `b`.
    let batched_a = a.estimate_batch(&probes);
    let singles_b: Vec<u64> = probes.iter().map(|k| b.estimate(k)).collect();
    assert_eq!(batched_a, singles_b);
    assert_eq!(a.total_count(), b.total_count());
}

/// Removes the first half of `keys` from both sketches — one at a time on
/// `a`, via `remove_batch` on `b`. Each occurrence in the prefix also
/// occurs in the full insert stream, so every removal is of a truly
/// present key and must succeed on both paths.
fn assert_remove_equiv<S: MultisetSketch>(a: &mut S, b: &mut S, keys: &[u64]) {
    let removes = &keys[..keys.len() / 2];
    for key in removes {
        a.remove(key).expect("single remove of present key");
    }
    b.remove_batch(removes)
        .expect("batch remove of present keys");
    assert_queries_equiv(a, b, keys);
}

/// Serialises tests that toggle the process-global SIMD dispatch level so
/// a forced-scalar window in one test cannot leak into another's timing of
/// the full level (results are identical at every level by contract — the
/// lock keeps the *legs* of each comparison honest).
static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Answers `probes` three ways — batch at the machine's full dispatch
/// level, batch with the level forced to scalar, and the single-item
/// loop — and requires all three to agree exactly.
fn assert_simd_scalar_equiv<S: SketchReader>(sketch: &S, keys: &[u64]) {
    let _guard = SIMD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let probes = probes(keys);
    let full = sbf_hash::simd_level();
    let mut vectored = Vec::new();
    sketch.estimate_batch_into(&probes, &mut vectored);
    sbf_hash::set_simd_level(sbf_hash::SimdLevel::Scalar);
    let mut scalar = Vec::new();
    sketch.estimate_batch_into(&probes, &mut scalar);
    sbf_hash::set_simd_level(full);
    assert_eq!(
        vectored, scalar,
        "estimate_batch at {full:?} diverged from forced-scalar"
    );
    let singles: Vec<u64> = probes.iter().map(|k| sketch.estimate(k)).collect();
    assert_eq!(vectored, singles, "batch diverged from single-item loop");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Minimum Selection, plain counters: insert + remove equivalence.
    #[test]
    fn ms_plain(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut a = MsSbf::new(1 << 12, 4, seed);
        let mut b = MsSbf::new(1 << 12, 4, seed);
        assert_insert_equiv(&mut a, &mut b, &keys);
        assert_remove_equiv(&mut a, &mut b, &keys);
    }

    /// Minimum Selection over the Elias-γ compressed store.
    #[test]
    fn ms_compressed(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let fam = DefaultFamily::new(1 << 12, 4, seed);
        let mut a = MsSbf::<DefaultFamily, CompressedCounters>::from_family(fam.clone());
        let mut b = MsSbf::<DefaultFamily, CompressedCounters>::from_family(fam);
        assert_insert_equiv(&mut a, &mut b, &keys);
        assert_remove_equiv(&mut a, &mut b, &keys);
    }

    /// Minimum Selection over the 4-bit compact store.
    #[test]
    fn ms_compact(keys in prop::collection::vec(0u64..2000, 0..300), seed in any::<u64>()) {
        let fam = DefaultFamily::new(1 << 13, 4, seed);
        let mut a = MsSbf::<DefaultFamily, CompactCounters>::from_family(fam.clone());
        let mut b = MsSbf::<DefaultFamily, CompactCounters>::from_family(fam);
        assert_insert_equiv(&mut a, &mut b, &keys);
    }

    /// Cache-blocked MS layout.
    #[test]
    fn ms_blocked(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut a = BlockedMsSbf::new_blocked(64, 64, 4, seed);
        let mut b = BlockedMsSbf::new_blocked(64, 64, 4, seed);
        assert_insert_equiv(&mut a, &mut b, &keys);
        assert_remove_equiv(&mut a, &mut b, &keys);
    }

    /// Minimal Increase — the floor rule makes results depend on insertion
    /// order, so bit-identity here pins that the pipeline applies strictly
    /// in order.
    #[test]
    fn mi_order_dependent(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut a = MiSbf::new(1 << 12, 4, seed);
        let mut b = MiSbf::new(1 << 12, 4, seed);
        assert_insert_equiv(&mut a, &mut b, &keys);
    }

    /// Recurring Minimum (primary + secondary + marker): insert + remove.
    #[test]
    fn rm_insert_remove(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut a = RmSbf::new(1 << 13, 4, seed);
        let mut b = RmSbf::new(1 << 13, 4, seed);
        assert_insert_equiv(&mut a, &mut b, &keys);
        assert_remove_equiv(&mut a, &mut b, &keys);
    }

    /// Classic Bloom filter: insert_batch / contains_batch.
    #[test]
    fn bloom(keys in prop::collection::vec(any::<u64>(), 0..400), seed in any::<u64>()) {
        let mut a = BloomFilter::new(1 << 12, 5, seed);
        let mut b = BloomFilter::new(1 << 12, 5, seed);
        for key in &keys {
            a.insert(key);
        }
        b.insert_batch(&keys);
        let probes = probes(&keys);
        let singles: Vec<bool> = probes.iter().map(|k| a.contains(k)).collect();
        assert_eq!(singles, b.contains_batch(&probes));
        assert_eq!(a.inserted(), b.inserted());
    }

    /// Lock-free atomic MS backend, driven single-threaded so batch and
    /// single paths see identical interleavings.
    #[test]
    fn atomic_ms(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let a = AtomicMsSbf::new(1 << 12, 4, seed);
        let b = AtomicMsSbf::new(1 << 12, 4, seed);
        for key in &keys {
            a.insert(key);
        }
        b.insert_batch(&keys);
        assert_queries_equiv(&a, &b, &keys);
    }

    /// Sharded wrapper: partitioned batch application must equal the
    /// key-at-a-time routing, including removals.
    #[test]
    fn sharded(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let a = ShardedSketch::with_shards(4, |i| MsSbf::new(1 << 11, 4, seed ^ i as u64));
        let b = ShardedSketch::with_shards(4, |i| MsSbf::new(1 << 11, 4, seed ^ i as u64));
        for key in &keys {
            a.insert(key);
        }
        b.insert_batch(&keys);
        assert_queries_equiv(&a, &b, &keys);

        let removes = &keys[..keys.len() / 2];
        for key in removes {
            a.remove(key).expect("single remove of present key");
        }
        b.remove_batch(removes).expect("batch remove of present keys");
        assert_queries_equiv(&a, &b, &keys);
    }

    /// SIMD vs scalar, plain MS store — the gathered-min kernel path.
    #[test]
    fn simd_ms(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut s = MsSbf::new(1 << 12, 4, seed);
        s.insert_batch(&keys);
        assert_simd_scalar_equiv(&s, &keys);
    }

    /// SIMD vs scalar, cache-blocked layout — block-local gathered min.
    #[test]
    fn simd_blocked(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let mut s = BlockedMsSbf::new_blocked(64, 64, 4, seed);
        s.insert_batch(&keys);
        assert_simd_scalar_equiv(&s, &keys);
    }

    /// SIMD vs scalar through the sharded wrapper's partitioned batches.
    #[test]
    fn simd_sharded(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let s = ShardedSketch::with_shards(4, |i| MsSbf::new(1 << 11, 4, seed ^ i as u64));
        s.insert_batch(&keys);
        assert_simd_scalar_equiv(&s, &keys);
    }

    /// SIMD vs scalar, atomic backend — lane hashing with per-element
    /// atomic loads (no vector gather over atomics).
    #[test]
    fn simd_atomic(keys in prop::collection::vec(0u64..500, 0..400), seed in any::<u64>()) {
        let s = AtomicMsSbf::new(1 << 12, 4, seed);
        s.insert_batch(&keys);
        assert_simd_scalar_equiv(&s, &keys);
    }
}
