//! Cross-crate property tests: the paper's invariants under arbitrary
//! (generated) inputs.

use proptest::prelude::*;
use std::collections::HashMap;

use spectral_bloom::{
    ad_hoc_iceberg, multiscan_iceberg, BloomFilter, MiSbf, MsSbf, MultiscanConfig, MultisetSketch,
    RangeTreeSketch, RmSbf, SketchReader,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bloom filters never lose an inserted key, whatever the keys and
    /// parameters.
    #[test]
    fn bloom_no_false_negatives(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        m in 64usize..4096,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut bf = BloomFilter::new(m, k, seed);
        for key in &keys {
            bf.insert(key);
        }
        for key in &keys {
            prop_assert!(bf.contains(key));
        }
    }

    /// The range tree's estimate dominates the truth for every queried
    /// range, under random inserts and valid removes.
    #[test]
    fn range_tree_dominates_model(
        ops in prop::collection::vec((0u64..128, prop::bool::ANY), 1..250),
        queries in prop::collection::vec((0u64..128, 0u64..129), 1..20),
    ) {
        let mut tree = RangeTreeSketch::new(MsSbf::new(1 << 13, 4, 5), 0, 128);
        let mut model = vec![0u64; 128];
        for (v, insert) in ops {
            if insert || model[v as usize] == 0 {
                tree.insert(v);
                model[v as usize] += 1;
            } else {
                tree.remove_by(v, 1).expect("value present in model");
                model[v as usize] -= 1;
            }
        }
        for (a, b) in queries {
            let (a, b) = (a.min(b), a.max(b));
            let want: u64 = model[a as usize..b as usize].iter().sum();
            prop_assert!(tree.count_range(a, b).estimate >= want, "range [{a},{b})");
        }
    }

    /// Ad-hoc iceberg recall is 1 at any threshold, any stream.
    #[test]
    fn iceberg_recall_prop(
        stream in prop::collection::vec(0u64..100, 1..600),
        threshold in 1u64..20,
    ) {
        let mut sbf = MsSbf::new(4096, 5, 11);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            sbf.insert(&x);
            *truth.entry(x).or_insert(0) += 1;
        }
        let out = ad_hoc_iceberg(&sbf, stream.iter().copied(), threshold);
        for (&key, &f) in &truth {
            if f >= threshold {
                prop_assert!(out.contains(&key), "missed {key} (f={f}, T={threshold})");
            }
        }
    }

    /// Multiscan recall is 1 even through deliberately lossy stages.
    #[test]
    fn multiscan_recall_prop(
        stream in prop::collection::vec(0u64..60, 1..400),
        threshold in 2u64..10,
        seed in any::<u64>(),
    ) {
        let config = MultiscanConfig { stages: vec![(32, 2), (16, 2)], seed };
        let out = multiscan_iceberg(&stream, threshold, &config);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&key, &f) in &truth {
            if f >= threshold {
                prop_assert!(out.contains(&key));
            }
        }
    }

    /// MS, MI, and RM all dominate the truth on arbitrary insert-only
    /// streams (Claim 1 / Claim 4 / §3.3).
    #[test]
    fn all_algorithms_one_sided_on_inserts(
        stream in prop::collection::vec(0u64..80, 1..500),
    ) {
        let mut ms = MsSbf::new(2048, 5, 3);
        let mut mi = MiSbf::new(2048, 5, 3);
        let mut rm = RmSbf::new(2048, 5, 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            ms.insert(&x);
            mi.insert(&x);
            rm.insert(&x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&key, &f) in &truth {
            prop_assert!(ms.estimate(&key) >= f, "MS under-counted {key}");
            prop_assert!(mi.estimate(&key) >= f, "MI under-counted {key}");
            prop_assert!(rm.estimate(&key) >= f, "RM under-counted {key}");
        }
    }

    /// The MI ≤ MS per-key error dominance (Claim 4) holds on arbitrary
    /// insert streams, not just the curated ones.
    #[test]
    fn mi_error_never_exceeds_ms_prop(
        stream in prop::collection::vec(0u64..40, 1..400),
    ) {
        // A deliberately small filter so collisions actually occur.
        let mut ms = MsSbf::new(128, 4, 9);
        let mut mi = MiSbf::new(128, 4, 9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            ms.insert(&x);
            mi.insert(&x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&key, &f) in &truth {
            let e_ms = ms.estimate(&key) - f;
            let e_mi = mi.estimate(&key) - f;
            prop_assert!(e_mi <= e_ms, "key {key}: MI {e_mi} > MS {e_ms}");
        }
    }

    /// Union semantics: the united filter dominates the merged truth, for
    /// arbitrary partitions.
    #[test]
    fn union_dominates_merged_truth(
        part_a in prop::collection::vec(0u64..50, 0..200),
        part_b in prop::collection::vec(0u64..50, 0..200),
    ) {
        let mut a = MsSbf::new(1024, 4, 17);
        let mut b = MsSbf::new(1024, 4, 17);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &part_a {
            a.insert(&x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for &x in &part_b {
            b.insert(&x);
            *truth.entry(x).or_insert(0) += 1;
        }
        a.union_assign(&b);
        prop_assert_eq!(a.total_count(), (part_a.len() + part_b.len()) as u64);
        for (&key, &f) in &truth {
            prop_assert!(a.estimate(&key) >= f);
        }
    }
}
