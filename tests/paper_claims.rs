//! The paper's headline claims, pinned as executable assertions.

use proptest::prelude::*;
use sbf_workloads::{DeletionPhaseStream, ZipfWorkload};
use spectral_bloom::{
    ad_hoc_iceberg, bloom_error_rate, unbiased_estimate, MiSbf, MsSbf, MultisetSketch, RmSbf,
    SketchReader,
};

/// Claim 1 (§2.2): `f_x ≤ m_x` for all keys, under arbitrary insert
/// sequences — the one-sidedness everything else builds on.
#[test]
fn claim1_ms_estimates_are_upper_bounds() {
    for seed in 0..3u64 {
        let w = ZipfWorkload::generate(800, 40_000, 1.0, seed);
        let mut sbf = MsSbf::new(3000, 5, seed);
        for &x in &w.stream {
            sbf.insert(&x);
        }
        for (key, &f) in w.truth.iter().enumerate() {
            assert!(sbf.estimate(&(key as u64)) >= f, "seed {seed}, key {key}");
        }
    }
}

/// Claim 1 continued: the error *probability* tracks the Bloom error
/// `(1 − e^{−γ})^k` (within sampling noise).
#[test]
fn claim1_error_rate_tracks_bloom_error() {
    let n = 1000usize;
    let k = 5usize;
    for gamma_x10 in [5usize, 7, 10] {
        let m = n * k * 10 / gamma_x10;
        let w = ZipfWorkload::generate(n, 100_000, 0.5, 42);
        let mut sbf = MsSbf::new(m, k, 42);
        for &x in &w.stream {
            sbf.insert(&x);
        }
        let wrong = w
            .truth
            .iter()
            .enumerate()
            .filter(|&(key, &f)| sbf.estimate(&(key as u64)) != f)
            .count();
        let measured = wrong as f64 / n as f64;
        let theory = bloom_error_rate(n, m, k);
        assert!(
            (measured - theory).abs() < theory.max(0.01),
            "γ={:.1}: measured {measured:.4} vs theory {theory:.4}",
            gamma_x10 as f64 / 10.0
        );
    }
}

/// Claim 4 (§3.2): per-key, Minimal Increase errs no more (and no larger)
/// than Minimum Selection on the same insert stream.
#[test]
fn claim4_mi_dominates_ms_per_key() {
    for seed in 0..3u64 {
        let w = ZipfWorkload::generate(600, 50_000, 1.2, seed);
        let m = 2500;
        let mut ms = MsSbf::new(m, 5, seed);
        let mut mi = MiSbf::new(m, 5, seed);
        for &x in &w.stream {
            ms.insert(&x);
            mi.insert(&x);
        }
        for (key, &f) in w.truth.iter().enumerate() {
            let key = key as u64;
            let e_ms = ms.estimate(&key) - f; // MS is one-sided
            let e_mi = mi.estimate(&key).saturating_sub(f);
            assert!(e_mi <= e_ms, "seed {seed} key {key}: MI {e_mi} > MS {e_ms}");
        }
    }
}

/// Claim 5 (§3.2): on uniform data, Minimal Increase cuts the expected
/// error *size* by roughly a factor of `k` relative to Minimum Selection
/// (the claim's proof bounds the error expectancy at `F/k` against MS's
/// `F`, under an idealized round-robin interleaving).
#[test]
fn claim5_mi_uniform_error_size_reduction() {
    let n = 1000usize;
    let k = 5usize;
    let m = n * k; // γ = 1 so MS errs often enough to measure
    let mut ratios = Vec::new();
    for seed in 0..5u64 {
        let w = ZipfWorkload::generate(n, 100_000, 0.0, seed); // uniform
        let mut ms = MsSbf::new(m, k, seed);
        let mut mi = MiSbf::new(m, k, seed);
        for &x in &w.stream {
            ms.insert(&x);
            mi.insert(&x);
        }
        let total_err = |est: &dyn Fn(u64) -> u64| {
            w.truth
                .iter()
                .enumerate()
                .map(|(key, &f)| est(key as u64).abs_diff(f))
                .sum::<u64>() as f64
        };
        let e_ms = total_err(&|key| ms.estimate(&key));
        let e_mi = total_err(&|key| mi.estimate(&key));
        if e_mi > 0.0 {
            ratios.push(e_ms / e_mi);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    // Real Poisson-ish arrivals are rougher than the claim's idealized
    // interleaving; require at least half the claimed factor.
    assert!(
        mean >= k as f64 / 2.0,
        "MI error-size reduction {mean:.2} far below the claimed ≈{k}"
    );
}

/// §3.2/§6.2: deletions break MI (false negatives) but not MS/RM.
#[test]
fn deletions_break_mi_not_ms_rm() {
    let w = ZipfWorkload::generate(500, 50_000, 1.0, 9);
    let stream = DeletionPhaseStream::from_zipf(&w, 10, 9);
    let m = 3500;

    let mut ms = MsSbf::new(m, 5, 1);
    let mut rm = RmSbf::new(m, 5, 1);
    let mut mi = MiSbf::new(m, 5, 1).with_unchecked_deletions();
    for &e in &stream.events {
        match e {
            sbf_workloads::StreamEvent::Insert(x) => {
                ms.insert(&x);
                rm.insert(&x);
                mi.insert(&x);
            }
            sbf_workloads::StreamEvent::Delete(x) => {
                ms.remove(&x).expect("present");
                rm.remove(&x).expect("present");
                mi.remove_unchecked(&x, 1);
            }
        }
    }
    let count_fn = |est: &dyn Fn(u64) -> u64| -> usize {
        stream
            .truth
            .iter()
            .enumerate()
            .filter(|&(key, &f)| est(key as u64) < f)
            .count()
    };
    let fn_ms = count_fn(&|k| ms.estimate(&k));
    let fn_mi = count_fn(&|k| mi.estimate(&k));
    assert_eq!(fn_ms, 0, "MS must stay one-sided under deletions");
    assert!(
        fn_mi > 0,
        "MI must break under deletions (the paper's point)"
    );
}

/// §5.2: ad-hoc iceberg queries have recall 1 at any post-hoc threshold.
#[test]
fn iceberg_recall_is_one_at_every_threshold() {
    let w = ZipfWorkload::generate(2000, 80_000, 1.1, 4);
    let mut sbf = MsSbf::new(15_000, 5, 4);
    for &x in &w.stream {
        sbf.insert(&x);
    }
    for threshold in [1u64, 5, 50, 500, 5000] {
        let result = ad_hoc_iceberg(&sbf, 0..2000u64, threshold);
        for (key, &f) in w.truth.iter().enumerate() {
            if f >= threshold {
                assert!(
                    result.contains(&(key as u64)),
                    "T={threshold}: missed key {key} (f={f})"
                );
            }
        }
    }
}

/// §3.1 (Lemma 3): the probabilistic estimator is unbiased — its mean
/// signed error across many keys vanishes, while MS's bias is positive.
#[test]
fn lemma3_unbiased_vs_ms_bias() {
    let w = ZipfWorkload::generate(1500, 60_000, 0.3, 8);
    let m = 4000;
    let mut sbf = MsSbf::new(m, 5, 8);
    for &x in &w.stream {
        sbf.insert(&x);
    }
    let mut signed = 0.0;
    let mut ms_signed = 0.0;
    for (key, &f) in w.truth.iter().enumerate() {
        let key = key as u64;
        signed += unbiased_estimate(sbf.core(), &key) - f as f64;
        ms_signed += sbf.estimate(&key) as f64 - f as f64;
    }
    let bias = signed / w.truth.len() as f64;
    let ms_bias = ms_signed / w.truth.len() as f64;
    assert!(ms_bias > 0.5, "MS should be visibly biased here: {ms_bias}");
    assert!(
        bias.abs() < ms_bias / 3.0,
        "unbiased {bias} vs MS {ms_bias}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// One-sidedness survives arbitrary interleavings of inserts and
    /// (valid) removals for MS.
    #[test]
    fn ms_one_sided_under_random_valid_ops(
        ops in prop::collection::vec((0u64..50, 1u64..5, prop::bool::ANY), 1..300)
    ) {
        let mut sbf = MsSbf::new(1024, 4, 99);
        let mut truth = std::collections::HashMap::new();
        for (key, count, is_insert) in ops {
            if is_insert {
                sbf.insert_by(&key, count);
                *truth.entry(key).or_insert(0u64) += count;
            } else {
                let have = truth.get(&key).copied().unwrap_or(0);
                if have >= count {
                    sbf.remove_by(&key, count).expect("removing present items");
                    *truth.get_mut(&key).expect("present") -= count;
                }
            }
        }
        for (&key, &f) in &truth {
            prop_assert!(sbf.estimate(&key) >= f);
        }
    }
}
