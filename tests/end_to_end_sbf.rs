//! End-to-end flows that span crates: compressed storage under the RM
//! algorithm, sliding windows over compressed counters, distributed
//! union/multiply through the wire encoding, and blocked (external-memory)
//! hashing.

use sbf_db::wire;
use sbf_hash::{BlockedFamily, HashFamily, MixFamily};
use sbf_workloads::{SlidingWindowStream, StreamEvent, ZipfWorkload};
use spectral_bloom::{
    CompressedCounters, CounterStore, MsSbf, MultisetSketch, PlainCounters, RmSbf, SketchReader,
};

#[test]
fn compressed_rm_sliding_window() {
    // The full §2.2 sliding-window scenario on the §4 storage: Recurring
    // Minimum over String-Array-Index counters, explicit deletions.
    let workload = ZipfWorkload::generate(500, 20_000, 1.0, 3);
    let window = 4_000;
    let stream = SlidingWindowStream::from_zipf(&workload, window);
    let primary = MixFamily::new(2500, 5, 9);
    let secondary = MixFamily::new(1250, 5, 10);
    let marker = MixFamily::new(2500, 5, 11);
    let mut rm: RmSbf<MixFamily, CompressedCounters> =
        RmSbf::from_families(primary, secondary).with_marker(marker);
    for &e in &stream.events {
        match e {
            StreamEvent::Insert(x) => rm.insert(&x),
            StreamEvent::Delete(x) => rm.remove(&x).expect("window leaver present"),
        }
    }
    assert_eq!(rm.total_count(), window as u64);
    // One-sided threshold queries over the window contents.
    let heavy: Vec<u64> = (0..500u64).filter(|k| rm.passes_threshold(k, 50)).collect();
    for (key, &f) in stream.truth.iter().enumerate() {
        if f >= 50 {
            assert!(
                heavy.contains(&(key as u64)),
                "missed heavy window key {key}"
            );
        }
    }
}

#[test]
fn distributed_union_over_the_wire() {
    // Two sites build SBFs with agreed parameters over disjoint partitions
    // of one logical relation; uniting the decoded counters answers
    // queries over the whole (§2.2 "Distributed processing").
    let fam = MixFamily::new(4096, 5, 21);
    let mut site_a: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam.clone());
    let mut site_b: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam.clone());
    for key in 0u64..300 {
        site_a.insert_by(&key, 2);
    }
    for key in 200u64..500 {
        site_b.insert_by(&key, 3);
    }
    // Ship site B's counters as a message.
    let frame = wire::encode_counters((0..4096).map(|i| site_b.core().store().get(i)));
    let decoded = wire::decode_counters(&frame).expect("valid frame");
    let mut remote: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam);
    for (i, &c) in decoded.iter().enumerate() {
        remote.core_mut().store_mut().set(i, c);
    }
    site_a.union_assign(&remote);
    // Keys in both partitions now count 5; single-partition keys 2 or 3.
    assert!(site_a.estimate(&250u64) >= 5);
    assert!(site_a.estimate(&100u64) >= 2);
    assert!(site_a.estimate(&450u64) >= 3);
    assert_eq!(site_a.estimate(&9999u64), 0);
}

#[test]
fn multiply_after_wire_roundtrip_models_the_join() {
    let fam = MixFamily::new(8192, 5, 33);
    let mut r: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam.clone());
    let mut s: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam.clone());
    for key in 0u64..200 {
        r.insert(&key);
    }
    for key in 100u64..300 {
        s.insert_by(&key, 4);
    }
    let frame = wire::encode_counters((0..8192).map(|i| s.core().store().get(i)));
    let decoded = wire::decode_counters(&frame).expect("valid frame");
    let mut s_remote: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam);
    for (i, &c) in decoded.iter().enumerate() {
        s_remote.core_mut().store_mut().set(i, c);
    }
    r.multiply_assign(&s_remote);
    // Intersection keys: 1·4 = 4; R-only and S-only keys: 0 (w.h.p.).
    for key in 100u64..200 {
        assert!(r.estimate(&key) >= 4, "join key {key}");
    }
    let leaked = (0u64..100).filter(|k| r.estimate(k) > 0).count()
        + (200u64..300).filter(|k| r.estimate(k) > 0).count();
    assert!(leaked <= 4, "{leaked} non-join keys survived the multiply");
}

#[test]
fn blocked_family_confines_lookups_and_keeps_accuracy() {
    // §2.2 external-memory SBF: same total size, hashing confined to one
    // block per key. Accuracy degrades only marginally for large blocks.
    let n_keys = 800u64;
    let flat = MixFamily::new(8192, 5, 7);
    let blocked = BlockedFamily::new(MixFamily::new(512, 5, 7), 16, 7);
    assert_eq!(blocked.m(), 8192);

    let mut sbf_flat: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(flat);
    let mut sbf_blocked: MsSbf<BlockedFamily<MixFamily>, PlainCounters> =
        MsSbf::from_family(blocked.clone());
    for key in 0..n_keys {
        sbf_flat.insert_by(&key, 3);
        sbf_blocked.insert_by(&key, 3);
    }
    let err = |est: u64| est.saturating_sub(3);
    let flat_err: u64 = (0..n_keys).map(|k| err(sbf_flat.estimate(&k))).sum();
    let blocked_err: u64 = (0..n_keys).map(|k| err(sbf_blocked.estimate(&k))).sum();
    // The paper: "for large enough segments, the difference is negligible".
    assert!(
        blocked_err <= flat_err + n_keys / 10,
        "blocked {blocked_err} vs flat {flat_err}"
    );
    // And every key's probes stay within one 512-counter block.
    for key in 0..n_keys {
        let idxs = blocked.indexes(&key);
        let block = idxs[0] / 512;
        assert!(idxs.iter().all(|&i| i / 512 == block));
    }
}

#[test]
fn compressed_store_saves_space_under_real_load() {
    let workload = ZipfWorkload::generate(2_000, 50_000, 0.8, 5);
    let fam = MixFamily::new(14_000, 5, 13);
    let mut plain: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(fam.clone());
    let mut packed: MsSbf<MixFamily, CompressedCounters> = MsSbf::from_family(fam);
    for &x in &workload.stream {
        plain.insert(&x);
        packed.insert(&x);
    }
    for key in (0u64..2000).step_by(37) {
        assert_eq!(
            plain.estimate(&key),
            packed.estimate(&key),
            "estimates must agree"
        );
    }
    assert!(
        packed.storage_bits() * 2 < plain.storage_bits(),
        "compressed {} vs plain {}",
        packed.storage_bits(),
        plain.storage_bits()
    );
}
