//! Concept drift through a sliding window: the scenario the paper's
//! sliding-window machinery (§2.2, Figure 9) exists for, end to end —
//! heavy hitters change over time and the window-restricted SBF tracks the
//! *current* ones while the whole-stream filter stays stuck on history.

use sbf_workloads::DriftStream;
use spectral_bloom::{
    ad_hoc_iceberg, MsSbf, MultisetSketch, RmSbf, SketchReader, SlidingWindowSbf,
};

#[test]
fn windowed_sbf_tracks_drifting_heavy_hitters() {
    let n = 500;
    let drift = DriftStream::generate(n, 50_000, 1.2, 12_500, 10_000, 7);

    // Whole-stream filter vs window-restricted filter, same space.
    let mut whole = MsSbf::new(6_000, 5, 1);
    let mut windowed = SlidingWindowSbf::new(RmSbf::new(6_000, 5, 1), drift.window);
    for &x in &drift.stream {
        whole.insert(&x);
        windowed.push(&x);
    }

    // Current (final-window) heavy hitters.
    let threshold = 300u64;
    let current_heavy: Vec<u64> = (0..n as u64)
        .filter(|&k| drift.window_truth[k as usize] >= threshold)
        .collect();
    assert!(
        !current_heavy.is_empty(),
        "drift stream must have heavy keys"
    );

    // The windowed filter reports all of them (one-sided within the window).
    for &key in &current_heavy {
        assert!(
            windowed.estimate(&key) >= threshold,
            "windowed filter missed current heavy key {key}"
        );
    }

    // The whole-stream filter over-reports retired heavy hitters: keys hot
    // in the first phase but cold in the window.
    let mut first_phase = vec![0u64; n];
    for &x in &drift.stream[..12_500] {
        first_phase[x as usize] += 1;
    }
    let retired: Vec<u64> = (0..n as u64)
        .filter(|&k| first_phase[k as usize] >= 500 && drift.window_truth[k as usize] < 100)
        .collect();
    assert!(!retired.is_empty(), "rotation must retire some heavy keys");
    for &key in &retired {
        assert!(
            whole.estimate(&key) >= 500,
            "whole-stream filter forgot history for {key}?"
        );
        assert!(
            windowed.estimate(&key) < 300,
            "windowed filter still reports retired key {key} as heavy"
        );
    }

    // Ad-hoc iceberg over the windowed sketch has full recall on the
    // window truth.
    let reported = ad_hoc_iceberg(windowed.sketch(), 0..n as u64, threshold);
    for &key in &current_heavy {
        assert!(reported.contains(&key));
    }
}
