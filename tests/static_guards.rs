//! Tier-1 static-analysis wall (ISSUE 4, rebuilt on `sbf-lint` in ISSUE 9).
//!
//! Originally this file walked the source tree with line-oriented
//! substring scans. Those guards are now token-level passes in
//! `crates/lint`, which lexes every file (so string literals and
//! comments can't trip or dodge a guard), resolves `use` renames, and
//! understands the `--cfg sbf_modelcheck` source views:
//!
//! * guard (a) — no atomic/`Mutex`/`RwLock` bypasses a `sync.rs`
//!   facade — is the `sync-facade` pass;
//! * guard (b) — `ShardedSketch` version stamps are never `Relaxed` —
//!   is carried by the `ordering-audit` manifest
//!   (`crates/lint/ordering_audit.toml`): the stamp sites are blessed
//!   only as `(sharded.rs, insert_by/…, Release)` writer and
//!   `(sharded.rs, snapshot_cached/…, Acquire)` reader keys, so a
//!   `Relaxed` stamp shows up as an unlisted site and fails here;
//! * the facade-existence check is the `sync-facade` pass's
//!   facade-shape validation.
//!
//! This test just runs every pass over both source views and requires
//! silence; `cargo run -p sbf-lint` gives the same diagnostics with
//! file:line:col positions for fixing.

use sbf_lint::run_all;
use std::path::Path;

fn assert_clean(modelcheck: bool) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = run_all(root, modelcheck).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "sbf-lint found {} violation(s) in the {} view \
         (run `cargo run -p sbf-lint` for details):\n{}",
        diags.len(),
        if modelcheck {
            "sbf_modelcheck"
        } else {
            "normal"
        },
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every `sbf-lint` pass is silent on the normal source view.
#[test]
fn lint_wall_is_clean_on_the_normal_view() {
    assert_clean(false);
}

/// … and on the `--cfg sbf_modelcheck` view the model checker compiles.
#[test]
fn lint_wall_is_clean_on_the_modelcheck_view() {
    assert_clean(true);
}
