//! Source-scanning guards for the concurrency layer (ISSUE 4).
//!
//! The lock-free layer's verifiability rests on one structural fact: every
//! atomic, mutex and rwlock in the workspace is imported through a `sync.rs`
//! facade that `RUSTFLAGS='--cfg sbf_modelcheck'` swaps for the model
//! checker's types. A direct `std::sync::atomic`/`Mutex`/`RwLock` import
//! anywhere else would compile and pass every test while silently escaping
//! the exhaustive interleaving checks — so these tests fail the build on the
//! *source text*, where the bypass is visible.
//!
//! Guard (b) pins the one ordering bug class this repo has already shipped
//! (`ShardedSketch` stamp reads at `Relaxed`, fixed in this PR): any line
//! touching the `versions`/snapshot-stamp machinery may not name
//! `Ordering::Relaxed` again.

use std::fs;
use std::path::{Path, PathBuf};

/// Walks `dir`, collecting every `.rs` file.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every library source file in the workspace (`crates/*/src` and `src`).
fn workspace_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_sources(&root.join("src"), &mut files);
    if let Ok(crates) = fs::read_dir(root.join("crates")) {
        for krate in crates.flatten() {
            rust_sources(&krate.path().join("src"), &mut files);
        }
    }
    assert!(
        files.len() > 20,
        "source walk found only {} files — wrong directory?",
        files.len()
    );
    files
}

/// `true` for files allowed to name `std::sync` synchronization primitives:
/// the facades themselves, and the model checker that implements the
/// replacement types.
fn is_facade_or_checker(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    // `crates/lint` is the token-level reimplementation of this guard; its
    // tests quote `std::sync` paths inside string literals, which a line
    // scanner cannot tell apart from code.
    p.ends_with("/sync.rs")
        || p.contains("crates/modelcheck/src/")
        || p.contains("crates/lint/src/")
}

/// Strips line comments so a guard can't be tripped (or dodged) by prose.
fn code_of(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    line.split("//").next().unwrap_or(line)
}

/// (a) No atomic/lock import bypasses the `sync.rs` facade: production code
/// must see the model types under `--cfg sbf_modelcheck`, and a direct
/// `std::sync` path would silently opt out of model checking.
#[test]
fn atomics_and_locks_go_through_the_sync_facade() {
    // Checked as "names `std::sync` and one of these on the same line", so
    // braced imports (`use std::sync::{Arc, Mutex}`) can't dodge the guard.
    const FORBIDDEN: [&str; 3] = ["atomic", "Mutex", "RwLock"];
    let mut offenders = Vec::new();
    for path in workspace_sources() {
        if is_facade_or_checker(&path) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("source file readable");
        for (lineno, line) in text.lines().enumerate() {
            let code = code_of(line);
            if code.contains("std::sync") && FORBIDDEN.iter().any(|pat| code.contains(pat)) {
                offenders.push(format!(
                    "{}:{}: {}",
                    path.display(),
                    lineno + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "direct std::sync primitive use outside the sync.rs facades \
         (import from the crate's `sync` module instead so the model \
         checker sees it):\n{}",
        offenders.join("\n")
    );
}

/// (b) The `ShardedSketch` snapshot version-stamp protocol is
/// Release/Acquire end to end. A `Relaxed` stamp operation type-checks,
/// passes every runtime test on x86, and still breaks the
/// stale-snapshot guarantee on weakly-ordered hardware — exactly the
/// regression this PR fixed in `publish_metrics` — so the source itself is
/// the cheapest place to catch it.
#[test]
fn version_stamps_are_never_relaxed() {
    const STAMP_MARKERS: [&str; 3] = ["versions", "version_stamp", "stamp"];
    let mut offenders = Vec::new();
    for path in workspace_sources() {
        if is_facade_or_checker(&path) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("source file readable");
        for (lineno, line) in text.lines().enumerate() {
            let code = code_of(line);
            if code.contains("Ordering::Relaxed") && STAMP_MARKERS.iter().any(|m| code.contains(m))
            {
                offenders.push(format!(
                    "{}:{}: {}",
                    path.display(),
                    lineno + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "version-stamp fields must use Release/Acquire, never Relaxed \
         (see DESIGN.md \"Memory-ordering audit\"):\n{}",
        offenders.join("\n")
    );
}

/// The guards themselves must be looking at real code: the facade files
/// they exempt exist and bind `std::sync` under the normal cfg.
#[test]
fn guarded_facades_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for facade in [
        "crates/core/src/sync.rs",
        "crates/telemetry/src/sync.rs",
        "crates/server/src/sync.rs",
    ] {
        let text = fs::read_to_string(root.join(facade))
            .unwrap_or_else(|e| panic!("{facade} missing: {e}"));
        assert!(
            text.contains("std::sync") && text.contains("sbf_modelcheck"),
            "{facade} no longer switches between std::sync and the model types"
        );
    }
}
