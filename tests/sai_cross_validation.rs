//! Cross-validation of every counter-array representation in `sbf-sai`:
//! the static String-Array Index, the select-reduction reference (§4.2),
//! the compact scan-decoded alternative (§4.5), and the dynamic slack
//! array (§4.4) must all agree with a plain `Vec<u64>` model and with each
//! other on identical data.

use proptest::prelude::*;
use sbf_sai::{CompactCounterArray, DynamicCounterArray, SelectCounterArray, StaticCounterArray};

fn check_all_agree(counters: &[u64]) {
    let stat = StaticCounterArray::from_counters(counters);
    let select = SelectCounterArray::from_counters(counters);
    let compact = CompactCounterArray::from_counters(counters);
    let dynamic = DynamicCounterArray::from_counters(counters);
    for (i, &c) in counters.iter().enumerate() {
        assert_eq!(stat.get(i), c, "static at {i}");
        assert_eq!(select.get(i), c, "select at {i}");
        assert_eq!(compact.get(i), c, "compact at {i}");
        assert_eq!(dynamic.get(i), c, "dynamic at {i}");
    }
}

#[test]
fn agree_on_typical_sbf_counters() {
    // A realistic SBF counter profile: mostly tiny, a few huge.
    let counters: Vec<u64> = (0..5000)
        .map(|i| match i % 100 {
            0 => 1 << 30,
            1..=4 => 1000 + i as u64,
            5..=30 => 2,
            _ => u64::from(i % 3 == 0),
        })
        .collect();
    check_all_agree(&counters);
}

#[test]
fn agree_on_boundary_values() {
    let counters = vec![
        0,
        1,
        2,
        3,
        u64::MAX >> 1,
        (1 << 32) - 1,
        1 << 32,
        0,
        0,
        u64::from(u32::MAX),
    ];
    check_all_agree(&counters);
}

#[test]
fn dynamic_array_converges_to_static_after_mutation() {
    // Drive the dynamic array through growth + shrink churn, then freeze
    // its values into the static representations.
    let mut dynamic = DynamicCounterArray::new(2000);
    let mut x = 77u64;
    for step in 0..30_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (x >> 33) as usize % 2000;
        if step % 5 == 4 {
            let v = dynamic.get(i);
            if v > 0 {
                dynamic.decrement(i, 1 + x % v).expect("bounded");
            }
        } else {
            dynamic.increment(i, 1 + x % 100);
        }
    }
    let frozen = dynamic.to_vec();
    check_all_agree(&frozen);
    // The dynamic array has undergone real maintenance.
    let stats = dynamic.stats();
    assert!(stats.expansions > 0, "expected growth events: {stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_representations_agree_prop(
        counters in prop::collection::vec(
            prop_oneof![
                5 => 0u64..4,
                3 => 4u64..1000,
                1 => 1000u64..(1 << 40),
            ],
            0..600,
        )
    ) {
        check_all_agree(&counters);
    }

    #[test]
    fn static_matches_select_reference_on_adversarial_lengths(
        counters in prop::collection::vec(prop_oneof![
            1 => Just(0u64),
            1 => Just(u64::MAX - 1),
            2 => 0u64..(1 << 20),
        ], 1..200)
    ) {
        let stat = StaticCounterArray::from_counters(&counters);
        let select = SelectCounterArray::from_counters(&counters);
        for i in 0..counters.len() {
            prop_assert_eq!(stat.get(i), select.get(i));
        }
    }
}
