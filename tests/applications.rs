//! Application-level integration: the §5 use cases running across crates.

use sbf_db::{bifocal, bloomjoin, ship_all_join, spectral_bloomjoin, JoinPlan, Relation};
use sbf_hash::SplitMix64;
use sbf_workloads::forest;
use spectral_bloom::aggregate::aggregate_over_keys;
use spectral_bloom::{MsSbf, MultisetSketch, RangeTreeSketch, RmSbf};

#[test]
fn aggregate_index_over_forest_attribute() {
    // §5.1: the SBF as an aggregate index over a real-shaped attribute.
    let column = forest::synthetic_elevation_sized(80_000, 500, 1);
    let truth = forest::frequencies(&column, 500);
    let mut sbf = MsSbf::new(4_000, 5, 1);
    for &v in &column {
        sbf.insert(&v);
    }
    let agg = aggregate_over_keys(&sbf, 0..500u64);
    let true_sum: u64 = truth.iter().sum();
    assert!(agg.sum >= true_sum, "sum is one-sided");
    let overshoot = (agg.sum - true_sum) as f64 / true_sum as f64;
    assert!(overshoot < 0.05, "aggregate overshoot {overshoot}");
    let true_max = *truth.iter().max().expect("non-empty");
    assert!(agg.max >= true_max);
}

#[test]
fn range_tree_over_rm_supports_window_maintenance() {
    // §5.5 + §2.2: range queries stay correct as values are deleted.
    let mut tree = RangeTreeSketch::new(RmSbf::new(1 << 16, 5, 2), 0, 1024);
    let mut rng = SplitMix64::new(3);
    let mut window: Vec<u64> = Vec::new();
    let mut truth = vec![0u64; 1024];
    for t in 0..5000 {
        let v = rng.next_below(1024);
        tree.insert(v);
        window.push(v);
        truth[v as usize] += 1;
        if t >= 2000 {
            let leaver = window[t - 2000];
            tree.remove_by(leaver, 1).expect("leaver present");
            truth[leaver as usize] -= 1;
        }
    }
    let live: u64 = truth.iter().sum();
    assert_eq!(live, 2000);
    let est = tree.count_range(0, 1024);
    assert!(est.estimate >= live);
    assert!(
        est.estimate <= live + live / 10,
        "gross over-estimate {}",
        est.estimate
    );
    // A sub-range.
    let want: u64 = truth[100..400].iter().sum();
    let got = tree.count_range(100, 400);
    assert!(got.estimate >= want);
}

#[test]
fn join_strategies_on_zipfian_relations() {
    // Heavier-tailed S side, as in warehouse fact tables.
    let r = Relation::from_keys("dim", &(0..1500u64).collect::<Vec<_>>(), 48);
    let mut s_keys = Vec::new();
    let mut rng = SplitMix64::new(4);
    for _ in 0..30_000 {
        // Zipf-flavored: small keys much more frequent.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let key = ((u * u) * 3000.0) as u64;
        s_keys.push(key);
    }
    let s = Relation::from_keys("fact", &s_keys, 48);
    let plan = JoinPlan::sized_for(3000, 5);
    let exact = ship_all_join(&r, &s, &plan);
    let bj = bloomjoin(&r, &s, &plan);
    let sj = spectral_bloomjoin(&r, &s, &plan);
    assert_eq!(exact.groups, bj.groups);
    for (key, &count) in &exact.groups {
        assert!(sj.groups.get(key).copied().unwrap_or(0) >= count);
    }
    assert!(sj.network.bytes < exact.network.bytes / 10);
}

#[test]
fn bifocal_uses_less_data_than_exact() {
    let r = Relation::synthetic_uniform("r", 20_000, 3_000, 24, 5);
    let s = Relation::synthetic_uniform("s", 20_000, 3_000, 24, 6);
    let exact = bifocal::exact_join_size(&r, &s) as f64;
    let cfg = bifocal::BifocalConfig::sized_for(&r, &s, 7);
    let (est, _) = bifocal::bifocal_estimate(&r, &s, &cfg);
    let rel = (est - exact).abs() / exact;
    assert!(
        rel < 0.35,
        "relative error {rel} (est {est} vs exact {exact})"
    );
}
