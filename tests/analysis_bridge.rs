//! Theory-practice bridges: the closed-form analysis crate against the
//! measured behaviour of the real filters on the same frequency profiles.

use sbf_analysis as analysis;
use sbf_workloads::ZipfWorkload;
use spectral_bloom::{ad_hoc_iceberg, bloom_error_rate, MsSbf, MultisetSketch};

/// The §5.2 iceberg error formula, fed the *empirical* frequency profile,
/// must track the measured false-positive rate of a real filter at the
/// same threshold.
#[test]
fn iceberg_formula_tracks_measured_false_positives() {
    let n = 1000usize;
    let k = 5usize;
    let m = n * k; // γ = 1
    let mut predicted_sum = 0.0;
    let mut measured_sum = 0.0;
    for seed in 0..5u64 {
        let w = ZipfWorkload::generate(n, 100_000, 0.8, seed);
        let max_f = *w.truth.iter().max().expect("non-empty");
        let t = (max_f / 20).max(2); // 5% of max: inside the active regime
        let predicted = analysis::iceberg_error_from_frequencies(&w.truth, m, k, t);
        let mut sbf = MsSbf::new(m, k, seed);
        for &x in &w.stream {
            sbf.insert(&x);
        }
        let reported = ad_hoc_iceberg(&sbf, 0..n as u64, t);
        let fp = reported
            .iter()
            .filter(|&&key| w.truth[key as usize] < t)
            .count();
        predicted_sum += predicted;
        measured_sum += fp as f64 / n as f64;
    }
    let predicted = predicted_sum / 5.0;
    let measured = measured_sum / 5.0;
    // Same order of magnitude, and both far below the raw Bloom error.
    let eb = bloom_error_rate(n, m, k);
    assert!(
        measured < eb,
        "iceberg FP rate {measured} should undercut E_b {eb}"
    );
    assert!(
        measured <= predicted * 4.0 + 0.002,
        "measured {measured} far above predicted {predicted}"
    );
    assert!(
        predicted <= measured * 6.0 + 0.002,
        "predicted {predicted} far above measured {measured}"
    );
}

/// The Bloom-error formula against the measured membership false-positive
/// rate of a Bloom filter built on a real workload.
#[test]
fn bloom_formula_tracks_measured_fp_rate() {
    for (n, m, k) in [
        (500usize, 4096usize, 5usize),
        (1000, 5000, 5),
        (2000, 8192, 4),
    ] {
        let mut bf = spectral_bloom::BloomFilter::new(m, k, 3);
        for key in 0..n as u64 {
            bf.insert(&key);
        }
        let trials = 20_000u64;
        let fp = (1_000_000..1_000_000 + trials)
            .filter(|key| bf.contains(key))
            .count();
        let measured = fp as f64 / trials as f64;
        let theory = analysis::bloom_error(n, m, k);
        assert!(
            (measured - theory).abs() < theory.max(0.005),
            "n={n} m={m} k={k}: measured {measured:.4} vs theory {theory:.4}"
        );
    }
}
