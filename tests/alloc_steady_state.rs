//! Steady-state allocation guard for the batched hot path (ISSUE 3,
//! satellite 2): once warm, `insert_batch` and `estimate_batch_into` with a
//! reused output buffer must allocate **nothing** — the sharded wrapper
//! reuses one scratch partition buffer, and the pipelined cores keep their
//! index rings on the stack.
//!
//! This file is its own integration-test binary because it installs a
//! counting `#[global_allocator]`; it holds a single `#[test]` so no other
//! test's allocations can race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spectral_bloom::{MsSbf, MultisetSketch, ShardedSketch, SketchReader};

/// Wraps the system allocator, counting every allocation (and
/// reallocation — growing a scratch buffer mid-batch must show up too).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` (which upholds the `GlobalAlloc`
// contract); the only addition is a relaxed counter bump with no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Returns the fewest allocations observed across a few runs of `f`.
///
/// The counter is process-global, and the libtest harness's main thread
/// can allocate while it waits on the test thread, so a single
/// measurement can be polluted by scheduling. The closure's own
/// allocation count is deterministic (same warm state every run), so the
/// minimum over a few attempts is exactly that count.
fn allocs_during(mut f: impl FnMut()) -> u64 {
    (0..5)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap_or(0)
}

#[test]
fn batched_hot_path_is_allocation_free_once_warm() {
    let keys: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e37) % 600).collect();

    // Plain MS sketch: batch insert is stack-only; batch estimate into a
    // reused, pre-grown buffer must not touch the allocator either.
    let mut ms = MsSbf::new(1 << 14, 4, 42);
    let mut out = Vec::new();
    ms.insert_batch(&keys);
    ms.estimate_batch_into(&keys, &mut out);

    let n = allocs_during(|| ms.insert_batch(&keys));
    assert_eq!(n, 0, "warm MsSbf::insert_batch allocated {n} times");
    let n = allocs_during(|| ms.estimate_batch_into(&keys, &mut out));
    assert_eq!(n, 0, "warm MsSbf::estimate_batch_into allocated {n} times");

    // Sharded wrapper: the first batch may grow the shared partition
    // scratch; every batch after that must reuse it.
    let sharded = ShardedSketch::with_shards(4, |i| MsSbf::new(1 << 12, 4, 42 ^ i as u64));
    sharded.insert_batch(&keys);
    sharded.estimate_batch_into(&keys, &mut out);

    let n = allocs_during(|| sharded.insert_batch(&keys));
    assert_eq!(n, 0, "warm ShardedSketch::insert_batch allocated {n} times");
    let n = allocs_during(|| sharded.estimate_batch_into(&keys, &mut out));
    assert_eq!(
        n, 0,
        "warm ShardedSketch::estimate_batch_into allocated {n} times"
    );
}
