//! §5 counter-addition union between two real processes over TCP.
//!
//! The paper's distributed story (§5): each site maintains its own SBF
//! over local traffic, and a union site combines them by *adding
//! counters* — for minimum-selection sketches the sum upper-bounds every
//! key's combined frequency, so the merged filter stays one-sided.
//!
//! This example makes that story literal. It re-executes itself as a
//! child process running a real `sbfd` (site A), then the parent plays
//! two roles against it over loopback TCP:
//!
//! * **site A's ingest client** — streams A's event log through batched
//!   INSERT frames, so A's filter lives inside the daemon;
//! * **site B** — builds its filter locally, serialises it into the
//!   Elias-δ wire envelope, and ships it with one MERGE frame.
//!
//! The parent then verifies, over the socket, that every estimate
//! upper-bounds the *combined* true frequency, pulls a SNAPSHOT and
//! checks its counter mass equals both sites' mass, and finally asks the
//! daemon to drain.
//!
//! Run with: `cargo run --example remote_union`

use std::io::BufRead;
use std::process::{Command, Stdio};

use sbf_db::wire::{FilterEnvelope, FilterKind};
use sbf_server::{SbfClient, SbfServer, ServerConfig};
use sbf_workloads::ZipfWorkload;
use spectral_bloom::{CounterStore, MsSbf, MultisetSketch};

// Both processes share these: MERGE requires identical geometry, and the
// server answers `Incompatible` otherwise.
const M: usize = 1 << 16;
const K: usize = 5;
const SEED: u64 = 42;

const CHILD_FLAG: &str = "--site-a-server";

/// Child role: a real daemon on an ephemeral port. Prints the bound
/// address on the first stdout line (the parent's service discovery),
/// then serves until a SHUTDOWN frame drains it.
fn run_site_a_server() {
    let config = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .m(M)
        .k(K)
        .seed(SEED)
        .build()
        .expect("valid site A config");
    let server = SbfServer::bind(config).expect("bind site A server");
    println!("{}", server.local_addr().expect("local addr"));
    server.run().expect("serve site A");
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some(CHILD_FLAG) {
        run_site_a_server();
        return;
    }

    // Re-execute this same binary as the site-A daemon.
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .arg(CHILD_FLAG)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn site A process");
    let mut addr = String::new();
    std::io::BufReader::new(child.stdout.take().expect("child stdout"))
        .read_line(&mut addr)
        .expect("read site A address");
    let addr = addr.trim();
    println!("site A daemon up in pid {} at {addr}", child.id());

    // Site A's traffic: a skewed event log, ingested over the wire in
    // batched frames. Site B's overlaps on the hot keys (ids 0..256) and
    // adds its own tail (ids 10_000..), so the union exercises both
    // counter addition on shared keys and disjoint mass.
    let site_a = ZipfWorkload::generate(4_096, 60_000, 1.07, 0xA11CE);
    let site_b_keys: Vec<u64> = ZipfWorkload::generate(256, 20_000, 1.2, 0xB0B)
        .stream
        .into_iter()
        .chain((0..20_000u64).map(|i| 10_000 + i % 2_048))
        .collect();

    let mut client = SbfClient::builder(addr)
        .connect()
        .expect("connect to site A");
    let frames_a: Vec<Vec<u8>> = site_a
        .stream
        .iter()
        .map(|k| k.to_le_bytes().to_vec())
        .collect();
    for chunk in frames_a.chunks(2_048) {
        client.insert_batch(chunk).expect("ingest site A batch");
    }
    println!("site A: streamed {} events over TCP", frames_a.len());

    // Snapshot site A alone first: §5 union is *counter addition*, so the
    // post-merge snapshot's mass must be exactly this plus site B's mass.
    let mass_a: u64 = FilterEnvelope::decode(&client.snapshot().expect("snapshot site A"))
        .expect("decode site A snapshot")
        .counters
        .iter()
        .sum();

    // Site B builds locally, then ships its whole filter as one envelope.
    let mut site_b = MsSbf::new(M, K, SEED);
    for key in &site_b_keys {
        site_b.insert_by(&key.to_le_bytes().as_slice(), 1);
    }
    let store = site_b.core().store();
    let counters_b: Vec<u64> = (0..M).map(|i| store.get(i)).collect();
    let mass_b: u64 = counters_b.iter().sum();
    let envelope = FilterEnvelope {
        kind: FilterKind::MinimumSelection,
        k: K as u32,
        seed: SEED,
        counters: counters_b,
    }
    .encode();
    client.merge(&envelope).expect("merge site B");
    println!(
        "site B: {} events merged via one {}-byte envelope",
        site_b_keys.len(),
        envelope.len()
    );

    // Combined ground truth, then the one-sided check over the socket.
    let mut truth = std::collections::HashMap::new();
    for key in site_a.stream.iter().chain(&site_b_keys) {
        *truth.entry(*key).or_insert(0u64) += 1;
    }
    let distinct: Vec<Vec<u8>> = truth.keys().map(|k| k.to_le_bytes().to_vec()).collect();
    let estimates = client.estimate_batch(&distinct).expect("estimate union");
    let mut overestimated = 0usize;
    for (key_bytes, est) in distinct.iter().zip(&estimates) {
        let key = u64::from_le_bytes(key_bytes[..8].try_into().expect("8-byte key"));
        let exact = truth[&key];
        assert!(
            *est >= exact,
            "union undercounted key {key}: estimate {est} < exact {exact}"
        );
        if *est > exact {
            overestimated += 1;
        }
    }
    println!(
        "union is one-sided over {} distinct keys ({overestimated} overestimates)",
        distinct.len()
    );

    // Counter addition is exact on mass: the union's snapshot must weigh
    // precisely what the two sites weighed apart.
    let snapshot = FilterEnvelope::decode(&client.snapshot().expect("snapshot"))
        .expect("decode snapshot envelope");
    let mass: u64 = snapshot.counters.iter().sum();
    assert_eq!(
        mass,
        mass_a + mass_b,
        "union snapshot mass must be the sum of both sites' masses"
    );
    println!("snapshot counter mass {mass} = site A ({mass_a}) + site B ({mass_b})");

    client.shutdown().expect("shutdown site A");
    let status = child.wait().expect("wait for site A");
    assert!(status.success(), "site A daemon exited with {status}");
    println!("site A drained cleanly — two processes, one spectral union");
}
