//! Distributed cache summaries: the Summary-Cache and attenuated-filter
//! schemes the paper's introduction surveys (§1.1.1), built on this
//! workspace's filters.
//!
//! Run with: `cargo run --example cache_cluster`

use sbf_db::{AttenuatedFilter, SummaryCacheCluster};
use sbf_hash::SplitMix64;
use std::collections::HashSet;

fn main() {
    // --- Flat Summary Cache: 6 proxies, ~800 objects each ----------------
    let mut cluster = SummaryCacheCluster::new(6, 1 << 14, 5, 2026);
    let mut rng = SplitMix64::new(1);
    for obj in 0u64..4800 {
        cluster.node_mut(rng.next_below(6) as usize).store(obj);
    }
    cluster.exchange_summaries();
    println!(
        "cluster of 6 proxies built; summaries broadcast cost {} bytes total",
        cluster.summary_bytes
    );

    // Node 0 resolves a mixed workload of present and absent objects.
    let mut found = 0;
    let mut probes = 0;
    for obj in (0u64..4800).step_by(7) {
        let out = cluster.lookup(0, obj);
        found += usize::from(out.found_at.is_some());
        probes += out.probes;
    }
    println!("present objects: {found} found with {probes} remote probes (≈1 probe each)");

    let mut wasted = 0;
    for obj in 1_000_000u64..1_001_000 {
        wasted += cluster.lookup(0, obj).probes;
    }
    println!("absent objects: {wasted} wasted probes across 1000 misses (summary false positives)");

    // Eviction drift: summaries go stale until the next exchange.
    cluster.node_mut(3).evict(3);
    let stale = cluster.lookup(0, 3);
    println!(
        "\nafter evicting object 3 from node 3 (no re-publish): {} probes, found: {:?}",
        stale.probes, stale.found_at
    );
    cluster.exchange_summaries();
    let fresh = cluster.lookup(0, 3);
    println!(
        "after the publish cycle: {} probes (claim withdrawn)",
        fresh.probes
    );

    // --- Attenuated filters: route toward the nearest copy ---------------
    // A chain of caches; the filter at the origin summarizes each hop.
    let hop0: HashSet<u64> = HashSet::new();
    let hop1: HashSet<u64> = (0..50).collect();
    let hop2: HashSet<u64> = (40..120).collect();
    let hop3: HashSet<u64> = (100..400).collect();
    let filter = AttenuatedFilter::build(&[&hop0, &hop1, &hop2, &hop3], 4096, 5, 7);
    println!("\nattenuated filter over a 4-hop chain:");
    for object in [10u64, 45, 110, 399, 9999] {
        match filter.nearest_claim(object) {
            Some(hops) => println!("  object {object:>4}: nearest copy claimed {hops} hop(s) away"),
            None => println!("  object {object:>4}: not reachable"),
        }
    }
}
