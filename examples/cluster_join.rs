//! A 3-process `sbfd` cluster: scatter-gather, wire Bloomjoins, failover.
//!
//! This example is the distributed story end-to-end over real sockets. It
//! re-executes itself three times to build a loopback cluster:
//!
//! * **node A** — primary for half the key space, replicating every
//!   acknowledged mutation to C (`--replicate-to` semantics),
//! * **node B** — primary for the other half, standalone,
//! * **node C** — A's replica, an ordinary `sbfd` bootstrapped over MERGE.
//!
//! The parent then drives three phases through [`ClusterClient`]:
//!
//! 1. **Wire Bloomjoin (§5.3)**: relation R is ingested into A, S into B,
//!    and one JOIN_PLAN frame makes A fetch B's filter envelope, multiply
//!    counter-wise, and answer joined-frequency estimates — compared
//!    against the in-process `spectral_bloomjoin_verified` on the same
//!    relations.
//! 2. **Scatter-gather (§5)**: a batched multiset ingest hash-partitioned
//!    across both primaries, with the one-sided `f̂ ≥ f` check and a
//!    cluster-wide snapshot union.
//! 3. **Failover**: node A is SIGKILLed mid-flight; reads fail over to C
//!    and stay one-sided (C holds a superset of everything A ever
//!    acknowledged), while mutations to the dead node are refused.
//!
//! Run with: `cargo run --example cluster_join`

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sbf_db::{spectral_bloomjoin_verified, JoinPlan, Relation};
use sbf_server::{ClusterClient, ClusterTopology, NodeSpec, SbfClient, SbfServer, ServerConfig};

// Every member must agree on geometry; HELLO refuses anything else.
const M: usize = 1 << 16;
const K: usize = 5;
const SEED: u64 = 42;

const CHILD_FLAG: &str = "--cluster-node";

fn key_bytes(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

/// Child role: one `sbfd` on an ephemeral port, optionally replicating to
/// an existing member. Prints the bound address on the first stdout line
/// (the parent's service discovery), then serves until drained.
fn run_node(replicate_to: Option<String>) {
    let mut builder = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .m(M)
        .k(K)
        .seed(SEED);
    if let Some(addr) = replicate_to {
        builder = builder.replicate_to(addr);
    }
    let config = builder.build().expect("valid node config");
    let server = SbfServer::bind(config).expect("bind cluster node");
    println!("{}", server.local_addr().expect("local addr"));
    server.run().expect("serve cluster node");
}

fn spawn_node(replicate_to: Option<&str>) -> (Child, String) {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.arg(CHILD_FLAG);
    if let Some(addr) = replicate_to {
        cmd.arg(addr);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn cluster node");
    let mut addr = String::new();
    std::io::BufReader::new(child.stdout.take().expect("child stdout"))
        .read_line(&mut addr)
        .expect("read node address");
    (child, addr.trim().to_string())
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some(CHILD_FLAG) {
        run_node(std::env::args().nth(2));
        return;
    }

    // C first (A dials it), then B, then A replicating to C.
    let (mut c_child, c_addr) = spawn_node(None);
    let (mut b_child, b_addr) = spawn_node(None);
    let (a_child, a_addr) = spawn_node(Some(&c_addr));
    let mut a_child = a_child;
    println!("node A (primary)  {a_addr}  → replicates to C");
    println!("node B (primary)  {b_addr}");
    println!("node C (replica)  {c_addr}");

    // A answers Unavailable until its replication link to C is up
    // (semi-synchronous: no ack before the replica has the frame), so
    // probe until the first insert is acknowledged.
    let mut a_conn = SbfClient::builder(&a_addr as &str)
        .connect()
        .expect("connect node A");
    let deadline = Instant::now() + Duration::from_secs(10);
    while a_conn.insert(b"probe", 1).is_err() {
        assert!(
            Instant::now() < deadline,
            "replication link A→C never came up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("replication link A→C established\n");

    // ── Phase 1: cross-node spectral Bloomjoin (§5.3) ──────────────────
    // R (customers, multiplicity 1 + i%3) lives on A; S (orders,
    // multiplicity 1 + i%2) on B; the join groups are the 1500..4000
    // overlap with group size f_R·f_S.
    let mut r_keys = Vec::new();
    for i in 0u64..4_000 {
        for _ in 0..1 + i % 3 {
            r_keys.push(i);
        }
    }
    let mut s_keys = Vec::new();
    for i in 1_500u64..5_500 {
        for _ in 0..1 + i % 2 {
            s_keys.push(i);
        }
    }
    let threshold = 2u64;
    let mut b_conn = SbfClient::builder(&b_addr as &str)
        .connect()
        .expect("connect node B");
    for chunk in r_keys.chunks(2_048) {
        let batch: Vec<Vec<u8>> = chunk.iter().map(|&k| key_bytes(k)).collect();
        a_conn.insert_batch(&batch).expect("ingest R into node A");
    }
    for chunk in s_keys.chunks(2_048) {
        let batch: Vec<Vec<u8>> = chunk.iter().map(|&k| key_bytes(k)).collect();
        b_conn.insert_batch(&batch).expect("ingest S into node B");
    }
    println!(
        "R: {} rows into node A | S: {} rows into node B",
        r_keys.len(),
        s_keys.len()
    );

    let topology = ClusterTopology::new(
        vec![
            NodeSpec::replicated(a_addr.clone(), c_addr.clone()),
            NodeSpec::solo(b_addr.clone()),
        ],
        M,
        K,
        SEED,
    )
    .expect("non-empty topology");
    let mut cluster = ClusterClient::connect(topology).expect("connect cluster");
    cluster.ping_all().expect("ping all nodes");

    let candidates: Vec<u64> = (0u64..5_500).collect();
    let candidate_bytes: Vec<Vec<u8>> = candidates.iter().map(|&k| key_bytes(k)).collect();
    let wire = cluster
        .join(0, 1, threshold, &candidate_bytes)
        .expect("cross-node join");

    // The in-process reference on identical relations and geometry: the
    // paper's verified Bloomjoin, whose groups are exact.
    let r = Relation::from_keys("r", &r_keys, 64);
    let s = Relation::from_keys("s", &s_keys, 64);
    let plan = JoinPlan {
        m: M,
        k: K,
        seed: SEED,
        threshold: Some(threshold),
    };
    let verified = spectral_bloomjoin_verified(&r, &s, &plan);
    let mut overcounted = 0usize;
    let mut spurious = 0usize;
    for (key, &got) in candidates.iter().zip(&wire) {
        match verified.groups.get(key) {
            Some(&exact) => {
                assert!(
                    got >= exact,
                    "group {key}: wire join {got} under-counts exact {exact}"
                );
                if got > exact {
                    overcounted += 1;
                }
            }
            None if got > 0 => spurious += 1,
            None => {}
        }
    }
    println!(
        "wire join: all {} true groups present, one-sided ({overcounted} overcounted, \
         {spurious} spurious) — one filter envelope crossed the wire, not {} rows",
        verified.groups.len(),
        s_keys.len()
    );

    // ── Phase 2: scatter-gather ingest across the partitioned keyspace ─
    // A disjoint key namespace (ids 1M+) so the join relations above stay
    // interpretable; each key i carries multiplicity 1 + i%4.
    let mut truth = std::collections::HashMap::new();
    let mut stream = Vec::new();
    for i in 0u64..6_000 {
        let key = 1_000_000 + i;
        for _ in 0..1 + i % 4 {
            stream.push(key_bytes(key));
            *truth.entry(key).or_insert(0u64) += 1;
        }
    }
    for chunk in stream.chunks(2_048) {
        cluster.insert_batch(chunk).expect("scatter-gather ingest");
    }
    let distinct: Vec<Vec<u8>> = truth.keys().map(|&k| key_bytes(k)).collect();
    let estimates = cluster
        .estimate_batch(&distinct)
        .expect("scatter-gather estimate");
    for (kb, est) in distinct.iter().zip(&estimates) {
        let key = u64::from_le_bytes(kb[..8].try_into().expect("8-byte key"));
        assert!(
            *est >= truth[&key],
            "cluster undercounted key {key}: {est} < {}",
            truth[&key]
        );
    }
    let union = cluster.snapshot_union().expect("cluster snapshot union");
    let mass: u64 = union.counters.iter().sum();
    println!(
        "scatter-gather: {} events over {} keys, f̂ ≥ f on every key; \
         cluster union holds {mass} counter mass",
        stream.len(),
        truth.len()
    );

    // ── Phase 3: SIGKILL node A, fail reads over to its replica ────────
    a_child.kill().expect("SIGKILL node A");
    a_child.wait().expect("reap node A");
    println!("\nnode A killed (SIGKILL)");

    let survivors = cluster
        .estimate_batch(&distinct)
        .expect("estimates after failover");
    for (kb, est) in distinct.iter().zip(&survivors) {
        let key = u64::from_le_bytes(kb[..8].try_into().expect("8-byte key"));
        assert!(
            *est >= truth[&key],
            "failover undercounted key {key}: {est} < {}",
            truth[&key]
        );
    }
    assert!(
        cluster.serving_from_replica(0),
        "node 0 reads must now come from the replica"
    );
    // Mutations must not sneak onto a replica the primary's WAL never saw.
    let node0_key = (0u64..)
        .map(|i| key_bytes(2_000_000 + i))
        .find(|k| cluster.topology().node_of(k.as_slice()) == 0)
        .expect("some key routes to node 0");
    assert!(
        cluster.insert(&node0_key, 1).is_err(),
        "mutations to a failed-over node must be refused"
    );
    println!(
        "failover reads stay one-sided over all {} keys; mutations to the dead primary are refused",
        truth.len()
    );

    cluster.shutdown_all();
    let b_status = b_child.wait().expect("wait node B");
    assert!(b_status.success(), "node B exited with {b_status}");
    let c_status = c_child.wait().expect("wait node C");
    assert!(c_status.success(), "node C exited with {c_status}");
    println!("nodes B and C drained cleanly — three processes, one spectral cluster");
}
