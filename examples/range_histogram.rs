//! Range queries via range-tree hashing (§5.5): an SBF as a
//! high-granularity histogram over a numeric attribute.
//!
//! We index the synthetic Forest-Cover elevation column (the paper's real
//! dataset surrogate) and answer `SELECT count(*) WHERE a > L AND a < U`
//! style queries in O(log |range|) SBF lookups, with one-sided error —
//! something bucketized histograms cannot guarantee per-query.
//!
//! Run with: `cargo run --example range_histogram --release`

use sbf_workloads::forest;
use spectral_bloom::{MsSbf, RangeTreeSketch};

fn main() {
    let distinct = forest::FOREST_DISTINCT; // 1,978 elevation values
    let records = 100_000; // a slice of the full 581k for a snappy demo
    let column = forest::synthetic_elevation_sized(records, distinct, 5);
    let truth = forest::frequencies(&column, distinct);

    // Index: a binary range tree over the value domain, each value plus
    // log2(1978) ≈ 11 ancestor nodes per insert.
    let mut index = RangeTreeSketch::new(MsSbf::new(1 << 21, 5, 77), 0, distinct as u64);
    for &v in &column {
        index.insert(v);
    }
    println!(
        "indexed {records} records over {distinct} values ({} tree levels)",
        index.levels()
    );

    println!(
        "\n{:>22} {:>10} {:>10} {:>9}",
        "range", "true", "estimate", "lookups"
    );
    for (lo, hi) in [
        (0u64, distinct as u64), // everything
        (900, 1400),             // the dense mid-elevations
        (0, 300),                // sparse low tail
        (1700, 1900),            // sparse high tail
    ] {
        let true_count: u64 = truth[lo as usize..hi as usize].iter().sum();
        let est = index.count_range(lo, hi);
        println!(
            "{:>22} {true_count:>10} {:>10} {:>9}",
            format!("[{lo}, {hi})"),
            est.estimate,
            est.lookups
        );
        assert!(est.estimate >= true_count, "range estimates are one-sided");
    }

    // Point queries hit the leaf directly — a per-value histogram.
    println!("\npoint queries (value → count):");
    for v in [1000u64, 1100, 1200, 50] {
        println!(
            "  {v:>5} → {} (true {})",
            index.count_value(v),
            truth[v as usize]
        );
    }
}
