//! Sliding-window flow tracking over streaming data (§1.1.4, §2.2).
//!
//! A network monitor answers "how many packets did flow X send in the last
//! W packets?" — the data-warehouse sliding window the paper motivates.
//! Old packets leave the window by explicit deletion, which is why this
//! example uses the Recurring Minimum SBF (Minimal Increase would corrupt,
//! as the paper's Figure 9 shows). The window itself is serial — sliding a
//! window is an ordered operation — but the sketch is a hash-sharded
//! `SharedSketch`, so the separate long-term-volume tally can ingest the
//! same packets from 4 producer threads concurrently. An `mpsc` channel is
//! the packet bus.
//!
//! Run with: `cargo run --example sliding_window_traffic`

use std::collections::VecDeque;
use std::sync::mpsc;

use sbf_workloads::ZipfWorkload;
use spectral_bloom::{RmSbf, SharedSketch, SketchReader};

const WINDOW: usize = 20_000;

fn main() {
    // 100k packets over 2k flows, heavy-tailed like real traffic.
    let workload = ZipfWorkload::generate(2_000, 100_000, 1.2, 11);

    // Producers push packets onto the bus from 4 threads; each also feeds
    // the sharded whole-stream tally directly (no lock contention across
    // shards, batched so each shard lock is taken once per batch).
    let (tx, rx) = mpsc::sync_channel::<u64>(1024);
    let chunks: Vec<Vec<u64>> = workload
        .stream
        .chunks(25_000)
        .map(<[u64]>::to_vec)
        .collect();

    let window_sketch = SharedSketch::new(RmSbf::new(16_000, 5, 3));
    let window_keeper = window_sketch.clone();
    let volume_sketch = SharedSketch::with_shards(4, |_| RmSbf::new(16_000, 5, 7));

    std::thread::scope(|scope| {
        for chunk in chunks {
            let tx = tx.clone();
            let volume = volume_sketch.clone();
            scope.spawn(move || {
                for batch in chunk.chunks(512) {
                    volume.insert_batch(batch);
                    for &packet in batch {
                        tx.send(packet).expect("bus open");
                    }
                }
            });
        }
        drop(tx);

        // The single window maintainer: inserts arrivals, deletes leavers.
        scope.spawn(move || {
            let mut window: VecDeque<u64> = VecDeque::with_capacity(WINDOW);
            for flow in rx {
                window_keeper.insert(&flow);
                window.push_back(flow);
                if window.len() > WINDOW {
                    let leaver = window.pop_front().expect("non-empty");
                    window_keeper
                        .remove(&leaver)
                        .expect("leaver was inserted when it arrived");
                }
            }
        });
    });

    println!(
        "window maintained: {} packets currently counted",
        window_sketch.total_count()
    );
    assert_eq!(window_sketch.total_count(), WINDOW as u64);
    assert_eq!(
        volume_sketch.total_count(),
        workload.stream.len() as u64,
        "every packet lands in exactly one shard"
    );

    // Which flows dominate the current window?
    let mut heavy: Vec<(u64, u64)> = (0..2_000u64)
        .map(|flow| (flow, window_sketch.estimate(&flow)))
        .filter(|&(_, est)| est >= 200)
        .collect();
    heavy.sort_by_key(|&(_, est)| std::cmp::Reverse(est));
    println!("\nflows with ≥ 200 packets in the last {WINDOW}:");
    for (flow, est) in heavy.iter().take(10) {
        println!("  flow {flow:>4}: ~{est} packets");
    }
    assert!(
        !heavy.is_empty(),
        "a skew-1.2 stream has heavy flows in any window"
    );

    // Because arrivals are i.i.d., window counts are ≈ truth·(W/M); verify
    // the top flow is in the right ballpark (one-sided, so ≥ is exact-ish).
    let top_true = workload.truth.iter().max().expect("non-empty");
    let expected_in_window = *top_true as f64 * WINDOW as f64 / workload.stream.len() as f64;
    let (top_flow, top_est) = heavy[0];
    println!(
        "\ntop flow {top_flow}: ~{top_est} in window (i.i.d. expectation ≈ {expected_in_window:.0})"
    );

    // The whole-stream tally answers the long-term question; union the
    // shards (§5 counter addition) and compare against ground truth.
    let merged = volume_sketch.snapshot();
    let (est, truth) = (
        merged.estimate(&top_flow),
        workload.truth[top_flow as usize],
    );
    println!("flow {top_flow} whole-stream: estimate {est} vs truth {truth}");
    assert!(est >= truth, "sharded RM union must stay one-sided");
}
