//! Ad-hoc iceberg queries over a clickstream (§5.2 of the paper).
//!
//! A support desk tracks customer contact events. Analysts ask "who has
//! contacted us more than T times?" — but T changes between queries
//! (churn-risk thresholds are recalibrated all the time). Classic iceberg
//! machinery needs T *before* scanning the data; the SBF keeps the whole
//! spectrum, so new thresholds are free.
//!
//! Run with: `cargo run --example iceberg_watchlist`

use sbf_hash::SplitMix64;
use sbf_workloads::ZipfWorkload;
use spectral_bloom::{
    ad_hoc_iceberg, multiscan_iceberg, MsSbf, MultiscanConfig, MultisetSketch, SketchReader,
};

fn main() {
    // 50k contact events over 5k customers, heavy-tailed (a few customers
    // contact support constantly).
    let workload = ZipfWorkload::generate(5_000, 50_000, 1.1, 7);
    println!(
        "stream: {} events, {} distinct customers, busiest made {} contacts",
        workload.stream.len(),
        workload.distinct_present(),
        workload.truth.iter().max().expect("non-empty"),
    );

    // One pass builds the spectrum.
    let mut sbf = MsSbf::new(36_000, 5, 42);
    for &customer in &workload.stream {
        sbf.insert(&customer);
    }
    println!("SBF built: {} KiB", sbf.storage_bits() / 8 / 1024);

    // Ad-hoc thresholds — no rescan, no rebuild.
    for threshold in [1000u64, 300, 100, 25] {
        let watchlist = ad_hoc_iceberg(&sbf, 0..5_000u64, threshold);
        let truly = workload.truth.iter().filter(|&&f| f >= threshold).count();
        let fp = watchlist
            .iter()
            .filter(|&&c| workload.truth[c as usize] < threshold)
            .count();
        println!(
            "T = {threshold:>5}: {:>4} flagged ({truly} truly above, {fp} false positives, 0 missed)",
            watchlist.len()
        );
        // One-sidedness: nobody above the threshold is ever missed.
        for (customer, &f) in workload.truth.iter().enumerate() {
            if f >= threshold {
                assert!(
                    watchlist.contains(&(customer as u64)),
                    "missed heavy customer {customer}"
                );
            }
        }
    }

    // When T *is* known up front and memory is tight, the multiscan variant
    // uses a fraction of the space (several small lossy stages).
    let config = MultiscanConfig {
        stages: vec![(1_024, 3), (512, 3)],
        seed: 43,
    };
    let survivors = multiscan_iceberg(&workload.stream, 300, &config);
    let truly = workload.truth.iter().filter(|&&f| f >= 300).count();
    println!(
        "\nmultiscan (1.5k counters total) at T = 300: {} candidates for {truly} true heavy hitters",
        survivors.len()
    );

    // The spectrum also answers point queries about specific customers.
    let mut rng = SplitMix64::new(1);
    println!("\nspot checks:");
    for _ in 0..5 {
        let customer = rng.next_below(5_000);
        println!(
            "  customer {customer:>4}: estimated {} contacts (true {})",
            sbf.estimate(&customer),
            workload.truth[customer as usize]
        );
    }
}
