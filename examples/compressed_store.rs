//! The Section 4 machinery in action: counters stored at `⌈log C⌉` bits
//! behind the String-Array Index, versus one machine word per counter.
//!
//! Run with: `cargo run --example compressed_store --release`

use sbf_hash::MixFamily;
use sbf_sai::{CompactCounterArray, StaticCounterArray};
use sbf_workloads::ZipfWorkload;
use spectral_bloom::{
    CompressedCounters, CounterStore, MsSbf, MultisetSketch, PlainCounters, SketchReader,
};

fn main() {
    let m = 100_000;
    let workload = ZipfWorkload::generate(10_000, 200_000, 1.0, 9);

    // The same SBF over two storage backends.
    let mut plain: MsSbf<MixFamily, PlainCounters> = MsSbf::from_family(MixFamily::new(m, 5, 1));
    let mut packed: MsSbf<MixFamily, CompressedCounters> =
        MsSbf::from_family(MixFamily::new(m, 5, 1));
    for &x in &workload.stream {
        plain.insert(&x);
        packed.insert(&x);
    }

    // Identical answers (same hash family, same counters)...
    for key in (0u64..10_000).step_by(97) {
        assert_eq!(plain.estimate(&key), packed.estimate(&key));
    }
    // ...very different footprints.
    println!(
        "plain  store: {:>9} bits ({} KiB)",
        plain.storage_bits(),
        plain.storage_bits() / 8192
    );
    println!(
        "packed store: {:>9} bits ({} KiB)",
        packed.storage_bits(),
        packed.storage_bits() / 8192
    );
    println!(
        "compression: {:.1}x",
        plain.storage_bits() as f64 / packed.storage_bits() as f64
    );

    // The static representations, frozen from the final counters.
    let counters: Vec<u64> = (0..m).map(|i| plain.core().store().get(i)).collect();
    let static_arr = StaticCounterArray::from_counters(&counters);
    let sz = static_arr.size_breakdown();
    println!("\nstatic string-array index over the frozen counters:");
    println!("  base array : {:>9} bits (N = Σ⌈log C⌉)", sz.base_bits);
    println!("  C1 level   : {:>9} bits", sz.c1_bits);
    println!("  L2 vectors : {:>9} bits", sz.l2_bits);
    println!("  L3 vectors : {:>9} bits", sz.l3_bits);
    println!("  lookup tbl : {:>9} bits", sz.table_bits);
    println!("  flags+rank : {:>9} bits", sz.flags_bits);
    println!(
        "  total      : {:>9} bits ({:.2}x the base array)",
        sz.total_bits(),
        sz.total_bits() as f64 / sz.base_bits as f64
    );

    // The §4.5 alternative: even smaller, O(log log N) scan-decoded access.
    let compact = CompactCounterArray::from_counters(&counters);
    println!(
        "\ncompact (Elias-coded) alternative: {} payload bits + {} index bits",
        compact.payload_bits(),
        compact.index_bits()
    );
    for i in (0..m).step_by(9973) {
        assert_eq!(compact.get(i), counters[i], "compact array must agree");
    }
    println!("spot-checked agreement across all representations ✓");
}
