//! The Section 4 machinery in action, measured the way the CI gate
//! measures it: the same live sketch frozen into each [`ReplicaEncoding`]
//! (raw words, the §4 String-Array Index, the §4.5 Elias-δ compact
//! array), with the storage cost read off [`CompressedReplica`] — the
//! exact figure the `compressed_frontier` bench records into
//! `BENCH_compressed.json` — instead of hand-rolled size math.
//!
//! Run with: `cargo run --example compressed_store --release`

use sbf_server::{CompressedReplica, ReplicaEncoding};
use sbf_workloads::ZipfWorkload;
use spectral_bloom::{MsSbf, ShardedSketch};

const M: usize = 100_000;
const K: usize = 5;
const SEED: u64 = 1;

fn main() {
    // The live store a production `sbfd` would mutate.
    let live = ShardedSketch::with_shards(4, |_| MsSbf::new(M, K, SEED));
    let workload = ZipfWorkload::generate(10_000, 200_000, 1.0, 9);
    live.insert_batch(&workload.stream);

    // Freeze it three ways through the serving-path builder.
    let encodings = [
        ReplicaEncoding::Raw,
        ReplicaEncoding::Sai,
        ReplicaEncoding::Elias,
    ];
    let replicas: Vec<CompressedReplica> = encodings
        .iter()
        .map(|&enc| CompressedReplica::build(&live, K, SEED, enc))
        .collect();

    // Identical answers — every encoding serves the same §5 union, and
    // each replica estimate dominates the shard-routed live estimate for
    // the same byte key (the one-sided guarantee survives compression).
    for key in (0u64..10_000).step_by(97) {
        let bytes = key.to_le_bytes();
        let want = replicas[0].estimate(&bytes);
        for rep in &replicas[1..] {
            assert_eq!(want, rep.estimate(&bytes), "encodings must agree");
        }
        assert!(
            want >= live.estimate(&bytes.as_slice()),
            "replica must stay one-sided"
        );
    }

    // ...very different footprints, read off the same accessor the
    // frontier bench gates on.
    println!("{:<8} {:>12} {:>14}", "encoding", "bits", "bytes/counter");
    for rep in &replicas {
        println!(
            "{:<8} {:>12} {:>14.4}",
            rep.encoding().name(),
            rep.storage_bits(),
            rep.bytes_per_counter()
        );
    }
    let raw = replicas[0].bytes_per_counter();
    for rep in &replicas[1..] {
        println!(
            "{}: {:.1}x smaller than raw",
            rep.encoding().name(),
            raw / rep.bytes_per_counter()
        );
    }

    // The throughput side of the frontier comes from the recorded bench
    // baseline — the numbers CI holds steady — when it is present.
    let baseline = format!("{}/BENCH_compressed.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::read_to_string(&baseline) {
        Err(_) => println!(
            "\n(no BENCH_compressed.json — run `cargo run --release --bin \
             compressed_frontier -- --record BENCH_compressed.json` for the \
             throughput axis)"
        ),
        Ok(text) => {
            println!("\nrecorded frontier ({baseline}):");
            for enc in ["raw", "sai", "elias"] {
                let melem = json_field(&text, &format!("{enc}_melem_s"));
                let vs_raw = json_field(&text, &format!("{enc}_vs_raw"));
                if let (Some(melem), Some(vs_raw)) = (melem, vs_raw) {
                    println!("  {enc:<6} {melem:>8.2} Melem/s ({vs_raw:.3}x raw)");
                }
            }
        }
    }
    println!("\nspot-checked agreement across all encodings ✓");
}

/// Pulls `"name": <number>` out of the flat JSON the frontier bench
/// records (same scanner the bench's `--check` mode uses).
fn json_field(text: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
