//! Spectral Bloomjoins between two simulated database sites (§5.3).
//!
//! A dimension table `customers` lives at site 1 and a fact table `orders`
//! at site 2. The query is
//!
//! ```sql
//! SELECT customers.id, count(*) FROM customers, orders
//! WHERE customers.id = orders.customer_id GROUP BY customers.id
//! HAVING count(*) >= 8
//! ```
//!
//! We execute it three ways and compare what crossed the wire.
//!
//! Run with: `cargo run --example distributed_join`

use sbf_db::{bloomjoin, ship_all_join, spectral_bloomjoin, JoinPlan, Relation};
use sbf_hash::SplitMix64;

fn main() {
    // customers: 3000 unique ids, 64-byte rows.
    let customers = Relation::from_keys("customers", &(0..3000u64).collect::<Vec<_>>(), 64);
    // orders: 40k rows; 2000 customers order (heavier for small ids), and
    // 15k rows reference archived customers absent from the dimension site.
    let mut rng = SplitMix64::new(2024);
    let mut order_keys = Vec::new();
    for _ in 0..40_000 {
        let r = rng.next_below(100);
        let key = if r < 60 {
            rng.next_below(500) // hot customers
        } else {
            500 + rng.next_below(1500)
        };
        order_keys.push(key);
    }
    for _ in 0..15_000 {
        order_keys.push(1_000_000 + rng.next_below(10_000)); // archived
    }
    let orders = Relation::from_keys("orders", &order_keys, 64);

    println!(
        "customers: {} rows at site 1 | orders: {} rows at site 2 ({} bytes if shipped whole)",
        customers.len(),
        orders.len(),
        orders.ship_all_bytes()
    );

    // Size the shared filters for the *larger* distinct-key population (the
    // orders side sees ~12k distinct values including archived ids).
    let plan = JoinPlan::sized_for(15_000, 99).with_threshold(8);
    let ship = ship_all_join(&customers, &orders, &plan);
    let bj = bloomjoin(&customers, &orders, &plan);
    let sj = spectral_bloomjoin(&customers, &orders, &plan);

    println!(
        "\n{:>20} {:>12} {:>9} {:>7} {:>7}",
        "strategy", "bytes", "messages", "groups", "exact"
    );
    for (name, o) in [
        ("ship-all", &ship),
        ("bloomjoin", &bj),
        ("spectral bloomjoin", &sj),
    ] {
        println!(
            "{name:>20} {:>12} {:>9} {:>7} {:>7}",
            o.network.bytes,
            o.network.messages,
            o.groups.len(),
            o.exact
        );
    }

    // Verify the spectral answer: full recall, one-sided counts.
    let mut overcounted = 0;
    for (key, &count) in &ship.groups {
        let est = sj.groups.get(key).copied().unwrap_or(0);
        assert!(est >= count, "spectral join undercounted group {key}");
        if est > count {
            overcounted += 1;
        }
    }
    let spurious = sj
        .groups
        .keys()
        .filter(|k| !ship.groups.contains_key(k))
        .count();
    println!(
        "\nspectral join: {} true groups all present, {overcounted} overcounted, {spurious} spurious",
        ship.groups.len()
    );
    println!(
        "bytes saved vs ship-all: {:.1}%  |  vs bloomjoin: {:.1}% (and one round instead of two)",
        100.0 * (1.0 - sj.network.bytes as f64 / ship.network.bytes as f64),
        100.0 * (1.0 - sj.network.bytes as f64 / bj.network.bytes as f64),
    );
}
