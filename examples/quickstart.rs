//! Quickstart: build a Spectral Bloom Filter, insert a multiset, query
//! multiplicities, delete, and compare algorithm variants.
//!
//! Run with: `cargo run --example quickstart`

use spectral_bloom::{
    bloom_error_rate, MiSbf, MsSbf, MultisetSketch, RmSbf, SbfParams, SketchReader,
};

fn main() {
    // --- Sizing -----------------------------------------------------------
    // Plan for ~10k distinct keys at a 1% error target.
    let (m, k) = SbfParams::for_capacity(10_000)
        .with_target_error(0.01)
        .dimensions();
    println!("sized SBF: m = {m} counters, k = {k} hash functions");
    println!(
        "predicted Bloom error: {:.4}",
        bloom_error_rate(10_000, m, k)
    );

    // --- The basic SBF (Minimum Selection) --------------------------------
    let mut sbf = MsSbf::new(m, k, 0xC0FFEE);
    for (word, count) in [("apple", 3u64), ("banana", 1), ("cherry", 120)] {
        sbf.insert_by(&word, count);
    }
    println!("\nMinimum Selection estimates:");
    for word in ["apple", "banana", "cherry", "durian"] {
        println!("  f({word:>7}) ≈ {}", sbf.estimate(&word));
    }

    // Spectral queries: threshold tests with one-sided error.
    println!("\nitems with multiplicity ≥ 100:");
    for word in ["apple", "banana", "cherry"] {
        if sbf.passes_threshold(&word, 100) {
            println!("  {word}");
        }
    }

    // Deletions and updates.
    sbf.remove_by(&"cherry", 120)
        .expect("cherry is present 120 times");
    sbf.insert_by(&"cherry", 7);
    println!(
        "\nafter updating cherry to 7: f(cherry) ≈ {}",
        sbf.estimate(&"cherry")
    );

    // --- Algorithm variants ------------------------------------------------
    // Minimal Increase: best accuracy, insert-only.
    let mut mi = MiSbf::new(m, k, 0xC0FFEE);
    // Recurring Minimum: near-MI accuracy *and* deletions.
    let mut rm = RmSbf::new(m, k, 0xC0FFEE);
    for i in 0u64..5000 {
        let key = i % 1000; // each key 5 times
        mi.insert(&key);
        rm.insert(&key);
    }
    let mi_exact = (0u64..1000).filter(|key| mi.estimate(key) == 5).count();
    let rm_exact = (0u64..1000).filter(|key| rm.estimate(key) == 5).count();
    println!("\nexact estimates out of 1000 keys: MI {mi_exact}, RM {rm_exact}");
    assert!(rm.remove(&7u64).is_ok(), "RM supports deletion");
    assert!(
        mi.remove(&7u64).is_err(),
        "MI refuses deletion (it would corrupt)"
    );
    println!(
        "RM deleted one occurrence of key 7: f(7) ≈ {}",
        rm.estimate(&7u64)
    );
}
