//! Password / dictionary screening with a Bloom filter — the Manber & Wu
//! application the paper surveys in §1.1.2: "checking validity of proposed
//! passwords against previous passwords used and a dictionary... can
//! quickly and efficiently prevent users from reusing old passwords or
//! using dictionary words".
//!
//! Run with: `cargo run --example password_check`

use spectral_bloom::{BloomFilter, SbfParams};

fn main() {
    // "Dictionary": common passwords plus simple transformations.
    let dictionary: Vec<String> = {
        let bases = [
            "password", "letmein", "qwerty", "dragon", "monkey", "admin", "welcome", "login",
            "master", "sunshine", "princess", "football",
        ];
        let mut out = Vec::new();
        for base in bases {
            out.push(base.to_string());
            out.push(format!("{base}1"));
            out.push(format!("{base}123"));
            out.push(format!("{base}!"));
            out.push(base.to_uppercase());
        }
        out
    };
    // "Previous passwords" of this account.
    let history = ["correct-horse-battery", "tr0ub4dor&3"];

    let (m, k) = SbfParams::for_capacity(dictionary.len() + history.len())
        .with_target_error(0.001)
        .dimensions();
    let mut screen = BloomFilter::new(m, k, 0x5ec3e7);
    for word in &dictionary {
        screen.insert(&word.as_str());
    }
    for old in history {
        screen.insert(&old);
    }
    println!(
        "screening filter: {} bits, {k} hashes over {} banned strings ({} bytes total)",
        m,
        dictionary.len() + history.len(),
        screen.storage_bits() / 8
    );

    let proposals = [
        ("password123", false),
        ("tr0ub4dor&3", false),
        ("PASSWORD", false),
        ("xkcd-style-long-unique-phrase", true),
        ("9$kQz!rW2m", true),
    ];
    println!("\nproposal screening (no banned password is ever admitted):");
    for (candidate, should_pass) in proposals {
        let rejected = screen.contains(&candidate);
        println!(
            "  {candidate:>30} → {}",
            if rejected { "REJECTED" } else { "accepted" }
        );
        // No false negatives: banned strings are always rejected. Accepted
        // strings may very rarely be false-positive rejections — never the
        // other way around.
        if !should_pass {
            assert!(rejected, "banned password slipped through");
        }
    }
}
