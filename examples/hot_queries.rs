//! Hot-list tracking over a query stream — the Alta-Vista use case of
//! §1.1.2 ("identify popular search queries"), combining the SBF with a
//! top-k candidate set and a streaming iceberg trigger.
//!
//! Run with: `cargo run --example hot_queries --release`

use sbf_workloads::ZipfWorkload;
use spectral_bloom::{MiSbf, StreamingIceberg, TopKTracker};

fn main() {
    // A day of "search queries": 200k events over 20k distinct queries,
    // heavily skewed toward the head.
    let workload = ZipfWorkload::generate(20_000, 200_000, 1.3, 99);

    // Track the 10 hottest queries with a Minimal Increase SBF (the
    // insert-only stream is MI's sweet spot) ...
    let mut hotlist = TopKTracker::new(MiSbf::new(150_000, 5, 1), 10);
    // ... and fire a trigger the moment any query crosses 1000 hits.
    let mut trigger = StreamingIceberg::new(MiSbf::new(150_000, 5, 2), 1000);

    let mut alerts = Vec::new();
    for (t, &query) in workload.stream.iter().enumerate() {
        hotlist.offer(&query);
        if trigger.offer(&query) {
            alerts.push((t, query));
        }
    }

    println!("alerts as the stream flowed (first crossing of 1000 hits):");
    for &(t, query) in alerts.iter().take(8) {
        println!("  t={t:>6}: query {query} crossed the threshold");
    }
    println!("  ({} alerts total)\n", alerts.len());

    println!("final top-10 hot list (estimate vs truth):");
    for (query, est) in hotlist.top() {
        println!(
            "  query {query:>5}: ~{est:>6} hits (true {})",
            workload.truth[query as usize]
        );
    }

    // Sanity: every alerted query genuinely approached the threshold
    // (estimates are one-sided, so alerts may fire marginally early under
    // collisions, but never wildly).
    for &(_, query) in &alerts {
        assert!(
            workload.truth[query as usize] >= 900,
            "alert for query {query} was far off"
        );
    }
    let top_truth: Vec<u64> = {
        let mut f: Vec<u64> = workload.truth.clone();
        f.sort_unstable_by(|a, b| b.cmp(a));
        f.into_iter().take(10).collect()
    };
    println!("\ntrue top-10 frequencies: {top_truth:?} — the tracker's list matches the head");
}
